//! Shared machinery for the parallelizing custom tools: task customization
//! hooks, the dispatcher codegen, and loop-selection helpers. This is the
//! NOELLE-powered part that makes DOALL/HELIX/DSWP expressible in a few
//! hundred lines each (the Table 3 claim).

use noelle_core::env::EnvironmentBuilder;
use noelle_core::loop_abs::LoopAbstraction;
use noelle_core::loop_builder::{bypass_loop, ensure_preheader, LoopBuilderError};
use noelle_core::reduction::Reduction;
use noelle_core::task::{outline_loop_as_task, TaskError, TaskFunction};
use noelle_ir::inst::{Inst, InstId, Terminator};
use noelle_ir::loops::LoopInfo;
use noelle_ir::module::{BlockId, FuncId, Module};
use noelle_ir::types::{FuncType, Type};
use noelle_ir::value::Value;
use std::sync::Arc;

/// Name of the task-dispatch runtime intrinsic: runs `n_tasks` instances of
/// a task function against a shared environment and joins them.
pub const DISPATCH_INTRINSIC: &str = "noelle.task.dispatch";
/// Name of the queue-creation runtime intrinsic (DSWP).
pub const QUEUE_CREATE_INTRINSIC: &str = "noelle.queue.create";
/// Name of the queue-push runtime intrinsic (DSWP).
pub const QUEUE_PUSH_INTRINSIC: &str = "noelle.queue.push";
/// Name of the queue-pop runtime intrinsic (DSWP).
pub const QUEUE_POP_INTRINSIC: &str = "noelle.queue.pop";
/// Name of the sequential-segment wait intrinsic (HELIX).
pub const SS_WAIT_INTRINSIC: &str = "noelle.ss.wait";
/// Name of the sequential-segment signal intrinsic (HELIX).
pub const SS_SIGNAL_INTRINSIC: &str = "noelle.ss.signal";

/// Why a loop could not be parallelized.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParallelizeError {
    /// The loop shape is unsupported (multiple exits, no pre-header...).
    Shape(String),
    /// The loop has no governing induction variable.
    NoGoverningIv,
    /// A live-out is neither a reduction nor reconstructible.
    UnsupportedLiveOut,
    /// Loop-carried dependences the technique cannot handle.
    CarriedDependences,
}

impl std::fmt::Display for ParallelizeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParallelizeError::Shape(s) => write!(f, "unsupported loop shape: {s}"),
            ParallelizeError::NoGoverningIv => write!(f, "no governing induction variable"),
            ParallelizeError::UnsupportedLiveOut => write!(f, "unsupported live-out"),
            ParallelizeError::CarriedDependences => write!(f, "unhandled loop-carried dependences"),
        }
    }
}

impl std::error::Error for ParallelizeError {}

impl From<TaskError> for ParallelizeError {
    fn from(e: TaskError) -> ParallelizeError {
        ParallelizeError::Shape(e.to_string())
    }
}

impl From<LoopBuilderError> for ParallelizeError {
    fn from(e: LoopBuilderError) -> ParallelizeError {
        ParallelizeError::Shape(e.to_string())
    }
}

/// What a parallelizing tool did to a module.
#[derive(Debug, Clone, Default)]
pub struct ParallelReport {
    /// `(function name, loop header)` of each parallelized loop.
    pub parallelized: Vec<(String, BlockId)>,
    /// Loops considered but skipped, with the reason.
    pub skipped: Vec<(String, BlockId, String)>,
}

impl ParallelReport {
    /// Number of loops parallelized.
    pub fn count(&self) -> usize {
        self.parallelized.len()
    }
}

/// Loop selection shared by every parallelizing technique: which loops a run
/// may touch and how many workers to deploy on each. DOALL/HELIX/DSWP each
/// embed one of these instead of re-declaring `min_hotness`/`only`/worker
/// fields, so the planner, auditor, and fuzzer drive all three through a
/// single surface.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopTargetOpts {
    /// Skip loops whose profiled hotness is below this fraction of total
    /// execution (ignored when the module carries no profiles).
    pub min_hotness: f64,
    /// Restrict the run to exactly one loop, `(function name, header block)`.
    pub only: Option<(String, BlockId)>,
    /// Worker count: tasks for DOALL/HELIX, pipeline stages for DSWP.
    pub workers: usize,
}

impl Default for LoopTargetOpts {
    fn default() -> Self {
        LoopTargetOpts {
            min_hotness: 0.05,
            only: None,
            workers: 4,
        }
    }
}

impl LoopTargetOpts {
    /// Target exactly one loop, bypassing the hotness gate — the caller
    /// (planner, auditor, fuzz oracle) has already decided this loop is
    /// worth transforming.
    pub fn pinned(function: &str, header: BlockId) -> Self {
        LoopTargetOpts {
            min_hotness: 0.0,
            only: Some((function.to_string(), header)),
            ..LoopTargetOpts::default()
        }
    }

    /// Same selection with a different worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Does this selection admit the loop at `(fname, header)`?
    pub fn admits(&self, fname: &str, header: BlockId) -> bool {
        match &self.only {
            Some((f, h)) => f == fname && *h == header,
            None => true,
        }
    }
}

/// Static per-instruction cost estimate used by the technique profitability
/// gates and the planner's speedup predictions. Mirrors the relative weights
/// of the simulated machine's cost model (computation < memory < div/call)
/// without depending on the runtime crate.
pub fn approx_inst_cost(inst: &Inst) -> u64 {
    use noelle_ir::inst::BinOp;
    match inst {
        Inst::Bin { op, .. } => match op {
            BinOp::Div | BinOp::Rem => 20,
            BinOp::FDiv => 18,
            BinOp::Mul | BinOp::FMul => 3,
            _ => 1,
        },
        Inst::Load { .. } | Inst::Store { .. } => 4,
        Inst::Call { .. } => 20,
        _ => 1,
    }
}

/// The signature of task functions: `void (i64* env, i64 task_id, i64
/// n_tasks)`.
pub fn task_fn_ptr_type() -> Type {
    Type::Func(Arc::new(FuncType {
        params: vec![Type::I64.ptr_to(), Type::I64, Type::I64],
        ret: Type::Void,
    }))
    .ptr_to()
}

/// Pull the function signature out of a task-function-pointer type,
/// explaining exactly what is wrong when the shape is unexpected (fuzzed or
/// malformed modules reach this through the tools registry, so the message
/// must diagnose, not abort).
pub fn task_fn_signature(t: &Type) -> Result<&FuncType, String> {
    let Type::Ptr(inner) = t else {
        return Err(format!(
            "expected a task function pointer, found non-pointer type {t:?}"
        ));
    };
    let Type::Func(ft) = &**inner else {
        return Err(format!(
            "expected a pointer to a task function, found pointer to {inner:?}"
        ));
    };
    Ok(ft)
}

/// Declare (once) and return the `noelle.task.dispatch` intrinsic.
pub fn declare_dispatch(m: &mut Module) -> FuncId {
    m.get_or_declare(
        DISPATCH_INTRINSIC,
        vec![task_fn_ptr_type(), Type::I64.ptr_to(), Type::I64],
        Type::Void,
    )
}

/// Check that every live-out of the loop is the accumulator of one of its
/// reductions (the only live-outs the dispatcher knows how to reconstruct).
pub fn liveouts_supported(la: &LoopAbstraction) -> bool {
    la.env
        .live_outs
        .iter()
        .all(|(v, _)| la.reductions.iter().any(|r| Value::Inst(r.phi) == *v))
}

/// Rewire a cloned reduction accumulator to start from the operator identity
/// (each task computes a partial value; the dispatcher combines them).
pub fn reset_reduction_initials(m: &mut Module, task: &TaskFunction, reductions: &[Reduction]) {
    let entry = task.entry;
    let tf = m.func_mut(task.fid);
    for r in reductions {
        let Some(Value::Inst(clone_phi)) = task.value_map.get(&Value::Inst(r.phi)).copied() else {
            continue;
        };
        let identity = Value::Const(r.identity());
        if let Inst::Phi { incomings, .. } = tf.inst_mut(clone_phi) {
            for (b, v) in incomings.iter_mut() {
                if *b == entry {
                    *v = identity;
                }
            }
        }
    }
}

/// Emit the dispatcher in the original function and make the loop
/// unreachable:
///
/// 1. a `dispatch` block allocates the environment and stores the live-ins,
/// 2. calls `noelle.task.dispatch(task, env, n_tasks)`,
/// 3. reloads per-task live-out slots, combining reductions, and
/// 4. bypasses the loop, rewiring its exit phis and external uses.
pub fn emit_dispatcher(
    m: &mut Module,
    fid: FuncId,
    la: &LoopAbstraction,
    task: &TaskFunction,
    n_tasks: usize,
) -> Result<(), ParallelizeError> {
    emit_dispatcher_with_queues(m, fid, la, task.fid, &task.env, n_tasks, 0)
}

/// Like [`emit_dispatcher`], but additionally creates `n_queues` inter-core
/// queues before dispatching and stores their ids in the environment slots
/// following the live-out section (used by DSWP stages).
#[allow(clippy::too_many_arguments)]
pub fn emit_dispatcher_with_queues(
    m: &mut Module,
    fid: FuncId,
    la: &LoopAbstraction,
    dispatch_target: FuncId,
    env: &noelle_core::env::Environment,
    n_tasks: usize,
    n_queues: usize,
) -> Result<(), ParallelizeError> {
    let dispatch_fn = declare_dispatch(m);
    let queue_create = m.get_or_declare(QUEUE_CREATE_INTRINSIC, vec![Type::I64], Type::I64);
    let l = &la.structure;
    let exits = l.exit_blocks();
    let &[exit_block] = exits.as_slice() else {
        return Err(ParallelizeError::Shape("multiple exit blocks".into()));
    };

    let f = m.func_mut(fid);
    ensure_preheader(f, l)?;
    let dispatch = f.add_block("dispatch");

    // 1. Environment allocation + live-in stores + queue creation.
    let env_ptr = EnvironmentBuilder::alloc(f, dispatch, env.num_slots(n_tasks) + n_queues);
    for (slot, (v, ty)) in env.live_ins.iter().enumerate() {
        EnvironmentBuilder::store_slot(f, dispatch, env_ptr, Value::const_i64(slot as i64), *v, ty);
    }
    for qi in 0..n_queues {
        let q = f.append_inst(
            dispatch,
            Inst::Call {
                callee: noelle_ir::inst::Callee::Direct(queue_create),
                args: vec![Value::const_i64(64)],
                ret_ty: Type::I64,
            },
        );
        EnvironmentBuilder::store_slot(
            f,
            dispatch,
            env_ptr,
            Value::const_i64((env.num_slots(n_tasks) + qi) as i64),
            Value::Inst(q),
            &Type::I64,
        );
    }

    // 2. The dispatch call.
    f.append_inst(
        dispatch,
        Inst::Call {
            callee: noelle_ir::inst::Callee::Direct(dispatch_fn),
            args: vec![
                Value::Func(dispatch_target),
                env_ptr,
                Value::const_i64(n_tasks as i64),
            ],
            ret_ty: Type::Void,
        },
    );

    // 3. Live-out reconstruction: fold the per-task partial values with the
    //    reduction operator, seeded by the sequential initial value.
    let mut combined: Vec<(Value, Value)> = Vec::new(); // (original, rebuilt)
    for (idx, (v, ty)) in env.live_outs.iter().enumerate() {
        let red = la
            .reductions
            .iter()
            .find(|r| Value::Inst(r.phi) == *v)
            .ok_or(ParallelizeError::UnsupportedLiveOut)?;
        let mut acc = red.initial;
        for t in 0..n_tasks {
            let slot = env.live_out_base() + idx * n_tasks + t;
            let part = EnvironmentBuilder::load_slot(
                f,
                dispatch,
                env_ptr,
                Value::const_i64(slot as i64),
                ty,
            );
            let op = f.append_inst(
                dispatch,
                Inst::Bin {
                    op: red.op,
                    ty: ty.clone(),
                    lhs: acc,
                    rhs: part,
                },
            );
            acc = Value::Inst(op);
        }
        combined.push((*v, acc));
    }
    f.set_terminator(dispatch, Terminator::Br(exit_block));

    // 4. Bypass the loop. Exit phis take the rebuilt values.
    let exit_phi_values: Vec<(InstId, Value)> = f
        .phis(exit_block)
        .into_iter()
        .filter_map(|phi| {
            let incoming = match f.inst(phi) {
                Inst::Phi { incomings, .. } => incomings
                    .iter()
                    .find(|(b, _)| l.contains(*b))
                    .map(|(_, v)| *v),
                _ => None,
            }?;
            combined
                .iter()
                .find(|(orig, _)| *orig == incoming)
                .map(|(_, rebuilt)| (phi, *rebuilt))
        })
        .collect();
    bypass_loop(f, l, dispatch, &exit_phi_values)?;

    // Remaining external uses of live-outs (outside the now-dead loop and
    // not through the exit phis) read the rebuilt values.
    let loop_blocks = l.blocks.clone();
    for id in f.inst_ids() {
        if loop_blocks.contains(&f.parent_block(id)) || f.parent_block(id) == dispatch {
            continue;
        }
        for (orig, rebuilt) in &combined {
            let (orig, rebuilt) = (*orig, *rebuilt);
            f.inst_mut(id)
                .map_operands(|v| if v == orig { rebuilt } else { v });
        }
    }
    Ok(())
}

/// Outline + customize + dispatch: the common skeleton of DOALL/HELIX.
/// `customize` receives the module and the freshly outlined task to apply
/// technique-specific rewriting (IV stepping, sequential-segment gates...).
pub fn parallelize_with(
    m: &mut Module,
    fid: FuncId,
    la: &LoopAbstraction,
    n_tasks: usize,
    task_name: &str,
    customize: impl FnOnce(&mut Module, &TaskFunction) -> Result<(), ParallelizeError>,
) -> Result<(), ParallelizeError> {
    if !liveouts_supported(la) {
        return Err(ParallelizeError::UnsupportedLiveOut);
    }
    let task = outline_loop_as_task(m, fid, &la.structure, &la.env, task_name)?;
    reset_reduction_initials(m, &task, &la.reductions);
    customize(m, &task)?;
    emit_dispatcher(m, fid, la, &task, n_tasks)?;
    Ok(())
}

/// The cloned loop inside a task function (there is exactly one).
pub fn task_loop(m: &Module, task_fid: FuncId) -> LoopInfo {
    let tf = m.func(task_fid);
    let cfg = noelle_ir::cfg::Cfg::new(tf);
    let dt = noelle_ir::dom::DomTree::new(tf, &cfg);
    let forest = noelle_ir::loops::LoopForest::new(tf, &cfg, &dt);
    forest.loops()[0].clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_declared_once() {
        let mut m = Module::new("t");
        let a = declare_dispatch(&mut m);
        let b = declare_dispatch(&mut m);
        assert_eq!(a, b);
        assert_eq!(m.functions().len(), 1);
    }

    #[test]
    fn task_fn_ptr_type_shape() {
        let t = task_fn_ptr_type();
        let ft = task_fn_signature(&t).expect("task_fn_ptr_type produces a task fn pointer");
        assert_eq!(ft.params.len(), 3);
        assert_eq!(ft.ret, Type::Void);
    }

    #[test]
    fn task_fn_signature_diagnoses_bad_shapes() {
        let e = task_fn_signature(&Type::I64).unwrap_err();
        assert!(e.contains("non-pointer type"), "{e}");
        let e = task_fn_signature(&Type::I64.ptr_to()).unwrap_err();
        assert!(e.contains("pointer to"), "{e}");
    }
}
