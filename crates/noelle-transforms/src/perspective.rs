//! Perspective-lite: privatization-aware parallelization.
//!
//! The paper ports Perspective (ASPLOS '20) — "a parallelizing compiler that
//! minimizes speculation and privatization costs" — onto NOELLE's PDG and
//! aSCCDAG. This reproduction implements the non-speculative core of that
//! planner: when the only dependences blocking DOALL are carried through a
//! *privatizable* scratch object (a function-local allocation that every
//! iteration overwrites before reading), the object is cloned per task and
//! the loop parallelizes like DOALL. Speculation support is out of scope, as
//! DESIGN.md documents.

use crate::common::{parallelize_with, ParallelReport, ParallelizeError};
use crate::doall::distribute_cyclically;
use noelle_core::loop_abs::LoopAbstraction;
use noelle_core::noelle::{Abstraction, Noelle};
use noelle_core::task::TaskFunction;
use noelle_ir::cfg::Cfg;
use noelle_ir::dom::DomTree;
use noelle_ir::inst::{Inst, InstId};
use noelle_ir::module::{FuncId, Module};
use noelle_ir::value::Value;
use std::collections::BTreeSet;

/// Options controlling Perspective-lite.
#[derive(Clone, Debug)]
pub struct PerspectiveOptions {
    /// Number of tasks to distribute over.
    pub n_tasks: usize,
}

impl Default for PerspectiveOptions {
    fn default() -> PerspectiveOptions {
        PerspectiveOptions { n_tasks: 4 }
    }
}

/// Run Perspective-lite over the module.
pub fn run(noelle: &mut Noelle, opts: &PerspectiveOptions) -> ParallelReport {
    noelle.note(Abstraction::Pdg);
    noelle.note(Abstraction::ASccDag);
    let mut report = ParallelReport::default();
    let forest = noelle.program_loop_forest();
    let mut order = forest.innermost_first();
    order.reverse();
    for node in order {
        let (fid, _) = node;
        let l = forest.loop_info(node).clone();
        let fname = noelle.module().func(fid).name.clone();
        let la = noelle.loop_abstraction(fid, l.clone());
        if la.is_doall() {
            // Plain DOALL territory; Perspective adds nothing here. Leave it
            // to DOALL (do not double-parallelize in combined pipelines).
            report.skipped.push((
                fname,
                l.header,
                "plain DOALL (no privatization needed)".into(),
            ));
            continue;
        }
        let Some(cell) = privatizable_scratch(noelle.module(), fid, &la) else {
            report
                .skipped
                .push((fname, l.header, "no privatizable object".into()));
            continue;
        };
        let task_name = format!("{fname}.pers.{}", l.header.0);
        match noelle.edit(|tx| {
            parallelize_with(
                tx.module_touching([fid]),
                fid,
                &la,
                opts.n_tasks,
                &task_name,
                |m, task| {
                    privatize(m, task, cell)?;
                    distribute_cyclically(m, task)
                },
            )
        }) {
            Ok(()) => report.parallelized.push((fname, l.header)),
            Err(e) => report.skipped.push((fname, l.header, e.to_string())),
        }
    }
    report
}

/// Find a scratch allocation whose carried dependences are the *only*
/// obstacle to DOALL, and which every iteration writes before reading
/// (write-first ⇒ privatizable: per-task copies preserve semantics).
fn privatizable_scratch(m: &Module, fid: FuncId, la: &LoopAbstraction) -> Option<Value> {
    let f = m.func(fid);
    let l = &la.structure;
    if la.ivs.governing().is_none() || l.exit_blocks().len() != 1 {
        return None;
    }
    let handled = la.handled_recurrence_insts();

    // Collect the blocking carried edges and the pointers they touch.
    let mut blocking: Vec<(InstId, InstId)> = Vec::new();
    for e in la.pdg.edges() {
        if e.attrs.loop_carried
            && e.attrs.is_data()
            && la.pdg.is_internal(e.src)
            && la.pdg.is_internal(e.dst)
            && !(handled.contains(&e.src) && handled.contains(&e.dst))
        {
            blocking.push((e.src, e.dst));
        }
    }
    if blocking.is_empty() {
        return None;
    }
    // Every blocking endpoint must be a load/store through the SAME direct
    // alloca pointer (the scratch cell).
    let mut cells: BTreeSet<Value> = BTreeSet::new();
    for &(a, b) in &blocking {
        for i in [a, b] {
            match f.inst(i) {
                Inst::Load { ptr, .. } | Inst::Store { ptr, .. } => {
                    cells.insert(*ptr);
                }
                _ => return None,
            }
        }
    }
    let mut it = cells.into_iter();
    let cell = it.next()?;
    if it.next().is_some() {
        return None; // more than one object involved
    }
    // The cell must be a non-escaping alloca defined outside the loop.
    let cell_inst = cell.as_inst()?;
    if !matches!(f.inst(cell_inst), Inst::Alloca { .. }) || l.contains(f.parent_block(cell_inst)) {
        return None;
    }
    if noelle_analysis::alias::object_escapes(m, fid, cell_inst) {
        return None;
    }
    // The cell must not be a live-out (its final value unobserved after the
    // loop) and must be written before read in every iteration: every load
    // from it inside the loop is dominated by a store to it inside the loop
    // whose block also lies in the loop and dominates the load.
    let cfg = Cfg::new(f);
    let dt = DomTree::new(f, &cfg);
    let loop_stores: Vec<InstId> = f
        .inst_ids()
        .into_iter()
        .filter(|&i| {
            l.contains(f.parent_block(i))
                && matches!(f.inst(i), Inst::Store { ptr, .. } if *ptr == cell)
        })
        .collect();
    let loop_loads: Vec<InstId> = f
        .inst_ids()
        .into_iter()
        .filter(|&i| {
            l.contains(f.parent_block(i))
                && matches!(f.inst(i), Inst::Load { ptr, .. } if *ptr == cell)
        })
        .collect();
    for &ld in &loop_loads {
        let dominated = loop_stores.iter().any(|&st| {
            let (sb, lb) = (f.parent_block(st), f.parent_block(ld));
            if sb == lb {
                f.position_in_block(st) < f.position_in_block(ld)
            } else {
                dt.strictly_dominates(sb, lb)
            }
        });
        if !dominated {
            return None; // read-before-write: the value flows across iterations
        }
    }
    // No use of the cell's content after the loop (otherwise the final
    // iteration's value would need reconstruction).
    let used_after = f.inst_ids().into_iter().any(|i| {
        !l.contains(f.parent_block(i))
            && matches!(f.inst(i), Inst::Load { ptr, .. } if *ptr == cell)
    });
    if used_after {
        return None;
    }
    Some(cell)
}

/// Give the task its own private copy of the scratch cell.
fn privatize(m: &mut Module, task: &TaskFunction, cell: Value) -> Result<(), ParallelizeError> {
    // The cell arrived as a live-in: its loaded clone must be replaced by a
    // fresh per-task alloca.
    let Some(&loaded) = task.value_map.get(&cell) else {
        return Err(ParallelizeError::Shape(
            "privatizable cell is not a live-in".into(),
        ));
    };
    let tf = m.func_mut(task.fid);
    // Determine the allocation size from the original alloca type: the task
    // clone only sees an i64 slot, so allocate a fresh cell of the pointee
    // type of the pointer.
    let private = tf.insert_inst(
        task.entry,
        0,
        Inst::Alloca {
            ty: noelle_ir::types::Type::I64,
            count: Value::const_i64(1),
        },
    );
    tf.replace_all_uses(loaded, Value::Inst(private));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use noelle_core::noelle::AliasTier;
    use noelle_ir::parser::parse_module;
    use noelle_runtime::{run_module, RunConfig};

    /// A loop blocked from DOALL only by a scratch cell that every iteration
    /// writes before reading — the privatization pattern Perspective
    /// removes without speculation.
    const PROGRAM: &str = r#"
module "persdemo" {
declare i64* @malloc(i64 %n)
define i64 @kernel(i64* %a, i64 %n) {
entry:
  %tmp = alloca i64, i64 1
  br header
header:
  %i = phi i64 [entry: i64 0] [body: %i2]
  %s = phi i64 [entry: i64 0] [body: %s2]
  %c = icmp slt i64 %i, %n
  condbr %c, body, exit
body:
  %p = gep i64, %a, %i
  %v = load i64, %p
  %sq = mul i64 %v, %v
  store i64 %sq, %tmp
  %t = load i64, %tmp
  %u = add i64 %t, %v
  %s2 = add i64 %s, %u
  %i2 = add i64 %i, i64 1
  br header
exit:
  ret %s
}
define i64 @main() {
entry:
  %buf = call i64* @malloc(i64 2048)
  br fill
fill:
  %i = phi i64 [entry: i64 0] [fill: %i2]
  %p = gep i64, %buf, %i
  store i64 %i, %p
  %i2 = add i64 %i, i64 1
  %c = icmp slt i64 %i2, i64 256
  condbr %c, fill, done
done:
  %s = call i64 @kernel(%buf, i64 256)
  ret %s
}
}
"#;

    #[test]
    fn privatizes_scratch_and_parallelizes() {
        let m = parse_module(PROGRAM).unwrap();
        let seq = run_module(&m, "main", &[], &RunConfig::default()).unwrap();

        // DOALL alone refuses the kernel loop (carried deps through %tmp).
        {
            let mut n = Noelle::new(m.clone(), AliasTier::Full);
            let fid = n.module().func_id_by_name("kernel").unwrap();
            let l = n.loops_of(fid)[0].clone();
            let la = n.loop_abstraction(fid, l);
            assert!(!la.is_doall(), "tmp cell must block plain DOALL");
        }

        let mut noelle = Noelle::new(m, AliasTier::Full);
        let report = run(&mut noelle, &PerspectiveOptions { n_tasks: 4 });
        assert!(
            report.parallelized.iter().any(|(f, _)| f == "kernel"),
            "{report:?}"
        );
        let m2 = noelle.into_module();
        noelle_ir::verifier::verify_module(&m2).unwrap_or_else(|e| panic!("verifies: {e}"));
        let par = run_module(&m2, "main", &[], &RunConfig::default()).unwrap();
        assert_eq!(par.ret_i64(), seq.ret_i64(), "semantics preserved");
        let speedup = seq.cycles as f64 / par.cycles as f64;
        assert!(speedup > 1.3, "speedup = {speedup:.2}");
    }

    #[test]
    fn read_before_write_cell_rejected() {
        // The cell carries real state across iterations: NOT privatizable.
        let src = r#"
module "t" {
define i64 @main() {
entry:
  %cell = alloca i64, i64 1
  store i64 i64 1, %cell
  br header
header:
  %i = phi i64 [entry: i64 0] [body: %i2]
  %c = icmp slt i64 %i, i64 10
  condbr %c, body, exit
body:
  %old = load i64, %cell
  %new = add i64 %old, i64 1
  store i64 %new, %cell
  %i2 = add i64 %i, i64 1
  br header
exit:
  %r = load i64, %cell
  ret %r
}
}
"#;
        let m = parse_module(src).unwrap();
        let seq = run_module(&m, "main", &[], &RunConfig::default()).unwrap();
        let mut noelle = Noelle::new(m, AliasTier::Full);
        let report = run(&mut noelle, &PerspectiveOptions { n_tasks: 4 });
        assert_eq!(report.count(), 0, "{report:?}");
        let m2 = noelle.into_module();
        let again = run_module(&m2, "main", &[], &RunConfig::default()).unwrap();
        assert_eq!(again.ret_i64(), seq.ret_i64());
    }
}
