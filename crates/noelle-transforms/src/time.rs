//! Time-Squeezer: optimize compare instructions for timing-speculative
//! micro-architectures.
//!
//! "The compiler needs to decide when to swap the compare operands (and
//! modify its uses), how to change the schedule of instructions, and where
//! to inject instructions that modify the clock period of the underlying
//! architecture. This custom tool uses DFE, L, and FR to decide where to
//! inject clock-changing instructions. It then uses SCD to optimize the
//! instruction sequence [...]. Finally, it uses ISL and PDG to analyze the
//! compare instructions and their dependences."
//!
//! Model: the simulated timing-speculative core can run with a shorter clock
//! period when every compare in a region is in *canonical* form (variable on
//! the left, constant on the right — the comparator's critical path is
//! shortest then). The tool canonicalizes compares by swapping operands and
//! predicates, analyzes the compare-dependence islands, and injects
//! `clock.set(92)` at the entry of fully-canonical functions.

use noelle_core::noelle::{Abstraction, Noelle};
use noelle_ir::inst::{Callee, Inst, InstId};
use noelle_ir::module::FuncId;
use noelle_ir::types::Type;
use noelle_ir::value::Value;
use noelle_pdg::islands::islands_of;

/// What Time-Squeezer did.
#[derive(Debug, Clone, Default)]
pub struct TimeReport {
    /// Compares whose operands were swapped into canonical form.
    pub swapped: usize,
    /// Compares already canonical.
    pub already_canonical: usize,
    /// Functions whose compares are all canonical and that received a
    /// `clock.set` injection.
    pub clocked_functions: usize,
    /// Compare-dependence islands analyzed.
    pub islands: usize,
}

/// Run Time-Squeezer.
pub fn run(noelle: &mut Noelle) -> TimeReport {
    for a in [
        Abstraction::Dfe,
        Abstraction::L,
        Abstraction::Fr,
        Abstraction::Scd,
        Abstraction::Isl,
        Abstraction::Pdg,
        Abstraction::Lb,
        Abstraction::Ls,
    ] {
        noelle.note(a);
    }
    let mut report = TimeReport::default();
    // One cheap handle to the cached whole-program PDG: the compare swaps
    // below don't change dependences, and the Arc stays valid across the
    // module mutations even though the manager invalidates its own cache.
    let pdg = noelle.pdg();
    let fids: Vec<FuncId> = noelle.module().func_ids().collect();
    for fid in fids {
        if noelle.module().func(fid).is_declaration() {
            continue;
        }
        // Analyze compare islands through the PDG (compares connected by
        // shared data dependences form one island and must agree on the
        // clock period).
        let f = noelle.module().func(fid);
        let compares: Vec<InstId> = f
            .inst_ids()
            .into_iter()
            .filter(|&i| matches!(f.inst(i), Inst::Icmp { .. }))
            .collect();
        let mut edges = Vec::new();
        if let Some(g) = pdg.per_function.get(&fid) {
            for &a in &compares {
                for &bb in &compares {
                    if a < bb {
                        let linked = g
                            .dependences_of(a)
                            .intersection(&g.dependences_of(bb))
                            .next()
                            .is_some();
                        if linked {
                            edges.push((a, bb));
                        }
                    }
                }
            }
        }
        report.islands += islands_of(&compares, &edges).len();

        noelle.edit(|tx| {
            let m = tx.module_touching([fid]);
            let mut function_swapped = 0usize;
            for id in compares {
                let f = m.func_mut(fid);
                if let Inst::Icmp { pred, lhs, rhs, .. } = f.inst(id).clone() {
                    let lhs_const = lhs.is_const();
                    let rhs_const = rhs.is_const();
                    match (lhs_const, rhs_const) {
                        (true, false) => {
                            // Swap into canonical var-vs-const form.
                            if let Inst::Icmp {
                                pred: p,
                                lhs: l,
                                rhs: r,
                                ..
                            } = f.inst_mut(id)
                            {
                                *p = pred.swapped();
                                std::mem::swap(l, r);
                            }
                            f.set_inst_metadata(id, "time.optimized", "1");
                            function_swapped += 1;
                            report.swapped += 1;
                        }
                        _ => {
                            f.set_inst_metadata(id, "time.optimized", "1");
                            report.already_canonical += 1;
                        }
                    }
                }
            }
            // After canonicalization every compare is canonical, so any
            // compare-bearing function can run with a tightened clock.
            if function_swapped > 0 || has_compares(m, fid) {
                // Every compare in the function is canonical now: the region can
                // run with a tightened clock.
                let clock = m.get_or_declare("clock.set", vec![Type::I64], Type::Void);
                let f = m.func_mut(fid);
                let entry = f.entry();
                f.insert_inst(
                    entry,
                    0,
                    Inst::Call {
                        callee: Callee::Direct(clock),
                        args: vec![Value::const_i64(92)],
                        ret_ty: Type::Void,
                    },
                );
                report.clocked_functions += 1;
            }
        });
    }
    report
}

fn has_compares(m: &noelle_ir::Module, fid: FuncId) -> bool {
    let f = m.func(fid);
    f.inst_ids()
        .into_iter()
        .any(|i| matches!(f.inst(i), Inst::Icmp { .. }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use noelle_core::noelle::AliasTier;
    use noelle_ir::inst::IcmpPred;
    use noelle_ir::parser::parse_module;
    use noelle_runtime::{run_module, RunConfig};

    const PROGRAM: &str = r#"
module "timedemo" {
define i64 @main() {
entry:
  br header
header:
  %i = phi i64 [entry: i64 0] [body: %i2]
  %s = phi i64 [entry: i64 0] [body: %s2]
  %c = icmp sgt i64 i64 400, %i
  condbr %c, body, exit
body:
  %big = icmp slt i64 i64 100, %i
  %bump = select i64 %big, i64 3, i64 1
  %s2 = add i64 %s, %bump
  %i2 = add i64 %i, i64 1
  br header
exit:
  ret %s
}
}
"#;

    #[test]
    fn swaps_const_lhs_compares_and_tightens_clock() {
        let m = parse_module(PROGRAM).unwrap();
        let before = run_module(&m, "main", &[], &RunConfig::default()).unwrap();
        let mut noelle = Noelle::new(m, AliasTier::Full);
        let report = run(&mut noelle);
        assert_eq!(report.swapped, 2, "{report:?}");
        assert_eq!(report.clocked_functions, 1);
        assert!(report.islands >= 1);

        let m2 = noelle.into_module();
        noelle_ir::verifier::verify_module(&m2).expect("verifies");
        // Compare orientation preserved the predicate semantics.
        let f = m2.func_by_name("main").unwrap();
        let swapped: Vec<_> = f
            .inst_ids()
            .into_iter()
            .filter_map(|i| match f.inst(i) {
                Inst::Icmp { pred, rhs, .. } if rhs.is_const() => Some(*pred),
                _ => None,
            })
            .collect();
        assert!(swapped.contains(&IcmpPred::Slt)); // 400 > i became i < 400
        assert!(swapped.contains(&IcmpPred::Sgt)); // 100 < i became i > 100

        let after = run_module(&m2, "main", &[], &RunConfig::default()).unwrap();
        assert_eq!(after.ret_i64(), before.ret_i64(), "semantics preserved");
        assert!(
            after.cycles < before.cycles,
            "tightened clock must save cycles: {} -> {}",
            before.cycles,
            after.cycles
        );
        assert_eq!(after.counters.get("clock_sets"), Some(&1));
    }

    #[test]
    fn canonical_program_only_gets_clock() {
        let src = r#"
module "t" {
define i64 @main() {
entry:
  %c = icmp slt i64 i64 1, i64 2
  %r = select i64 %c, i64 1, i64 0
  ret %r
}
}
"#;
        let m = parse_module(src).unwrap();
        let mut noelle = Noelle::new(m, AliasTier::Full);
        let report = run(&mut noelle);
        assert_eq!(report.swapped, 0);
        assert_eq!(report.clocked_functions, 1);
    }
}
