//! Loop-Invariant Code Motion, the NOELLE way.
//!
//! "It uses FR to hoist loop invariants from innermost loops to outermost
//! ones. Then, it uses INV to identify instructions that could be hoisted.
//! Finally, it uses LB to perform the hoist transformation." The invariant
//! detection is the paper's Algorithm 2 (PDG-powered, recursive); compare
//! with [`crate::baseline::licm_llvm`], which drives the same hoister with
//! Algorithm 1.

use noelle_analysis::alias::{underlying_objects, MemoryObject};
use noelle_core::invariants::InvariantSet;
use noelle_core::loop_builder::hoist_to_preheader;
use noelle_core::noelle::{Abstraction, Noelle};
use noelle_ir::inst::{Callee, Inst, InstId};
use noelle_ir::loops::LoopInfo;
use noelle_ir::module::{FuncId, Module};
use noelle_ir::value::Value;

/// What LICM did.
#[derive(Debug, Clone, Default)]
pub struct LicmReport {
    /// Total instructions hoisted.
    pub hoisted: usize,
    /// Per-loop counts: `(function, header, hoisted)`.
    pub per_loop: Vec<(String, noelle_ir::module::BlockId, usize)>,
}

/// True if executing `id` unconditionally in the pre-header is safe even
/// when the loop body would never run: no side effects and no possible
/// fault. Loads are speculatable when their address provably refers to
/// (whole) known allocations.
pub fn safe_to_speculate(m: &Module, fid: FuncId, id: InstId) -> bool {
    let f = m.func(fid);
    match f.inst(id) {
        Inst::Load { ptr, .. } => {
            let objs = underlying_objects(m, fid, *ptr);
            !objs.is_empty()
                && objs.iter().all(|o| {
                    matches!(
                        o,
                        Some(MemoryObject::Alloca(_, _)) | Some(MemoryObject::Global(_))
                    )
                })
        }
        Inst::Call {
            callee: Callee::Direct(cid),
            ..
        } => {
            let e = noelle_analysis::modref::external_effects_sym(m.func(*cid).name_sym());
            m.func(*cid).is_declaration() && !e.reads_memory && !e.writes_memory && !e.io
        }
        Inst::Call { .. } | Inst::Store { .. } | Inst::Term(_) | Inst::Phi { .. } => false,
        Inst::Bin { op, rhs, .. } => {
            // Division by a possibly-zero value must not be speculated.
            !matches!(
                op,
                noelle_ir::inst::BinOp::Div | noelle_ir::inst::BinOp::Rem
            ) || matches!(rhs, Value::Const(noelle_ir::value::Constant::Int(v, _)) if *v != 0)
        }
        _ => true,
    }
}

/// Hoist the invariant instructions of one loop (those detected in `inv`)
/// into its pre-header, in dependence order. Returns the number hoisted.
///
/// This is the shared hoisting driver: the NOELLE tool and the LLVM-baseline
/// tool differ only in how `inv` was computed — exactly the comparison the
/// paper draws.
pub fn hoist_invariants(m: &mut Module, fid: FuncId, l: &LoopInfo, inv: &InvariantSet) -> usize {
    // Candidates in layout order; hoist iteratively so chains (x invariant,
    // y = x * 2) move together while respecting def-before-use in the
    // pre-header.
    let mut hoisted: Vec<InstId> = Vec::new();
    loop {
        let f = m.func(fid);
        let candidates: Vec<InstId> = f
            .inst_ids()
            .into_iter()
            .filter(|&id| {
                l.contains(f.parent_block(id))
                    && inv.contains(id)
                    && !hoisted.contains(&id)
                    && safe_to_speculate(m, fid, id)
            })
            .collect();
        let mut progressed = false;
        for id in candidates {
            let f = m.func(fid);
            // Every in-loop operand must already be hoisted.
            let ready = f.inst(id).operands().iter().all(|op| match op {
                Value::Inst(d) => !l.contains(f.parent_block(*d)) || hoisted.contains(d),
                _ => true,
            });
            if !ready {
                continue;
            }
            if hoist_to_preheader(m.func_mut(fid), l, id).is_ok() {
                hoisted.push(id);
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }
    hoisted.len()
}

/// Run NOELLE LICM over the whole module.
pub fn run(noelle: &mut Noelle) -> LicmReport {
    for a in [
        Abstraction::Fr,
        Abstraction::Inv,
        Abstraction::Lb,
        Abstraction::L,
        Abstraction::Ls,
        Abstraction::Pdg,
    ] {
        noelle.note(a);
    }
    let mut report = LicmReport::default();
    let forest = noelle.program_loop_forest();
    for node in forest.innermost_first() {
        let (fid, _) = node;
        let l = forest.loop_info(node).clone();
        let la = noelle.loop_abstraction(fid, l.clone());
        let inv = la.invariants.clone();
        let fname = noelle.module().func(fid).name.clone();
        let n = noelle.edit(|tx| hoist_invariants(tx.module_touching([fid]), fid, &l, &inv));
        if n > 0 {
            report.hoisted += n;
            report.per_loop.push((fname, l.header, n));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use noelle_core::noelle::AliasTier;
    use noelle_ir::parser::parse_module;
    use noelle_runtime::{run_module, RunConfig};

    const LICM_PROGRAM: &str = r#"
module "licmdemo" {
define i64 @kernel(i64 %a, i64 %b, i64 %n) {
entry:
  br header
header:
  %i = phi i64 [entry: i64 0] [body: %i2]
  %s = phi i64 [entry: i64 0] [body: %s2]
  %c = icmp slt i64 %i, %n
  condbr %c, body, exit
body:
  %x = mul i64 %a, %b
  %y = add i64 %x, i64 17
  %z = mul i64 %y, %a
  %s2 = add i64 %s, %z
  %i2 = add i64 %i, i64 1
  br header
exit:
  ret %s
}
define i64 @main() {
entry:
  %r = call i64 @kernel(i64 3, i64 5, i64 200)
  ret %r
}
}
"#;

    #[test]
    fn hoists_invariant_chain_and_preserves_semantics() {
        let m = parse_module(LICM_PROGRAM).unwrap();
        let before = run_module(&m, "main", &[], &RunConfig::default()).unwrap();
        let mut noelle = Noelle::new(m, AliasTier::Full);
        let report = run(&mut noelle);
        // x, y, z all hoist (the chain needs Algorithm 2's recursion).
        assert_eq!(report.hoisted, 3, "{report:?}");
        let m2 = noelle.into_module();
        noelle_ir::verifier::verify_module(&m2)
            .unwrap_or_else(|e| panic!("verifies after LICM: {e}"));
        let after = run_module(&m2, "main", &[], &RunConfig::default()).unwrap();
        assert_eq!(after.ret_i64(), before.ret_i64());
        assert!(
            after.cycles < before.cycles,
            "LICM must save cycles: {} -> {}",
            before.cycles,
            after.cycles
        );
    }

    #[test]
    fn division_by_variable_not_speculated() {
        let src = r#"
module "d" {
define i64 @kernel(i64 %a, i64 %b, i64 %n) {
entry:
  br header
header:
  %i = phi i64 [entry: i64 0] [body: %i2]
  %s = phi i64 [entry: i64 0] [body: %s2]
  %c = icmp slt i64 %i, %n
  condbr %c, body, exit
body:
  %q = div i64 %a, %b
  %s2 = add i64 %s, %q
  %i2 = add i64 %i, i64 1
  br header
exit:
  ret %s
}
define i64 @main() {
entry:
  %r = call i64 @kernel(i64 10, i64 0, i64 0)
  ret %r
}
}
"#;
        // The loop never runs and b = 0: hoisting the division would fault.
        let m = parse_module(src).unwrap();
        let before = run_module(&m, "main", &[], &RunConfig::default()).unwrap();
        assert_eq!(before.ret_i64(), Some(0));
        let mut noelle = Noelle::new(m, AliasTier::Full);
        let report = run(&mut noelle);
        assert_eq!(report.hoisted, 0, "{report:?}");
        let m2 = noelle.into_module();
        let after = run_module(&m2, "main", &[], &RunConfig::default()).unwrap();
        assert_eq!(after.ret_i64(), Some(0));
    }

    #[test]
    fn invariant_load_from_alloca_hoists() {
        let src = r#"
module "d" {
define i64 @main() {
entry:
  %cell = alloca i64, i64 1
  store i64 i64 42, %cell
  br header
header:
  %i = phi i64 [entry: i64 0] [body: %i2]
  %s = phi i64 [entry: i64 0] [body: %s2]
  %c = icmp slt i64 %i, i64 100
  condbr %c, body, exit
body:
  %v = load i64, %cell
  %s2 = add i64 %s, %v
  %i2 = add i64 %i, i64 1
  br header
exit:
  ret %s
}
}
"#;
        let m = parse_module(src).unwrap();
        let before = run_module(&m, "main", &[], &RunConfig::default()).unwrap();
        let mut noelle = Noelle::new(m, AliasTier::Full);
        let report = run(&mut noelle);
        assert_eq!(report.hoisted, 1, "{report:?}");
        let m2 = noelle.into_module();
        let after = run_module(&m2, "main", &[], &RunConfig::default()).unwrap();
        assert_eq!(after.ret_i64(), before.ret_i64());
    }
}
