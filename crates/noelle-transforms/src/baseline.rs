//! Baselines for the evaluation.
//!
//! - [`licm_llvm`] — loop-invariant code motion driven by the paper's
//!   **Algorithm 1** (low-level dominator/alias logic, non-recursive, basic
//!   alias tier) instead of Algorithm 2. The difference between its hoist
//!   counts and NOELLE LICM's is the Figure 4 signal.
//! - [`conservative_parallelize`] — the gcc/icc stand-in used in the
//!   Figure 5 comparison: a textbook auto-parallelizer that only handles
//!   do-while-shaped loops, detects induction variables the LLVM way, uses
//!   only the basic alias tier, and supports no reductions. On while-shaped,
//!   reduction-carrying benchmark loops it finds (almost) nothing — matching
//!   the paper's observation that "both gcc and icc did not obtain
//!   additional performance benefits from their parallelization techniques".

use crate::common::{parallelize_with, ParallelReport};
use crate::doall::distribute_cyclically;
use noelle_analysis::alias::BasicAlias;
use noelle_analysis::modref::ModRefSummaries;
use noelle_core::induction::ivs_llvm;
use noelle_core::invariants::invariants_llvm;
use noelle_core::loop_abs::LoopAbstraction;
use noelle_core::noelle::{AliasTier, Noelle};
use noelle_ir::cfg::Cfg;
use noelle_ir::dom::DomTree;
use noelle_ir::module::Module;
use noelle_pdg::pdg::PdgBuilder;

/// LICM with Algorithm 1: returns total instructions hoisted.
pub fn licm_llvm(m: &mut Module) -> usize {
    let mut hoisted_total = 0;
    let fids: Vec<_> = m.func_ids().collect();
    for fid in fids {
        if m.func(fid).is_declaration() {
            continue;
        }
        let loops = {
            let f = m.func(fid);
            let cfg = Cfg::new(f);
            let dt = DomTree::new(f, &cfg);
            noelle_ir::loops::LoopForest::new(f, &cfg, &dt)
                .innermost_first()
                .iter()
                .map(|&lid| {
                    noelle_ir::loops::LoopForest::new(f, &cfg, &dt)
                        .loop_info(lid)
                        .clone()
                })
                .collect::<Vec<_>>()
        };
        for l in loops {
            let inv = {
                let f = m.func(fid);
                let cfg = Cfg::new(f);
                let dt = DomTree::new(f, &cfg);
                let basic = BasicAlias::new(m);
                let modref = ModRefSummaries::compute(m);
                invariants_llvm(m, fid, &l, &dt, &basic, &modref)
            };
            hoisted_total += crate::licm::hoist_invariants(m, fid, &l, &inv);
        }
    }
    hoisted_total
}

/// The gcc/icc-like conservative auto-parallelizer.
pub fn conservative_parallelize(m: Module, n_tasks: usize) -> (Module, ParallelReport) {
    let mut report = ParallelReport::default();
    // Basic alias tier only.
    let mut noelle = Noelle::new(m, AliasTier::Basic);
    let forest = noelle.program_loop_forest();
    let mut order = forest.innermost_first();
    order.reverse();
    for node in order {
        let (fid, _) = node;
        let l = forest.loop_info(node).clone();
        let fname = noelle.module().func(fid).name.clone();

        // 1. LLVM-style IV detection: do-while shape required.
        let ivs = ivs_llvm(noelle.module().func(fid), &l);
        if ivs.governing().is_none() {
            report
                .skipped
                .push((fname, l.header, "no induction variable (loop shape)".into()));
            continue;
        }
        // 2. Independence with the basic alias tier only, and no reduction
        //    support: any carried dependence disqualifies.
        let la = {
            let m = noelle.module();
            let basic = BasicAlias::new(m);
            let builder = PdgBuilder::new(m, &basic);
            LoopAbstraction::build(&builder, fid, l.clone())
        };
        let iv_insts = la.ivs.recurrence_insts();
        let has_carried = la.pdg.edges().iter().any(|e| {
            e.attrs.loop_carried
                && e.attrs.is_data()
                && la.pdg.is_internal(e.src)
                && la.pdg.is_internal(e.dst)
                && !(iv_insts.contains(&e.src) && iv_insts.contains(&e.dst))
        });
        if has_carried {
            report
                .skipped
                .push((fname, l.header, "possible loop-carried dependence".into()));
            continue;
        }
        if !la.env.live_outs.is_empty() {
            report.skipped.push((
                fname,
                l.header,
                "live-out values (no reduction support)".into(),
            ));
            continue;
        }
        let task_name = format!("{fname}.autopar.{}", l.header.0);
        match noelle.edit(|tx| {
            parallelize_with(
                tx.module_touching([fid]),
                fid,
                &la,
                n_tasks,
                &task_name,
                distribute_cyclically,
            )
        }) {
            Ok(()) => report.parallelized.push((fname, l.header)),
            Err(e) => report.skipped.push((fname, l.header, e.to_string())),
        }
    }
    (noelle.into_module(), report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use noelle_ir::parser::parse_module;

    /// The canonical while-shaped reduction loop: NOELLE DOALL handles it;
    /// the conservative baseline must not.
    const WHILE_REDUCTION: &str = r#"
module "t" {
declare i64* @malloc(i64 %n)
define i64 @kernel(i64* %a, i64 %n) {
entry:
  br header
header:
  %i = phi i64 [entry: i64 0] [body: %i2]
  %s = phi i64 [entry: i64 0] [body: %s2]
  %c = icmp slt i64 %i, %n
  condbr %c, body, exit
body:
  %p = gep i64, %a, %i
  %v = load i64, %p
  %s2 = add i64 %s, %v
  %i2 = add i64 %i, i64 1
  br header
exit:
  ret %s
}
define i64 @main() {
entry:
  %buf = call i64* @malloc(i64 800)
  %s = call i64 @kernel(%buf, i64 100)
  ret %s
}
}
"#;

    #[test]
    fn conservative_finds_nothing_on_while_reduction() {
        let m = parse_module(WHILE_REDUCTION).unwrap();
        let (m2, report) = conservative_parallelize(m, 4);
        assert_eq!(report.count(), 0, "{report:?}");
        // Untouched.
        noelle_ir::verifier::verify_module(&m2).expect("verifies");
        assert!(report
            .skipped
            .iter()
            .any(|(_, _, why)| why.contains("loop shape")));
    }

    #[test]
    fn licm_llvm_hoists_less_than_noelle() {
        // Chain: x invariant, y = x*2 chained. Algorithm 1 hoists only x...
        // and then, because the driver iterates, y's operand is now outside
        // the loop — but Algorithm 1 computes the invariant *set* up front,
        // so y is still missed in the same run.
        let src = r#"
module "t" {
define i64 @kernel(i64 %a, i64 %b, i64 %n) {
entry:
  br header
header:
  %i = phi i64 [entry: i64 0] [body: %i2]
  %s = phi i64 [entry: i64 0] [body: %s2]
  %c = icmp slt i64 %i, %n
  condbr %c, body, exit
body:
  %x = mul i64 %a, %b
  %y = add i64 %x, i64 17
  %s2 = add i64 %s, %y
  %i2 = add i64 %i, i64 1
  br header
exit:
  ret %s
}
}
"#;
        let mut m_llvm = parse_module(src).unwrap();
        let hoisted_llvm = licm_llvm(&mut m_llvm);
        assert_eq!(hoisted_llvm, 1, "Algorithm 1 finds only x");

        let m_noelle = parse_module(src).unwrap();
        let mut noelle = Noelle::new(m_noelle, AliasTier::Full);
        let report = crate::licm::run(&mut noelle);
        assert_eq!(report.hoisted, 2, "Algorithm 2 finds x and y");
        noelle_ir::verifier::verify_module(&m_llvm).expect("baseline result verifies");
    }
}
