//! DSWP: decoupled software pipelining.
//!
//! "DSWP parallelizes a loop by distributing its SCCs between cores.
//! Instances of a given SCC are executed by the same core to create a
//! unidirectional communication between cores."
//!
//! The aSCCDAG is partitioned (in topological order) into pipeline *stages*;
//! each stage becomes a task that runs a pruned clone of the loop. Values
//! crossing stage boundaries flow through `noelle.queue.*` inter-core
//! queues; a token queue between consecutive stages keeps iteration `k` of
//! stage `s+1` behind iteration `k` of stage `s`, which also orders
//! cross-stage memory accesses.

use crate::common::{
    approx_inst_cost, emit_dispatcher_with_queues, liveouts_supported, reset_reduction_initials,
    task_fn_ptr_type, task_loop, LoopTargetOpts, ParallelReport, ParallelizeError,
    QUEUE_POP_INTRINSIC, QUEUE_PUSH_INTRINSIC,
};
use noelle_core::loop_abs::LoopAbstraction;
use noelle_core::noelle::{Abstraction, Noelle};
use noelle_core::reduction::identity_for;
use noelle_core::task::{outline_loop_as_task, TaskFunction};
use noelle_ir::cfg::Cfg;
use noelle_ir::dom::DomTree;
use noelle_ir::inst::{Callee, CastOp, Inst, InstId, Terminator};
use noelle_ir::module::{BlockId, FuncId, Function, Module};
use noelle_ir::types::Type;
use noelle_ir::value::Value;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Options controlling DSWP. `target.workers` is the number of pipeline
/// stages (= cores used); the default is two, the canonical produce/consume
/// split.
#[derive(Clone, Debug)]
pub struct DswpOptions {
    /// Shared loop selection: hotness gate, pinning, worker (stage) count.
    pub target: LoopTargetOpts,
}

impl Default for DswpOptions {
    fn default() -> DswpOptions {
        DswpOptions {
            target: LoopTargetOpts::default().with_workers(2),
        }
    }
}

/// Apply DSWP to every eligible loop of the module.
pub fn run(noelle: &mut Noelle, opts: &DswpOptions) -> ParallelReport {
    for a in [
        Abstraction::Pro,
        Abstraction::Fr,
        Abstraction::L,
        Abstraction::Env,
        Abstraction::Task,
        Abstraction::Lb,
        Abstraction::Iv,
        Abstraction::Ivs,
        Abstraction::Inv,
        Abstraction::Rd,
        Abstraction::ASccDag,
        Abstraction::Pdg,
        Abstraction::Ar,
        Abstraction::Ls,
    ] {
        noelle.note(a);
    }
    let mut report = ParallelReport::default();
    let profiles = noelle.profiles();
    let have_profiles = !profiles.block_counts.is_empty();
    let forest = noelle.program_loop_forest();
    let mut order = forest.innermost_first();
    order.reverse();

    let mut done: Vec<(FuncId, BlockId)> = Vec::new();
    for node in order {
        let (fid, _) = node;
        let l = forest.loop_info(node).clone();
        if done.iter().any(|&(df, dh)| {
            df == fid
                && l.header != dh
                && forest.per_function[&fid]
                    .loops()
                    .iter()
                    .find(|x| x.header == dh)
                    .map(|p| p.contains(l.header))
                    .unwrap_or(false)
        }) {
            continue;
        }
        let fname = noelle.module().func(fid).name.clone();
        if !opts.target.admits(&fname, l.header) {
            continue;
        }
        if have_profiles
            && profiles.loop_hotness(noelle.module(), fid, &l) < opts.target.min_hotness
        {
            report.skipped.push((fname, l.header, "cold loop".into()));
            continue;
        }
        let la = noelle.loop_abstraction(fid, l.clone());
        match noelle
            .edit(|tx| pipeline_loop(tx.module_touching([fid]), fid, &la, opts.target.workers))
        {
            Ok(()) => {
                report.parallelized.push((fname, l.header));
                done.push((fid, l.header));
            }
            Err(e) => report.skipped.push((fname, l.header, e.to_string())),
        }
    }
    report
}

/// SCC partition of a loop into pipeline stages.
struct StagePlan {
    /// Stage index of every *assignable* SCC.
    stage_of_scc: BTreeMap<usize, usize>,
    /// Instructions replicated in every stage (IVs, control, invariants).
    replicated: BTreeSet<InstId>,
    /// Number of stages actually used.
    n_stages: usize,
}

/// The read-only gate phase of [`pipeline_loop`]: everything DSWP decides
/// before mutating the module. Shared verbatim with [`precheck`] so the
/// parallelism auditor's verdicts and the transform's behavior cannot
/// drift apart.
fn gate(
    m: &Module,
    fid: FuncId,
    la: &LoopAbstraction,
    want_stages: usize,
) -> Result<(StagePlan, Vec<(InstId, usize)>), ParallelizeError> {
    let l = &la.structure;
    if la.ivs.governing().is_none() {
        return Err(ParallelizeError::NoGoverningIv);
    }
    if !liveouts_supported(la) {
        return Err(ParallelizeError::UnsupportedLiveOut);
    }
    let latch = l
        .single_latch()
        .ok_or_else(|| ParallelizeError::Shape("multiple latches".into()))?;
    // Every loop block must run exactly once per iteration.
    {
        let f = m.func(fid);
        let cfg = Cfg::new(f);
        let dt = DomTree::new(f, &cfg);
        for &b in &l.blocks {
            if !dt.dominates(b, latch) {
                return Err(ParallelizeError::Shape(
                    "conditional control flow inside loop body".into(),
                ));
            }
        }
    }

    let plan = plan_stages(m, fid, la, want_stages)?;
    let n_stages = plan.n_stages;

    // Profitability: pipelining pays only when a stage's share of the body
    // exceeds the queue traffic it must perform each iteration. A light loop
    // body drowned in queue operations would *slow down* (the selection step
    // real DSWP implementations also perform).
    {
        let f = m.func(fid);
        let body_cost: u64 = la
            .pdg
            .internal_nodes()
            .map(|i| approx_inst_cost(f.inst(i)))
            .sum();
        // Each stage pays ~2 queue operations (30 cycles each) plus, in the
        // balanced steady state, one inter-core latency (60 cycles) per
        // iteration because its pops arrive just before the matching push.
        let est_stage = body_cost / n_stages as u64 + 2 * 30 + 60;
        if est_stage * 21 / 20 >= body_cost {
            return Err(ParallelizeError::Shape(
                "loop body too light for pipelining".into(),
            ));
        }
    }

    // Cross-stage register dependences: (def, consumer stage) pairs.
    let f = m.func(fid);
    let stage_of_inst = |i: InstId| -> Option<usize> {
        if plan.replicated.contains(&i) || matches!(f.inst(i), Inst::Term(_)) {
            return None; // present everywhere
        }
        la.sccdag
            .scc_of(i)
            .and_then(|s| plan.stage_of_scc.get(&s).copied())
    };
    let mut value_queues: Vec<(InstId, usize)> = Vec::new(); // (def, consumer stage)
    for e in la.pdg.edges() {
        if !e.attrs.is_data() || e.attrs.memory {
            continue;
        }
        if !la.pdg.is_internal(e.src) || !la.pdg.is_internal(e.dst) {
            continue;
        }
        let (Some(sa), db) = (stage_of_inst(e.src), stage_of_inst(e.dst)) else {
            continue;
        };
        let Some(sb) = db else { continue };
        if sa == sb {
            continue;
        }
        if sb < sa {
            return Err(ParallelizeError::Shape(
                "backward cross-stage dependence".into(),
            ));
        }
        if !value_queues.contains(&(e.src, sb)) {
            value_queues.push((e.src, sb));
        }
    }
    value_queues.sort();
    // Queue operations must execute exactly once per iteration: forbid
    // communicated defs that live in the header (it runs one extra time).
    for &(d, _) in &value_queues {
        if f.parent_block(d) == l.header {
            return Err(ParallelizeError::Shape(
                "communicated value defined in the loop header".into(),
            ));
        }
    }
    Ok((plan, value_queues))
}

/// Decide, without mutating anything, whether DSWP would apply to this
/// loop: the shared [`gate`] phase plus structural mirrors of the failure
/// points the transform only reaches mid-rewrite (outlining needs a single
/// exit block, the token chain needs an unambiguous body block, the
/// dispatcher needs a creatable pre-header).
pub fn precheck(
    m: &Module,
    fid: FuncId,
    la: &LoopAbstraction,
    want_stages: usize,
) -> Result<(), ParallelizeError> {
    gate(m, fid, la, want_stages)?;
    let l = &la.structure;
    let f = m.func(fid);
    if l.exit_blocks().len() != 1 {
        return Err(ParallelizeError::Shape(
            "loop has multiple exit blocks".into(),
        ));
    }
    // prune_stage(): the token pop lands in the header's unique in-loop
    // successor (gate() already guarantees a single latch).
    let latch = l.single_latch().expect("gate checked");
    if l.header != latch {
        let in_loop = f
            .successors(l.header)
            .into_iter()
            .filter(|b| l.contains(*b))
            .count();
        if in_loop != 1 {
            return Err(ParallelizeError::Shape(
                "header with multiple in-loop successors".into(),
            ));
        }
    }
    // emit_dispatcher_with_queues(): pre-header must exist or be creatable.
    if l.preheader.is_none()
        && !f
            .block_order()
            .iter()
            .any(|&b| !l.contains(b) && f.successors(b).contains(&l.header))
    {
        return Err(ParallelizeError::Shape(
            "header has no out-of-loop predecessor".into(),
        ));
    }
    Ok(())
}

/// Pipeline one loop.
pub fn pipeline_loop(
    m: &mut Module,
    fid: FuncId,
    la: &LoopAbstraction,
    want_stages: usize,
) -> Result<(), ParallelizeError> {
    let l = &la.structure;
    let (plan, value_queues) = gate(m, fid, la, want_stages)?;
    let n_stages = plan.n_stages;
    let n_token_queues = n_stages - 1;
    let n_queues = value_queues.len() + n_token_queues;
    let queue_index: HashMap<(InstId, usize), usize> = value_queues
        .iter()
        .enumerate()
        .map(|(qi, &(d, s))| ((d, s), qi))
        .collect();

    // Build one pruned clone per stage.
    let fname = m.func(fid).name.clone();
    let mut stage_fids = Vec::new();
    for s in 0..n_stages {
        let task = outline_loop_as_task(
            m,
            fid,
            l,
            &la.env,
            &format!("{fname}.dswp.{}.stage{}", l.header.0, s),
        )?;
        reset_reduction_initials(m, &task, &la.reductions);
        prune_stage(
            m,
            la,
            &task,
            s,
            &plan,
            &queue_index,
            value_queues.len(),
            n_stages,
        )?;
        stage_fids.push(task.fid);
    }

    // Trampoline: dispatch target that forwards to the stage of task_id.
    let tramp = build_trampoline(
        m,
        &format!("{fname}.dswp.{}.tramp", l.header.0),
        &stage_fids,
    );

    emit_dispatcher_with_queues(m, fid, la, tramp, &la.env, n_stages, n_queues)?;
    Ok(())
}

/// Pipeline shape summary for the planner's cost model: per-stage compute
/// costs, cross-stage queue traffic, and the replicated overhead each stage
/// carries — derived from the same [`gate`] the transform itself uses, so
/// predictions and behavior cannot drift apart.
#[derive(Debug, Clone)]
pub struct StageSummary {
    /// Number of pipeline stages the plan actually uses.
    pub n_stages: usize,
    /// Estimated per-iteration cost of each stage (owned SCC instructions
    /// plus the replicated IV/control set every stage re-executes).
    pub stage_costs: Vec<u64>,
    /// Number of cross-stage value queues.
    pub value_queues: usize,
    /// Queue operations (value + token pushes and pops) each stage performs
    /// per iteration.
    pub queue_ops: Vec<u64>,
}

/// Summarize the pipeline DSWP would build for this loop without mutating
/// anything. Errors exactly when [`precheck`]'s gate phase would refuse.
pub fn stage_summary(
    m: &Module,
    fid: FuncId,
    la: &LoopAbstraction,
    want_stages: usize,
) -> Result<StageSummary, ParallelizeError> {
    let (plan, value_queues) = gate(m, fid, la, want_stages)?;
    let f = m.func(fid);
    let replicated_cost: u64 = plan
        .replicated
        .iter()
        .map(|&i| approx_inst_cost(f.inst(i)))
        .sum();
    let mut stage_costs = vec![replicated_cost; plan.n_stages];
    for (&scc, &s) in &plan.stage_of_scc {
        for &i in &la.sccdag.nodes()[scc].insts {
            if !plan.replicated.contains(&i) {
                stage_costs[s] += approx_inst_cost(f.inst(i));
            }
        }
    }
    let mut queue_ops = vec![0u64; plan.n_stages];
    for &(d, consumer) in &value_queues {
        if let Some(s) = la
            .sccdag
            .scc_of(d)
            .and_then(|s| plan.stage_of_scc.get(&s).copied())
        {
            queue_ops[s] += 1; // push in the producer stage
        }
        queue_ops[consumer] += 1; // pop in the consumer stage
    }
    for (s, ops) in queue_ops.iter_mut().enumerate() {
        if s > 0 {
            *ops += 1; // token pop from the previous stage
        }
        if s + 1 < plan.n_stages {
            *ops += 1; // token push to the next stage
        }
    }
    Ok(StageSummary {
        n_stages: plan.n_stages,
        stage_costs,
        value_queues: value_queues.len(),
        queue_ops,
    })
}

/// Plan the pipeline stages: the replicated set (IVs, control chains,
/// invariants) and a contiguous, weight-balanced partition of the remaining
/// SCCs in topological order.
fn plan_stages(
    m: &Module,
    fid: FuncId,
    la: &LoopAbstraction,
    want: usize,
) -> Result<StagePlan, ParallelizeError> {
    let f = m.func(fid);
    let f_insts: BTreeSet<InstId> = la.pdg.internal_nodes().collect();
    let mut replicated: BTreeSet<InstId> = la.invariants.iter().collect();
    for node in la.sccdag.nodes() {
        if node.is_induction {
            replicated.extend(node.insts.iter().copied());
        }
    }
    // Terminator operand closure over register dependences.
    let mut work: Vec<InstId> = Vec::new();
    for &i in &f_insts {
        if matches!(f.inst(i), Inst::Term(_)) {
            for e in la.pdg.edges_to(i) {
                if e.attrs.is_data() && !e.attrs.memory && f_insts.contains(&e.src) {
                    work.push(e.src);
                }
            }
        }
    }
    while let Some(n) = work.pop() {
        if !replicated.insert(n) {
            continue;
        }
        for e in la.pdg.edges_to(n) {
            if e.attrs.is_data() && !e.attrs.memory && f_insts.contains(&e.src) {
                work.push(e.src);
            }
        }
    }
    for &i in &replicated {
        if f.inst(i).may_read_memory() || f.inst(i).may_write_memory() {
            return Err(ParallelizeError::Shape(
                "loop control depends on memory".into(),
            ));
        }
    }

    let topo = la.sccdag.topo_order();
    let assignable: Vec<usize> = topo
        .into_iter()
        .filter(|&s| {
            let node = &la.sccdag.nodes()[s];
            !node.is_induction
                && !node
                    .insts
                    .iter()
                    .all(|&i| replicated.contains(&i) || matches!(f.inst(i), Inst::Term(_)))
        })
        .collect();
    if assignable.len() < 2 {
        return Err(ParallelizeError::Shape(
            "fewer than two pipeline stages".into(),
        ));
    }
    let n_stages = want.clamp(2, assignable.len());
    let weights: Vec<usize> = assignable
        .iter()
        .map(|&s| la.sccdag.nodes()[s].insts.len())
        .collect();
    let total: usize = weights.iter().sum();
    let per_stage = total.div_ceil(n_stages);
    let mut stage_of_scc = BTreeMap::new();
    let mut stage = 0usize;
    let mut acc = 0usize;
    for (k, &scc) in assignable.iter().enumerate() {
        stage_of_scc.insert(scc, stage);
        acc += weights[k];
        let remaining = assignable.len() - k - 1;
        if acc >= per_stage && stage + 1 < n_stages && remaining >= n_stages - stage - 1 {
            stage += 1;
            acc = 0;
        }
    }
    Ok(StagePlan {
        stage_of_scc,
        replicated,
        n_stages: stage + 1,
    })
}

/// Cast an i64 queue payload into `ty` at `(block, pos)`; returns the value
/// and the next insertion position.
fn cast_from_i64(
    tf: &mut Function,
    block: BlockId,
    pos: usize,
    v: Value,
    ty: &Type,
) -> (Value, usize) {
    match ty {
        Type::Int(noelle_ir::types::IntWidth::I64) => (v, pos),
        Type::Int(_) => {
            let c = tf.insert_inst(
                block,
                pos,
                Inst::Cast {
                    op: CastOp::Trunc,
                    from: Type::I64,
                    to: ty.clone(),
                    val: v,
                },
            );
            (Value::Inst(c), pos + 1)
        }
        Type::Float(_) => {
            let c = tf.insert_inst(
                block,
                pos,
                Inst::Cast {
                    op: CastOp::Bitcast,
                    from: Type::I64,
                    to: Type::F64,
                    val: v,
                },
            );
            (Value::Inst(c), pos + 1)
        }
        _ => {
            let c = tf.insert_inst(
                block,
                pos,
                Inst::Cast {
                    op: CastOp::IntToPtr,
                    from: Type::I64,
                    to: ty.clone(),
                    val: v,
                },
            );
            (Value::Inst(c), pos + 1)
        }
    }
}

/// Cast `v` of type `ty` to an i64 queue payload at `(block, pos)`.
fn cast_to_i64(
    tf: &mut Function,
    block: BlockId,
    pos: usize,
    v: Value,
    ty: &Type,
) -> (Value, usize) {
    match ty {
        Type::Int(noelle_ir::types::IntWidth::I64) => (v, pos),
        Type::Int(_) => {
            let c = tf.insert_inst(
                block,
                pos,
                Inst::Cast {
                    op: CastOp::Sext,
                    from: ty.clone(),
                    to: Type::I64,
                    val: v,
                },
            );
            (Value::Inst(c), pos + 1)
        }
        Type::Float(_) => {
            let c = tf.insert_inst(
                block,
                pos,
                Inst::Cast {
                    op: CastOp::Bitcast,
                    from: Type::F64,
                    to: Type::I64,
                    val: v,
                },
            );
            (Value::Inst(c), pos + 1)
        }
        _ => {
            let c = tf.insert_inst(
                block,
                pos,
                Inst::Cast {
                    op: CastOp::PtrToInt,
                    from: ty.clone(),
                    to: Type::I64,
                    val: v,
                },
            );
            (Value::Inst(c), pos + 1)
        }
    }
}

/// Prune a stage clone: keep this stage's SCCs plus the replicated set,
/// replace consumed foreign values with queue pops, push produced values,
/// insert the token chain, and patch dead live-out stores with identities.
#[allow(clippy::too_many_arguments)]
fn prune_stage(
    m: &mut Module,
    la: &LoopAbstraction,
    task: &TaskFunction,
    stage: usize,
    plan: &StagePlan,
    queue_index: &HashMap<(InstId, usize), usize>,
    n_value_queues: usize,
    n_stages: usize,
) -> Result<(), ParallelizeError> {
    let pop_fn = m.get_or_declare(QUEUE_POP_INTRINSIC, vec![Type::I64], Type::I64);
    let push_fn = m.get_or_declare(QUEUE_PUSH_INTRINSIC, vec![Type::I64, Type::I64], Type::Void);

    // Load all queue ids in the entry block (before its terminator).
    let env_base_slot = la.env.num_slots(n_stages) as i64;
    let n_queues = n_value_queues + (n_stages - 1);
    let orig_f = {
        // Clone the original function's instruction view for stage queries.
        // (Only instruction kinds are needed.)
        la.pdg.internal_nodes().collect::<BTreeSet<_>>()
    };
    let _ = orig_f;

    let tl = task_loop(m, task.fid);
    let latch = tl
        .single_latch()
        .ok_or_else(|| ParallelizeError::Shape("clone lost its latch".into()))?;
    let tf = m.func_mut(task.fid);
    let mut qids: Vec<Value> = Vec::new();
    {
        let entry = task.entry;
        for qi in 0..n_queues {
            let v = noelle_core::env::EnvironmentBuilder::load_slot(
                tf,
                entry,
                Value::Arg(0),
                Value::const_i64(env_base_slot + qi as i64),
                &Type::I64,
            );
            qids.push(v);
        }
    }

    // Instruction stage classification on the ORIGINAL ids.
    let stage_of = |i: InstId| -> Option<usize> {
        la.sccdag
            .scc_of(i)
            .and_then(|s| plan.stage_of_scc.get(&s).copied())
    };

    // Walk all original loop instructions.
    let originals: Vec<InstId> = la.pdg.internal_nodes().collect();
    let mut to_delete: Vec<InstId> = Vec::new(); // clone ids
    for &orig in &originals {
        let Some(Value::Inst(clone)) = task.value_map.get(&Value::Inst(orig)).copied() else {
            continue;
        };
        let kept = plan.replicated.contains(&orig)
            || matches!(tf.inst(clone), Inst::Term(_))
            || stage_of(orig) == Some(stage);
        if kept {
            // Producer side: push for each consumer stage.
            let mut consumer_stages: Vec<usize> = queue_index
                .iter()
                .filter(|((d, _), _)| *d == orig)
                .map(|((_, t), _)| *t)
                .collect();
            consumer_stages.sort();
            consumer_stages.dedup();
            if stage_of(orig) == Some(stage) && !consumer_stages.is_empty() {
                let ty = tf.inst(clone).result_type();
                let b = tf.parent_block(clone);
                let pos = tf.position_in_block(clone).expect("attached") + 1;
                let (payload, npos) = cast_to_i64(tf, b, pos, Value::Inst(clone), &ty);
                for (pos, t) in (npos..).zip(consumer_stages) {
                    let qi = queue_index[&(orig, t)];
                    tf.insert_inst(
                        b,
                        pos,
                        Inst::Call {
                            callee: Callee::Direct(push_fn),
                            args: vec![qids[qi], payload],
                            ret_ty: Type::Void,
                        },
                    );
                }
            }
            continue;
        }
        // Foreign instruction: consumed here?
        if let Some(&qi) = queue_index.get(&(orig, stage)) {
            // Replace with a pop at the same position.
            let ty = tf.inst(clone).result_type();
            let b = tf.parent_block(clone);
            let pos = tf.position_in_block(clone).expect("attached");
            let pop = tf.insert_inst(
                b,
                pos,
                Inst::Call {
                    callee: Callee::Direct(pop_fn),
                    args: vec![qids[qi]],
                    ret_ty: Type::I64,
                },
            );
            let (val, _) = cast_from_i64(tf, b, pos + 1, Value::Inst(pop), &ty);
            tf.replace_all_uses(Value::Inst(clone), val);
            tf.remove_inst(clone);
        } else {
            to_delete.push(clone);
        }
    }

    // Token chain: pop from stage-1 at the start of the iteration's *body*
    // (which runs exactly once per iteration, unlike the header, which also
    // runs for the final, failing test), push to stage+1 at the end of the
    // latch (before the terminator).
    let token_block = if tl.header == latch {
        tl.header
    } else {
        let in_loop: Vec<BlockId> = tf
            .successors(tl.header)
            .into_iter()
            .filter(|b| tl.contains(*b))
            .collect();
        let &[body] = in_loop.as_slice() else {
            return Err(ParallelizeError::Shape(
                "header with multiple in-loop successors".into(),
            ));
        };
        body
    };
    if stage > 0 {
        let q = qids[n_value_queues + stage - 1];
        let pos = tf.phis(token_block).len();
        tf.insert_inst(
            token_block,
            pos,
            Inst::Call {
                callee: Callee::Direct(pop_fn),
                args: vec![q],
                ret_ty: Type::I64,
            },
        );
    }
    if stage + 1 < n_stages {
        let q = qids[n_value_queues + stage];
        let pos = tf.block(latch).insts.len() - 1;
        tf.insert_inst(
            latch,
            pos,
            Inst::Call {
                callee: Callee::Direct(push_fn),
                args: vec![q, Value::const_i64(0)],
                ret_ty: Type::Void,
            },
        );
    }

    // Delete foreign unconsumed instructions; patch any remaining use (these
    // can only be the finish block's live-out stores of reductions owned by
    // other stages) with the reduction identity.
    for clone in to_delete {
        let uses = tf.compute_uses();
        if let Some(users) = uses.get(&clone) {
            // Find the matching reduction identity through the original id.
            let orig = task
                .value_map
                .iter()
                .find(|(_, v)| **v == Value::Inst(clone))
                .and_then(|(k, _)| k.as_inst());
            let replacement = orig
                .and_then(|o| la.reductions.iter().find(|r| r.phi == o))
                .map(|r| Value::Const(r.identity()))
                .unwrap_or_else(|| {
                    let ty = tf.inst(clone).result_type();
                    Value::Const(identity_for(noelle_ir::inst::BinOp::Add, &ty))
                });
            if !users.is_empty() {
                tf.replace_all_uses(Value::Inst(clone), replacement);
            }
        }
        tf.remove_inst(clone);
    }
    // Second pass: deleting may orphan more foreign pure instructions that
    // only fed deleted ones; they are already detached (removed) above, so
    // nothing further is needed — removals were unconditional.
    Ok(())
}

/// Build `void tramp(env, id, n)` that forwards to `stages[id]`.
fn build_trampoline(m: &mut Module, name: &str, stages: &[FuncId]) -> FuncId {
    let mut f = Function::new(
        name,
        vec![
            ("env".into(), Type::I64.ptr_to()),
            ("task_id".into(), Type::I64),
            ("n_tasks".into(), Type::I64),
        ],
        Type::Void,
    );
    let entry = f.add_block("entry");
    let mut case_blocks = Vec::new();
    for (s, &sf) in stages.iter().enumerate() {
        let b = f.add_block(format!("stage{s}"));
        f.append_inst(
            b,
            Inst::Call {
                callee: Callee::Direct(sf),
                args: vec![Value::Arg(0), Value::Arg(1), Value::Arg(2)],
                ret_ty: Type::Void,
            },
        );
        f.set_terminator(b, Terminator::Ret(None));
        case_blocks.push((s as i64, b));
    }
    let default = case_blocks[0].1;
    f.set_terminator(
        entry,
        Terminator::Switch {
            value: Value::Arg(1),
            default,
            cases: case_blocks,
        },
    );
    let _ = task_fn_ptr_type();
    m.add_function(f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use noelle_core::noelle::AliasTier;
    use noelle_ir::parser::parse_module;
    use noelle_runtime::{run_module, RunConfig};

    /// A classic DSWP loop: load a[i] (stage 0) -> heavy transform (stage 1)
    /// -> accumulate (stage 1/2). The load feeds a long dependence chain,
    /// so pipelining it across cores overlaps memory and compute.
    const DSWP_PROGRAM: &str = r#"
module "dswpdemo" {
declare i64* @malloc(i64 %n)
define i64 @kernel(i64* %a, i64 %n) {
entry:
  br header
header:
  %i = phi i64 [entry: i64 0] [body: %i2]
  %s = phi i64 [entry: i64 0] [body: %s2]
  %c = icmp slt i64 %i, %n
  condbr %c, body, exit
body:
  %p = gep i64, %a, %i
  %v = load i64, %p
  %t1 = mul i64 %v, %v
  %u0 = div i64 %t1, i64 7
  %w0 = add i64 %u0, %v
  %u1 = div i64 %w0, i64 3
  %w1 = add i64 %u1, %v
  %u2 = div i64 %w1, i64 5
  %w2 = add i64 %u2, %v
  %u3 = div i64 %w2, i64 9
  %w3 = add i64 %u3, %v
  %u4 = div i64 %w3, i64 11
  %w4 = add i64 %u4, %v
  %u5 = div i64 %w4, i64 13
  %w5 = add i64 %u5, %v
  %u6 = div i64 %w5, i64 2
  %w6 = add i64 %u6, %v
  %u7 = div i64 %w6, i64 17
  %w7 = add i64 %u7, %v
  %u8 = div i64 %w7, i64 19
  %w8 = add i64 %u8, %v
  %u9 = div i64 %w8, i64 23
  %w9 = add i64 %u9, %v
  %u10 = div i64 %w9, i64 7
  %w10 = add i64 %u10, %v
  %u11 = div i64 %w10, i64 3
  %w11 = add i64 %u11, %v
  %u12 = div i64 %w11, i64 5
  %w12 = add i64 %u12, %v
  %u13 = div i64 %w12, i64 9
  %w13 = add i64 %u13, %v
  %u14 = div i64 %w13, i64 11
  %w14 = add i64 %u14, %v
  %u15 = div i64 %w14, i64 13
  %w15 = add i64 %u15, %v
  %u16 = div i64 %w15, i64 2
  %w16 = add i64 %u16, %v
  %u17 = div i64 %w16, i64 17
  %w17 = add i64 %u17, %v
  %u18 = div i64 %w17, i64 19
  %w18 = add i64 %u18, %v
  %u19 = div i64 %w18, i64 23
  %w19 = add i64 %u19, %v
  %s2 = add i64 %s, %w19
  %i2 = add i64 %i, i64 1
  br header
exit:
  ret %s
}
define i64 @main() {
entry:
  %buf = call i64* @malloc(i64 4096)
  br fill
fill:
  %i = phi i64 [entry: i64 0] [fill: %i2]
  %p = gep i64, %buf, %i
  %x = mul i64 %i, i64 37
  %y = and i64 %x, i64 255
  store i64 %y, %p
  %i2 = add i64 %i, i64 1
  %c = icmp slt i64 %i2, i64 512
  condbr %c, fill, done
done:
  %s = call i64 @kernel(%buf, i64 512)
  ret %s
}
}
"#;

    #[test]
    fn dswp_pipelines_and_preserves_semantics() {
        let m = parse_module(DSWP_PROGRAM).unwrap();
        let seq = run_module(&m, "main", &[], &RunConfig::default()).unwrap();

        let mut noelle = Noelle::new(m, AliasTier::Full);
        let report = run(
            &mut noelle,
            &DswpOptions {
                target: LoopTargetOpts {
                    min_hotness: 0.0,
                    workers: 2,
                    only: None,
                },
            },
        );
        assert!(
            report.parallelized.iter().any(|(f, _)| f == "kernel"),
            "kernel loop must pipeline: {report:?}"
        );
        let m2 = noelle.into_module();
        noelle_ir::verifier::verify_module(&m2)
            .unwrap_or_else(|e| panic!("transformed module verifies: {e}"));
        let par = run_module(&m2, "main", &[], &RunConfig::default()).unwrap();
        assert_eq!(par.ret_i64(), seq.ret_i64(), "semantics preserved");
        assert!(par.counters.get("queues").copied().unwrap_or(0) >= 1);
        assert!(par.counters.get("queue_ops").copied().unwrap_or(0) > 100);
        let speedup = seq.cycles as f64 / par.cycles as f64;
        assert!(speedup > 1.05, "pipelining must pay off: {speedup:.2}");
    }

    #[test]
    fn loops_without_pipeline_structure_are_skipped() {
        // A single tiny SCC: nothing to pipeline.
        let src = r#"
module "t" {
define i64 @main() {
entry:
  br header
header:
  %i = phi i64 [entry: i64 0] [header: %i2]
  %i2 = add i64 %i, i64 1
  %c = icmp slt i64 %i2, i64 100
  condbr %c, header, exit
exit:
  ret %i2
}
}
"#;
        let m = parse_module(src).unwrap();
        let mut noelle = Noelle::new(m, AliasTier::Full);
        let report = run(
            &mut noelle,
            &DswpOptions {
                target: LoopTargetOpts {
                    min_hotness: 0.0,
                    workers: 2,
                    only: None,
                },
            },
        );
        assert_eq!(report.count(), 0, "{report:?}");
    }
}
