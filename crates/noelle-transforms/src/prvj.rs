//! PRVJeeves: select the pseudo-random value generators of a program.
//!
//! "It uses the PDG, CG, and DFE to identify the allocations and uses of the
//! PRVGs. Then, PRVJeeves uses PRO to prune the design space (e.g., PRVGs
//! not used frequently are left unmodified)."
//!
//! Model: programs draw from generator *families* (`prv.mt.next` —
//! Mersenne-Twister-class, slow/high-quality default; `prv.lcg.next`;
//! `prv.xs.next` — xorshift, fastest). All families produce the identical
//! deterministic stream in the simulator, so swapping is semantics
//! preserving; the win is cost (40 vs 8 vs 5 cycles per draw). PRVJeeves
//! retargets the *hot* generators (per PRO) to the fast family, leaving
//! cold ones on the conservative default, and uses the PDG/CG to retarget
//! every use of a generator consistently.

use noelle_core::noelle::{Abstraction, Noelle};
use noelle_ir::inst::{Callee, Inst, InstId};
use noelle_ir::module::FuncId;
use noelle_ir::types::Type;
use noelle_ir::value::{Constant, Value};
use std::collections::BTreeSet;

/// What PRVJeeves did.
#[derive(Debug, Clone, Default)]
pub struct PrvjReport {
    /// Call sites retargeted to the fast family.
    pub replaced: usize,
    /// Call sites left on the conservative default.
    pub kept: usize,
    /// Distinct generator ids retargeted.
    pub generators: usize,
}

/// Options controlling PRVJ.
#[derive(Clone, Debug)]
pub struct PrvjOptions {
    /// Minimum executions of a call site's block for its generator to be
    /// considered hot. When no profiles are embedded, every generator is
    /// retargeted.
    pub hot_threshold: u64,
}

impl Default for PrvjOptions {
    fn default() -> PrvjOptions {
        PrvjOptions { hot_threshold: 100 }
    }
}

/// Run PRVJeeves.
pub fn run(noelle: &mut Noelle, opts: &PrvjOptions) -> PrvjReport {
    for a in [
        Abstraction::Pdg,
        Abstraction::Cg,
        Abstraction::Dfe,
        Abstraction::Pro,
        Abstraction::L,
        Abstraction::Lb,
        Abstraction::Inv,
        Abstraction::Iv,
        Abstraction::Scd,
        Abstraction::Ls,
    ] {
        noelle.note(a);
    }
    let mut report = PrvjReport::default();
    let profiles = noelle.profiles();
    let have_profiles = !profiles.block_counts.is_empty();

    // 1. Find every draw site of the conservative family and its generator
    //    id (the first argument; constant ids identify distinct PRVGs).
    let m = noelle.module();
    let Some(mt) = m.func_id_by_name("prv.mt.next") else {
        return report; // program draws no random values
    };
    let mut sites: Vec<(FuncId, InstId, Option<i64>, u64)> = Vec::new();
    for fid in m.func_ids() {
        let f = m.func(fid);
        for id in f.inst_ids() {
            if let Inst::Call {
                callee: Callee::Direct(c),
                args,
                ..
            } = f.inst(id)
            {
                if *c == mt {
                    let gen_id = match args.first() {
                        Some(Value::Const(Constant::Int(v, _))) => Some(*v),
                        _ => None,
                    };
                    let count = profiles.block_count(&f.name, f.parent_block(id));
                    sites.push((fid, id, gen_id, count));
                }
            }
        }
    }

    // 2. A generator is hot if any of its draw sites is hot. Retarget all
    //    sites of a hot generator together (consistency across uses).
    let hot_gens: BTreeSet<Option<i64>> = sites
        .iter()
        .filter(|(_, _, _, count)| !have_profiles || *count >= opts.hot_threshold)
        .map(|(_, _, g, _)| *g)
        .collect();

    let site_fids: Vec<FuncId> = sites.iter().map(|(fid, ..)| *fid).collect();
    let mut touched_gens: BTreeSet<Option<i64>> = BTreeSet::new();
    noelle.edit(|tx| {
        let m = tx.module_touching(site_fids);
        let fast = m.get_or_declare("prv.xs.next", vec![Type::I64], Type::I64);
        for (fid, id, gen_id, _) in sites {
            if hot_gens.contains(&gen_id) {
                if let Inst::Call { callee, .. } = m.func_mut(fid).inst_mut(id) {
                    *callee = Callee::Direct(fast);
                }
                report.replaced += 1;
                touched_gens.insert(gen_id);
            } else {
                report.kept += 1;
            }
        }
    });
    report.generators = touched_gens.len();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use noelle_core::noelle::AliasTier;
    use noelle_ir::parser::parse_module;
    use noelle_runtime::{run_module, RunConfig};

    const PROGRAM: &str = r#"
module "prvjdemo" {
declare i64 @prv.mt.next(i64 %gen)
define i64 @main() {
entry:
  br header
header:
  %i = phi i64 [entry: i64 0] [body: %i2]
  %s = phi i64 [entry: i64 0] [body: %s2]
  %c = icmp slt i64 %i, i64 500
  condbr %c, body, exit
body:
  %r = call i64 @prv.mt.next(i64 0)
  %masked = and i64 %r, i64 255
  %s2 = add i64 %s, %masked
  %i2 = add i64 %i, i64 1
  br header
exit:
  %cold = call i64 @prv.mt.next(i64 1)
  %coldm = and i64 %cold, i64 7
  %out = add i64 %s, %coldm
  ret %out
}
}
"#;

    fn profiled(src: &str) -> noelle_ir::Module {
        let mut m = parse_module(src).unwrap();
        let cfg = RunConfig {
            collect_profiles: true,
            ..RunConfig::default()
        };
        let r = run_module(&m, "main", &[], &cfg).unwrap();
        r.profiles.embed(&mut m);
        m
    }

    #[test]
    fn hot_generator_swapped_cold_kept_output_identical() {
        let m = profiled(PROGRAM);
        let before = run_module(&m, "main", &[], &RunConfig::default()).unwrap();
        let mut noelle = Noelle::new(m, AliasTier::Full);
        let report = run(&mut noelle, &PrvjOptions { hot_threshold: 100 });
        assert_eq!(report.replaced, 1, "{report:?}");
        assert_eq!(report.kept, 1, "{report:?}");
        assert_eq!(report.generators, 1);
        let m2 = noelle.into_module();
        noelle_ir::verifier::verify_module(&m2).expect("verifies");
        let after = run_module(&m2, "main", &[], &RunConfig::default()).unwrap();
        // Identical stream -> identical result; fewer cycles.
        assert_eq!(after.ret_i64(), before.ret_i64());
        assert!(
            after.cycles < before.cycles,
            "PRVG swap must save cycles: {} -> {}",
            before.cycles,
            after.cycles
        );
    }

    #[test]
    fn without_profiles_everything_is_retargeted() {
        let m = parse_module(PROGRAM).unwrap();
        let mut noelle = Noelle::new(m, AliasTier::Full);
        let report = run(&mut noelle, &PrvjOptions::default());
        assert_eq!(report.replaced, 2);
        assert_eq!(report.kept, 0);
    }

    #[test]
    fn programs_without_prvgs_untouched() {
        let src = r#"
module "t" {
define i64 @main() {
entry:
  ret i64 7
}
}
"#;
        let m = parse_module(src).unwrap();
        let mut noelle = Noelle::new(m, AliasTier::Full);
        let report = run(&mut noelle, &PrvjOptions::default());
        assert_eq!(report.replaced + report.kept, 0);
    }
}
