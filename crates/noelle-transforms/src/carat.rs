//! CARAT: compiler- and runtime-based address translation — inject guards
//! before memory instructions whose validity cannot be proven at compile
//! time, then optimize the guards away where possible.
//!
//! "CARAT relies on the PDG, the aSCCDAG, and INV to identify the memory
//! instructions that need guarding. Then, it uses DFE and PRO to avoid
//! redundant guards of the same memory location. CARAT also uses L, LB, and
//! IV to merge guards. Finally, SCD is used to place the guards in the
//! code."

use noelle_analysis::alias::{underlying_objects, MemoryObject};
use noelle_core::loop_builder::ensure_preheader;
use noelle_core::noelle::{Abstraction, Noelle};
use noelle_ir::cfg::Cfg;
use noelle_ir::dom::DomTree;
use noelle_ir::inst::{Callee, CastOp, Inst, InstId};
use noelle_ir::loops::LoopForest;
use noelle_ir::module::{BlockId, FuncId, Module};
use noelle_ir::types::Type;
use noelle_ir::value::Value;

/// What CARAT did.
#[derive(Debug, Clone, Default)]
pub struct CaratReport {
    /// Guards inserted at access sites.
    pub guarded: usize,
    /// Accesses proven valid statically (no guard needed).
    pub proven: usize,
    /// Guards skipped because a dominating guard covers the same pointer.
    pub redundant: usize,
    /// Guards hoisted to loop pre-headers (loop-invariant pointers).
    pub hoisted: usize,
}

/// Is the access through `ptr` provably in-bounds at compile time? True for
/// direct whole-object addresses of known allocations and constant-index
/// geps that stay inside the object.
fn statically_valid(m: &Module, fid: FuncId, ptr: Value) -> bool {
    let f = m.func(fid);
    // Whole-object addresses.
    let objs = underlying_objects(m, fid, ptr);
    let all_known = !objs.is_empty()
        && objs.iter().all(|o| {
            matches!(
                o,
                Some(MemoryObject::Alloca(_, _)) | Some(MemoryObject::Global(_))
            )
        });
    if !all_known {
        return false;
    }
    match ptr {
        Value::Global(_) => true,
        Value::Inst(id) => match f.inst(id) {
            Inst::Alloca { .. } => true,
            Inst::Gep {
                base,
                base_ty,
                indices,
            } => {
                // Constant indices within the base object's constant bounds.
                let within = indices.iter().skip(1).all(|i| i.is_const());
                let first_const = match indices.first() {
                    Some(Value::Const(noelle_ir::value::Constant::Int(v, _))) => Some(*v),
                    _ => None,
                };
                let Some(first) = first_const else {
                    return false;
                };
                if !within {
                    return false;
                }
                // The base must be a whole known object of a size that
                // covers the constant offset.
                match base {
                    Value::Global(g) => {
                        let size = m.global(*g).ty.size_bytes() as i64;
                        first * base_ty.size_bytes() as i64 >= 0
                            && (first + 1) * base_ty.size_bytes() as i64 <= size
                    }
                    Value::Inst(b) => match f.inst(*b) {
                        Inst::Alloca { ty, count } => {
                            let n = match count {
                                Value::Const(noelle_ir::value::Constant::Int(v, _)) => *v,
                                _ => return false,
                            };
                            let size = ty.size_bytes() as i64 * n;
                            first * base_ty.size_bytes() as i64 >= 0
                                && (first + 1) * base_ty.size_bytes() as i64 <= size
                        }
                        _ => false,
                    },
                    _ => false,
                }
            }
            _ => false,
        },
        _ => false,
    }
}

/// Run CARAT over the module.
pub fn run(noelle: &mut Noelle) -> CaratReport {
    for a in [
        Abstraction::Pdg,
        Abstraction::ASccDag,
        Abstraction::Inv,
        Abstraction::Dfe,
        Abstraction::Pro,
        Abstraction::L,
        Abstraction::Lb,
        Abstraction::Iv,
        Abstraction::Scd,
        Abstraction::Ls,
    ] {
        noelle.note(a);
    }
    let mut report = CaratReport::default();
    let fids: Vec<FuncId> = noelle.module().func_ids().collect();
    for fid in fids {
        if noelle.module().func(fid).is_declaration() {
            continue;
        }
        // Loop invariance info for hoisting decisions (header -> set).
        let loops = noelle.loops_of(fid);
        let mut invariants = Vec::new();
        for l in &loops {
            let la = noelle.loop_abstraction(fid, l.clone());
            invariants.push((l.clone(), la.invariants));
        }
        noelle.edit(|tx| guard_function(tx.module_touching([fid]), fid, &invariants, &mut report));
    }
    report
}

fn guard_function(
    m: &mut Module,
    fid: FuncId,
    loop_invariants: &[(
        noelle_ir::loops::LoopInfo,
        noelle_core::invariants::InvariantSet,
    )],
    report: &mut CaratReport,
) {
    let guard_fn = m.get_or_declare("carat.guard", vec![Type::I64, Type::I64], Type::Void);

    // Gather access sites first (mutation invalidates positions).
    let f = m.func(fid);
    let accesses: Vec<(InstId, Value, u64)> = f
        .inst_ids()
        .into_iter()
        .filter_map(|id| match f.inst(id) {
            Inst::Load { ptr, ty } => Some((id, *ptr, ty.size_bytes())),
            Inst::Store { ptr, ty, .. } => Some((id, *ptr, ty.size_bytes())),
            _ => None,
        })
        .collect();

    let cfg = Cfg::new(f);
    let dt = DomTree::new(f, &cfg);
    let forest = LoopForest::new(f, &cfg, &dt);

    // Guards already emitted for a pointer value: (ptr, block, position).
    let mut placed: Vec<(Value, BlockId, usize)> = Vec::new();
    // Process in dominance-friendly layout order.
    for (id, ptr, size) in accesses {
        if statically_valid(m, fid, ptr) {
            report.proven += 1;
            continue;
        }
        let f = m.func(fid);
        let b = f.parent_block(id);
        let pos = f.position_in_block(id).unwrap_or(0);
        // Redundancy: an earlier guard on the same pointer that dominates
        // this access covers it (same address, still mapped).
        let dominated = placed.iter().any(|&(gp, gb, gpos)| {
            gp == ptr && (dt.strictly_dominates(gb, b) || (gb == b && gpos <= pos))
        });
        if dominated {
            report.redundant += 1;
            continue;
        }
        // Merge: loop-invariant pointer in a loop -> guard once in the
        // pre-header instead of every iteration.
        let hoist_target = forest
            .innermost_containing(b)
            .map(|lid| forest.loop_info(lid))
            .and_then(|li| {
                let inv = loop_invariants
                    .iter()
                    .find(|(l, _)| l.header == li.header)
                    .map(|(_, inv)| inv)?;
                inv.is_invariant_value(m.func(fid), li, ptr)
                    .then(|| li.clone())
            });
        let (gb, gpos) = match hoist_target {
            Some(li) => {
                let pre = ensure_preheader(m.func_mut(fid), &li).unwrap_or(b);
                if pre != b {
                    report.hoisted += 1;
                }
                let f = m.func(fid);
                let end = f.block(pre).insts.len().saturating_sub(1);
                (pre, end)
            }
            None => (b, pos),
        };
        // Emit: addr = ptrtoint ptr; call carat.guard(addr, size).
        let pty = m.func(fid).value_type(m, ptr);
        let f = m.func_mut(fid);
        let addr = f.insert_inst(
            gb,
            gpos,
            Inst::Cast {
                op: CastOp::PtrToInt,
                from: pty,
                to: Type::I64,
                val: ptr,
            },
        );
        f.insert_inst(
            gb,
            gpos + 1,
            Inst::Call {
                callee: Callee::Direct(guard_fn),
                args: vec![Value::Inst(addr), Value::const_i64(size as i64)],
                ret_ty: Type::Void,
            },
        );
        placed.push((ptr, gb, gpos));
        report.guarded += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noelle_core::noelle::AliasTier;
    use noelle_ir::parser::parse_module;
    use noelle_runtime::{run_module, RunConfig};

    const PROGRAM: &str = r#"
module "caratdemo" {
declare i64* @malloc(i64 %n)
define i64 @main() {
entry:
  %buf = call i64* @malloc(i64 800)
  %cell = alloca i64, i64 1
  store i64 i64 0, %cell
  br header
header:
  %i = phi i64 [entry: i64 0] [body: %i2]
  %c = icmp slt i64 %i, i64 100
  condbr %c, body, exit
body:
  %p = gep i64, %buf, %i
  store i64 %i, %p
  %v = load i64, %cell
  %v2 = add i64 %v, %i
  store i64 %v2, %cell
  %i2 = add i64 %i, i64 1
  br header
exit:
  %r = load i64, %cell
  ret %r
}
}
"#;

    #[test]
    fn guards_dynamic_accesses_and_proves_static_ones() {
        let m = parse_module(PROGRAM).unwrap();
        let before = run_module(&m, "main", &[], &RunConfig::default()).unwrap();
        let mut noelle = Noelle::new(m, AliasTier::Full);
        let report = run(&mut noelle);
        // The heap access p=buf+i needs a guard; the alloca cell accesses
        // are statically valid.
        assert!(report.guarded >= 1, "{report:?}");
        assert!(report.proven >= 3, "{report:?}");
        let m2 = noelle.into_module();
        noelle_ir::verifier::verify_module(&m2)
            .unwrap_or_else(|e| panic!("verifies after CARAT: {e}"));
        let after = run_module(&m2, "main", &[], &RunConfig::default()).unwrap();
        assert_eq!(after.ret_i64(), before.ret_i64());
        assert!(after.counters.get("guards").copied().unwrap_or(0) > 0);
    }

    #[test]
    fn invariant_pointer_guard_hoisted_out_of_loop() {
        let src = r#"
module "t" {
declare i64* @malloc(i64 %n)
define i64 @main() {
entry:
  %buf = call i64* @malloc(i64 8)
  br header
header:
  %i = phi i64 [entry: i64 0] [body: %i2]
  %s = phi i64 [entry: i64 0] [body: %s2]
  %c = icmp slt i64 %i, i64 1000
  condbr %c, body, exit
body:
  %v = load i64, %buf
  %s2 = add i64 %s, %v
  %i2 = add i64 %i, i64 1
  br header
exit:
  ret %s
}
}
"#;
        let m = parse_module(src).unwrap();
        let mut noelle = Noelle::new(m, AliasTier::Full);
        let report = run(&mut noelle);
        assert_eq!(report.hoisted, 1, "{report:?}");
        let m2 = noelle.into_module();
        noelle_ir::verifier::verify_module(&m2).expect("verifies");
        let r = run_module(&m2, "main", &[], &RunConfig::default()).unwrap();
        // Hoisted guard executes once, not 1000 times.
        assert_eq!(r.counters.get("guards"), Some(&1));
    }

    #[test]
    fn dominating_guard_makes_later_one_redundant() {
        let src = r#"
module "t" {
declare i64* @malloc(i64 %n)
define i64 @main() {
entry:
  %buf = call i64* @malloc(i64 8)
  store i64 i64 5, %buf
  %v = load i64, %buf
  ret %v
}
}
"#;
        let m = parse_module(src).unwrap();
        let mut noelle = Noelle::new(m, AliasTier::Full);
        let report = run(&mut noelle);
        assert_eq!(report.guarded, 1, "{report:?}");
        assert_eq!(report.redundant, 1, "{report:?}");
    }
}
