//! DEAD: dead-function elimination over the *complete* call graph.
//!
//! "CG is used by the DeadFunctionEliminator custom tool built upon NOELLE,
//! aiming to reduce the binary size of a program. [...] By being complete,
//! NOELLE's call graph enables custom tools to assume that the call graph's
//! lack of an edge means a function cannot invoke another."
//!
//! §4.5 of the paper reports a further 6.3% binary-size reduction on top of
//! clang `-Oz`; the `binary_size` experiment in `noelle-bench` reproduces
//! the shape with the instruction-count proxy exposed here.

use noelle_core::noelle::{Abstraction, Noelle};
use noelle_ir::inst::Inst;
use noelle_ir::module::{FuncId, Function, Module};
use noelle_ir::value::Value;
use std::collections::BTreeSet;

/// What DEAD did.
#[derive(Debug, Clone, Default)]
pub struct DeadReport {
    /// Names of the functions whose bodies were removed.
    pub removed: Vec<String>,
    /// Instructions in the module before/after (the binary-size proxy).
    pub insts_before: usize,
    /// Instructions after removal.
    pub insts_after: usize,
}

impl DeadReport {
    /// Fractional size reduction in `[0, 1]`.
    pub fn reduction(&self) -> f64 {
        if self.insts_before == 0 {
            0.0
        } else {
            1.0 - self.insts_after as f64 / self.insts_before as f64
        }
    }
}

/// Functions whose address is taken anywhere in the module (possible
/// indirect-call targets even without resolved edges).
fn address_taken(m: &Module) -> BTreeSet<FuncId> {
    let mut out = BTreeSet::new();
    for fid in m.func_ids() {
        let f = m.func(fid);
        for id in f.inst_ids() {
            for op in f.inst(id).operands() {
                if let Value::Func(t) = op {
                    // A direct call's callee is not an operand, so any Func
                    // operand is a genuine address-taking use.
                    out.insert(t);
                }
            }
            // Indirect callee operands are covered above; direct callees are
            // not address-taking.
            let _ = id;
        }
    }
    // Globals initialized with function pointers would count too; this IR's
    // global initializers hold scalars only.
    out
}

/// Run dead-function elimination: every defined function not transitively
/// reachable from `entry` (default `main`) loses its body.
pub fn run(noelle: &mut Noelle, entry: &str) -> DeadReport {
    noelle.note(Abstraction::Cg);
    noelle.note(Abstraction::Isl);
    let mut report = DeadReport {
        insts_before: noelle.module().total_insts(),
        ..DeadReport::default()
    };
    let Some(root) = noelle.module().func_id_by_name(entry) else {
        report.insts_after = report.insts_before;
        return report;
    };

    let taken = address_taken(noelle.module());
    let cg = noelle.call_graph();
    let mut roots = vec![root];
    // Escaped function pointers: if any call site is unresolved, every
    // address-taken function might be invoked.
    if !cg.unresolved_sites().is_empty() {
        roots.extend(taken.iter().copied());
    }
    let reachable = cg.reachable_from(&roots);

    let all: Vec<FuncId> = noelle.module().func_ids().collect();
    noelle.edit(|tx| {
        for fid in all {
            let m = tx.module();
            let f = m.func(fid);
            if f.is_declaration() || reachable.contains(&fid) {
                continue;
            }
            // Keep address-taken functions: a complete CG resolved their
            // callers, so unreachable + address-taken means the taking site
            // is itself dead — but stay conservative and keep them.
            if taken.contains(&fid)
                && reachable.iter().any(|r| {
                    let rf = m.func(*r);
                    rf.inst_ids()
                        .iter()
                        .any(|&i| rf.inst(i).operands().contains(&Value::Func(fid)))
                })
            {
                continue;
            }
            let name = f.name.clone();
            let params = f.params.clone();
            let ret = f.ret_ty.clone();
            *tx.func_mut(fid) = Function::new(name.clone(), params, ret);
            report.removed.push(name);
        }
    });
    report.insts_after = noelle.module().total_insts();
    report
}

/// Count direct calls in a module (used by tests and sanity checks).
pub fn count_calls(m: &Module) -> usize {
    m.func_ids()
        .map(|fid| {
            let f = m.func(fid);
            f.inst_ids()
                .into_iter()
                .filter(|&i| matches!(f.inst(i), Inst::Call { .. }))
                .count()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use noelle_core::noelle::AliasTier;
    use noelle_ir::parser::parse_module;
    use noelle_runtime::{run_module, RunConfig};

    const PROGRAM: &str = r#"
module "deaddemo" {
define i64 @used(i64 %x) {
entry:
  %y = add i64 %x, i64 1
  ret %y
}
define i64 @dead_leaf(i64 %x) {
entry:
  %y = mul i64 %x, i64 2
  ret %y
}
define i64 @dead_caller(i64 %x) {
entry:
  %y = call i64 @dead_leaf(%x)
  ret %y
}
define i64 @main() {
entry:
  %r = call i64 @used(i64 41)
  ret %r
}
}
"#;

    #[test]
    fn removes_unreachable_island() {
        let m = parse_module(PROGRAM).unwrap();
        let before = run_module(&m, "main", &[], &RunConfig::default()).unwrap();
        let mut noelle = Noelle::new(m, AliasTier::Full);
        let report = run(&mut noelle, "main");
        assert_eq!(
            report.removed,
            vec!["dead_leaf".to_string(), "dead_caller".to_string()]
        );
        assert!(
            report.reduction() > 0.3,
            "reduction = {}",
            report.reduction()
        );
        let m2 = noelle.into_module();
        noelle_ir::verifier::verify_module(&m2).expect("verifies");
        let after = run_module(&m2, "main", &[], &RunConfig::default()).unwrap();
        assert_eq!(after.ret_i64(), before.ret_i64());
    }

    #[test]
    fn keeps_indirect_call_targets() {
        let src = r#"
module "t" {
define i64 @t1(i64 %x) {
entry:
  ret %x
}
define i64 @t2(i64 %x) {
entry:
  %y = add i64 %x, i64 1
  ret %y
}
define i64 @never(i64 %x) {
entry:
  %y = mul i64 %x, i64 3
  ret %y
}
define i64 @main() {
entry:
  %c = icmp sgt i64 i64 1, i64 0
  %fp = select fn i64(i64)* %c, @t1, @t2
  %r = call i64 %fp(i64 5)
  ret %r
}
}
"#;
        let m = parse_module(src).unwrap();
        let mut noelle = Noelle::new(m, AliasTier::Full);
        let report = run(&mut noelle, "main");
        // t1/t2 are possible callees (kept); `never` goes away.
        assert_eq!(report.removed, vec!["never".to_string()]);
        let m2 = noelle.into_module();
        let r = run_module(&m2, "main", &[], &RunConfig::default()).unwrap();
        assert_eq!(r.ret_i64(), Some(5));
    }

    #[test]
    fn no_entry_is_a_no_op() {
        let m = parse_module(PROGRAM).unwrap();
        let mut noelle = Noelle::new(m, AliasTier::Full);
        let report = run(&mut noelle, "nonexistent_entry");
        assert!(report.removed.is_empty());
        assert_eq!(report.insts_before, report.insts_after);
    }
}
