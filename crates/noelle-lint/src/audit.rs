//! The parallelism auditor: for every loop in the forest, a per-technique
//! verdict (DOALL / HELIX / DSWP) with instruction-level blocker
//! attribution and a resolution hint for each blocker.
//!
//! Verdicts come from the transforms' own `precheck` gates, so "clean"
//! means "the transform's gate sequence accepts this loop" — the fuzz
//! oracle validates exactly that reading by running the transform and the
//! differential oracle on every clean verdict. Blockers come from the
//! dependence-level classifier in `noelle-core::audit`, enriched here with
//! interprocedural attribution: the Andersen points-to rows behind each
//! failed alias query, the call sites whose actuals carry the conflicting
//! pointer into the loop's function, and the callee-side accesses behind
//! impure calls. The NL01xx diagnostic series surfaces the same blockers
//! through the normal lint rendering pipeline.

use crate::diag::{sort_findings, Finding, IrLoc, Severity};
use noelle_analysis::alias::{AndersenAlias, MemoryObject};
use noelle_analysis::modref::ModRefSummaries;
use noelle_core::audit::{
    carried_dep_blockers, sort_blockers, Blocker, BlockerKind, Hint, LoopAudit, ModuleAudit,
    Technique, TechniqueAudit,
};
use noelle_core::loop_abs::LoopAbstraction;
use noelle_core::noelle::{Abstraction, Noelle};
use noelle_ir::inst::{Callee, Inst, InstId};
use noelle_ir::module::{FuncId, Module};
use noelle_ir::value::Value;
use noelle_transforms::common::ParallelizeError;
use noelle_transforms::dswp::DswpOptions;
use noelle_transforms::helix::HelixOptions;
use noelle_transforms::{doall, dswp, helix};
use std::collections::{BTreeMap, BTreeSet};

/// Cap on rendered alias objects / cross-function sites per blocker: the
/// report names evidence, it does not dump whole rows.
const MAX_ATTRIBUTION: usize = 8;
/// Cap on related instructions carried by a segment/SCC blocker.
const MAX_RELATED: usize = 6;

/// The NL01xx diagnostic code for a blocker category.
pub fn audit_code(kind: BlockerKind) -> &'static str {
    match kind {
        BlockerKind::CarriedMemoryDep => "NL0101",
        BlockerKind::UnprovenAlias => "NL0102",
        BlockerKind::EscapingInduction => "NL0103",
        BlockerKind::ImpureCall => "NL0104",
        BlockerKind::SequentialSegment => "NL0105",
        BlockerKind::CyclicSccSpan => "NL0106",
        BlockerKind::UnsupportedLiveOut => "NL0107",
        BlockerKind::LoopShape => "NL0108",
    }
}

/// Audit every loop of the module. Deterministic: loops ordered by
/// (function name, header layout index), blockers canonically sorted.
pub fn run_audit(n: &mut Noelle) -> ModuleAudit {
    run_audit_scoped(n, None)
}

/// Audit only the loops of the given functions (`None` = all). The IDE uses
/// the scoped form to re-audit just the functions an edit damaged.
pub fn run_audit_scoped(n: &mut Noelle, only: Option<&BTreeSet<FuncId>>) -> ModuleAudit {
    n.note(Abstraction::Audit);
    let latency = n.architecture().max_latency();

    // Pass A (exclusive borrows): materialize every loop abstraction.
    let mut worklist: Vec<(FuncId, String, LoopAbstraction)> = Vec::new();
    let mut fids: Vec<(String, FuncId)> = n
        .module()
        .func_ids()
        .filter(|&fid| !n.module().func(fid).block_order().is_empty())
        .filter(|fid| only.is_none_or(|set| set.contains(fid)))
        .map(|fid| (n.module().func(fid).name.clone(), fid))
        .collect();
    fids.sort();
    for (fname, fid) in fids {
        let mut loops = n.loops_of(fid);
        loops.sort_by_key(|l| header_index(n.module(), fid, l.header));
        for l in loops {
            let la = n.loop_abstraction(fid, l);
            worklist.push((fid, fname.clone(), la));
        }
    }
    let modref = n.modref_summaries();
    let _ = n.points_to(); // force the solve before taking shared borrows
    let anders = n.cached_points_to().expect("just built");
    let m = n.module();
    // One module scan up front: callee -> direct call sites. Attribution
    // consults this per blocker; scanning the module per blocker instead
    // would make the scoped re-audit O(module), not O(edit).
    let call_sites = call_site_index(m);

    let mut loops = Vec::new();
    for (fid, fname, la) in &worklist {
        let (fid, la) = (*fid, la);
        // The dependence-level blockers are shared by all three verdicts.
        let mut carried = carried_dep_blockers(m, la, &modref);
        for b in &mut carried {
            enrich(m, fid, b, anders, &modref, &call_sites);
        }
        let verdicts = Technique::all()
            .into_iter()
            .map(|t| {
                let res = match t {
                    Technique::Doall => doall::precheck(m, fid, la),
                    Technique::Helix => helix::precheck(
                        m,
                        fid,
                        la,
                        latency,
                        HelixOptions::default().max_sequential_fraction,
                    ),
                    Technique::Dswp => {
                        dswp::precheck(m, fid, la, DswpOptions::default().target.workers)
                    }
                };
                match res {
                    Ok(()) => TechniqueAudit {
                        technique: t,
                        clean: true,
                        reason: None,
                        blockers: Vec::new(),
                    },
                    Err(e) => {
                        let mut blockers = blockers_for(m, fid, la, t, &e, &carried);
                        if blockers.is_empty() {
                            blockers.push(fallback_blocker(m, fid, la, &e));
                        }
                        sort_blockers(&mut blockers);
                        TechniqueAudit {
                            technique: t,
                            clean: false,
                            reason: Some(e.to_string()),
                            blockers,
                        }
                    }
                }
            })
            .collect();
        let header = la.structure.header;
        loops.push(LoopAudit {
            fid,
            function: fname.clone(),
            header,
            header_name: m.func(fid).block(header).name.clone(),
            header_index: header_index(m, fid, header),
            verdicts,
        });
    }
    ModuleAudit { loops }
}

fn header_index(m: &Module, fid: FuncId, b: noelle_ir::module::BlockId) -> usize {
    m.func(fid)
        .block_order()
        .iter()
        .position(|&x| x == b)
        .unwrap_or(usize::MAX)
}

/// Attribute a technique refusal to blockers, by refusal reason.
fn blockers_for(
    m: &Module,
    fid: FuncId,
    la: &LoopAbstraction,
    t: Technique,
    e: &ParallelizeError,
    carried: &[Blocker],
) -> Vec<Blocker> {
    match e {
        ParallelizeError::CarriedDependences => carried.to_vec(),
        ParallelizeError::NoGoverningIv => vec![no_iv_blocker(m, fid, la)],
        ParallelizeError::UnsupportedLiveOut => liveout_blockers(m, fid, la),
        ParallelizeError::Shape(s) => match (t, s.as_str()) {
            (
                Technique::Helix,
                "unbracketably sequential" | "mostly sequential" | "sequential segment dominates",
            ) => segment_blockers(m, fid, la, s),
            (Technique::Dswp, reason)
                if reason == "fewer than two pipeline stages"
                    || reason == "backward cross-stage dependence"
                    || reason == "loop control depends on memory"
                    || reason == "communicated value defined in the loop header" =>
            {
                cyclic_scc_blockers(m, fid, la, s)
            }
            _ => vec![shape_blocker(m, fid, la, s)],
        },
    }
}

/// Every blocked verdict must name at least one concrete instruction: when
/// a specialized attribution produced nothing, anchor the refusal at the
/// loop header's terminator.
fn fallback_blocker(
    m: &Module,
    fid: FuncId,
    la: &LoopAbstraction,
    e: &ParallelizeError,
) -> Blocker {
    Blocker {
        kind: BlockerKind::LoopShape,
        inst: header_terminator(m, fid, la),
        related: Vec::new(),
        cross: Vec::new(),
        objects: Vec::new(),
        detail: e.to_string(),
        hint: Hint::Restructure,
    }
}

fn header_terminator(m: &Module, fid: FuncId, la: &LoopAbstraction) -> InstId {
    *m.func(fid)
        .block(la.structure.header)
        .insts
        .last()
        .expect("header has a terminator")
}

fn no_iv_blocker(m: &Module, fid: FuncId, la: &LoopAbstraction) -> Blocker {
    // Anchor at the first header phi when there is one (the would-be IV),
    // else at the header terminator.
    let f = m.func(fid);
    let anchor = f
        .block(la.structure.header)
        .insts
        .iter()
        .copied()
        .find(|&i| matches!(f.inst(i), Inst::Phi { .. }))
        .unwrap_or_else(|| header_terminator(m, fid, la));
    Blocker {
        kind: BlockerKind::LoopShape,
        inst: anchor,
        related: Vec::new(),
        cross: Vec::new(),
        objects: Vec::new(),
        detail: "no governing induction variable bounds the loop".to_string(),
        hint: Hint::Restructure,
    }
}

fn liveout_blockers(m: &Module, fid: FuncId, la: &LoopAbstraction) -> Vec<Blocker> {
    let mut out = Vec::new();
    for (v, _) in &la.env.live_outs {
        if la.reductions.iter().any(|r| Value::Inst(r.phi) == *v) {
            continue;
        }
        let anchor = match v {
            Value::Inst(i) => *i,
            _ => header_terminator(m, fid, la),
        };
        out.push(Blocker {
            kind: BlockerKind::UnsupportedLiveOut,
            inst: anchor,
            related: Vec::new(),
            cross: Vec::new(),
            objects: Vec::new(),
            detail: format!(
                "live-out %v{} is not a recognized reduction accumulator",
                anchor.0
            ),
            hint: Hint::Reduction,
        });
    }
    out
}

fn shape_blocker(m: &Module, fid: FuncId, la: &LoopAbstraction, reason: &str) -> Blocker {
    Blocker {
        kind: BlockerKind::LoopShape,
        inst: header_terminator(m, fid, la),
        related: Vec::new(),
        cross: Vec::new(),
        objects: Vec::new(),
        detail: format!("unsupported loop shape: {reason}"),
        hint: Hint::Restructure,
    }
}

/// HELIX blockers: one per sequential segment (or per sequential SCC when
/// the segments cannot even be bracketed).
fn segment_blockers(m: &Module, fid: FuncId, la: &LoopAbstraction, reason: &str) -> Vec<Blocker> {
    let mut out = Vec::new();
    let groups: Vec<BTreeSet<InstId>> = match helix::sequential_segments(m, fid, la) {
        Some(segments) => segments,
        None => la
            .sequential_sccs()
            .into_iter()
            .map(|s| la.sccdag.nodes()[s].insts.clone())
            .collect(),
    };
    for insts in groups {
        let Some(&anchor) = insts.iter().next() else {
            continue;
        };
        let related: Vec<InstId> = insts.iter().copied().skip(1).take(MAX_RELATED).collect();
        out.push(Blocker {
            kind: BlockerKind::SequentialSegment,
            inst: anchor,
            related,
            cross: Vec::new(),
            objects: Vec::new(),
            detail: format!(
                "sequential segment of {} instruction(s) serializes the loop ({reason})",
                insts.len()
            ),
            hint: Hint::QueueMediate,
        });
    }
    out
}

/// DSWP blockers: the largest cyclic (non-induction) SCC is what collapses
/// the pipeline into too few stages or ties stages together.
fn cyclic_scc_blockers(
    m: &Module,
    fid: FuncId,
    la: &LoopAbstraction,
    reason: &str,
) -> Vec<Blocker> {
    let best = la
        .sccdag
        .nodes()
        .iter()
        .filter(|n| !n.is_induction && n.insts.len() > 1)
        .max_by_key(|n| n.insts.len());
    let Some(node) = best else {
        return vec![shape_blocker(m, fid, la, reason)];
    };
    let anchor = *node.insts.iter().next().expect("non-empty SCC");
    let related: Vec<InstId> = node
        .insts
        .iter()
        .copied()
        .skip(1)
        .take(MAX_RELATED)
        .collect();
    vec![Blocker {
        kind: BlockerKind::CyclicSccSpan,
        inst: anchor,
        related,
        cross: Vec::new(),
        objects: Vec::new(),
        detail: format!(
            "cyclic SCC of {} instruction(s) resists pipeline staging ({reason})",
            node.insts.len()
        ),
        hint: Hint::Speculate,
    }]
}

/// Interprocedural enrichment of a dependence blocker: the points-to
/// objects behind the failed alias query, the call sites whose actuals
/// carry the conflicting pointer into this function, and the callee-side
/// memory accesses behind an impure call.
/// Every direct call site in the module, indexed by callee.
fn call_site_index(m: &Module) -> BTreeMap<FuncId, Vec<(FuncId, InstId)>> {
    let mut idx: BTreeMap<FuncId, Vec<(FuncId, InstId)>> = BTreeMap::new();
    for caller in m.func_ids() {
        let cf = m.func(caller);
        for &bl in cf.block_order() {
            for &ci in &cf.block(bl).insts {
                if let Inst::Call {
                    callee: Callee::Direct(cid),
                    ..
                } = cf.inst(ci)
                {
                    idx.entry(*cid).or_default().push((caller, ci));
                }
            }
        }
    }
    idx
}

fn enrich(
    m: &Module,
    fid: FuncId,
    b: &mut Blocker,
    anders: &AndersenAlias,
    modref: &ModRefSummaries,
    call_sites: &BTreeMap<FuncId, Vec<(FuncId, InstId)>>,
) {
    let f = m.func(fid);
    let mut objects: BTreeSet<String> = BTreeSet::new();
    let mut cross: BTreeSet<(FuncId, InstId)> = BTreeSet::new();
    let mut via_args = false;
    for &i in std::iter::once(&b.inst).chain(b.related.iter()) {
        match f.inst(i) {
            Inst::Load { ptr, .. } | Inst::Store { ptr, .. } => {
                for o in anders.points_to(fid, *ptr) {
                    objects.insert(render_object(m, &o));
                }
                via_args |= roots_in_args(f, *ptr, 0);
            }
            // The callee accesses that make the call impure.
            Inst::Call {
                callee: Callee::Direct(cid),
                ..
            } if modref.may_write(*cid) || modref.has_io(*cid) => {
                let cf = m.func(*cid);
                for &ci in cf.block_order().iter().flat_map(|&bl| &cf.block(bl).insts) {
                    if cross.len() >= MAX_ATTRIBUTION {
                        break;
                    }
                    match cf.inst(ci) {
                        Inst::Store { .. } | Inst::Call { .. } => {
                            cross.insert((*cid, ci));
                        }
                        _ => {}
                    }
                }
            }
            _ => {}
        }
    }
    // The conflicting pointer arrives through a parameter: attribute the
    // call sites whose actuals feed it.
    if via_args {
        for &(caller, ci) in call_sites.get(&fid).into_iter().flatten() {
            if cross.len() >= MAX_ATTRIBUTION {
                break;
            }
            cross.insert((caller, ci));
        }
    }
    b.objects = objects.into_iter().take(MAX_ATTRIBUTION).collect();
    b.cross = cross.into_iter().take(MAX_ATTRIBUTION).collect();
}

/// Does the pointer chase down to a function argument (through geps, casts,
/// selects, phis)? Depth-capped; conservative `false` on odd shapes.
fn roots_in_args(f: &noelle_ir::module::Function, v: Value, depth: usize) -> bool {
    if depth > 16 {
        return false;
    }
    match v {
        Value::Arg(_) => true,
        Value::Inst(i) => match f.inst(i) {
            Inst::Gep { base, .. } => roots_in_args(f, *base, depth + 1),
            Inst::Cast { val, .. } => roots_in_args(f, *val, depth + 1),
            Inst::Select { tval, fval, .. } => {
                roots_in_args(f, *tval, depth + 1) || roots_in_args(f, *fval, depth + 1)
            }
            Inst::Phi { incomings, .. } => incomings
                .iter()
                .any(|(_, iv)| roots_in_args(f, *iv, depth + 1)),
            _ => false,
        },
        _ => false,
    }
}

/// Stable human-readable name for an abstract memory object.
fn render_object(m: &Module, o: &MemoryObject) -> String {
    match o {
        MemoryObject::Global(g) => format!("global @{}", m.global(*g).name),
        MemoryObject::Alloca(f, i) => format!("alloca %v{} in @{}", i.0, m.func(*f).name),
        MemoryObject::Heap(f, i) => format!("heap %v{} in @{}", i.0, m.func(*f).name),
        MemoryObject::Function(f) => format!("function @{}", m.func(*f).name),
        MemoryObject::Unknown => "unknown memory".to_string(),
    }
}

/// Lower an audit into NL01xx findings: one hint-severity finding per
/// distinct blocker, techniques merged into the message, related and
/// cross-function sites carried as secondary locations.
pub fn audit_findings(m: &Module, audit: &ModuleAudit) -> Vec<Finding> {
    let mut out = Vec::new();
    for l in &audit.loops {
        // Merge identical blockers reported by several techniques.
        type Key = (InstId, BlockerKind, String, Hint);
        let mut merged: BTreeMap<Key, (Blocker, BTreeSet<&'static str>)> = BTreeMap::new();
        for v in &l.verdicts {
            for b in &v.blockers {
                let key = (b.inst, b.kind, b.detail.clone(), b.hint);
                merged
                    .entry(key)
                    .or_insert_with(|| (b.clone(), BTreeSet::new()))
                    .1
                    .insert(v.technique.as_str());
            }
        }
        for (_, (b, techs)) in merged {
            let techs: Vec<&str> = techs.into_iter().collect();
            let mut message = format!(
                "[{}] loop @{}:{}: {} (hint: {})",
                techs.join("+"),
                l.function,
                l.header_name,
                b.detail,
                b.hint.as_str()
            );
            if !b.objects.is_empty() {
                message.push_str(&format!(" [aliases: {}]", b.objects.join(", ")));
            }
            let related = b
                .related
                .iter()
                .map(|&i| IrLoc::of(m, l.fid, i))
                .chain(b.cross.iter().map(|&(cf, ci)| IrLoc::of(m, cf, ci)))
                .collect();
            out.push(Finding {
                code: audit_code(b.kind),
                severity: Severity::Hint,
                loc: IrLoc::of(m, l.fid, b.inst),
                message,
                related,
            });
        }
    }
    sort_findings(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use noelle_core::noelle::AliasTier;
    use noelle_ir::parser::parse_module;

    fn audit_src(src: &str) -> (Noelle, ModuleAudit) {
        let m = parse_module(src).unwrap();
        let mut n = Noelle::new(m, AliasTier::Full);
        let audit = run_audit(&mut n);
        (n, audit)
    }

    #[test]
    fn clean_doall_loop_gets_clean_verdict() {
        let (_, audit) = audit_src(
            r#"
module "t" {
declare i64* @malloc(i64 %n)
define i64 @kernel(i64* %a, i64 %n) {
entry:
  br header
header:
  %i = phi i64 [entry: i64 0] [body: %i2]
  %s = phi i64 [entry: i64 0] [body: %s2]
  %c = icmp slt i64 %i, %n
  condbr %c, body, exit
body:
  %p = gep i64, %a, %i
  %v = load i64, %p
  %s2 = add i64 %s, %v
  %i2 = add i64 %i, i64 1
  br header
exit:
  ret %s
}
}
"#,
        );
        assert_eq!(audit.loops.len(), 1);
        let v = audit.loops[0].verdict(Technique::Doall);
        assert!(v.clean, "{v:?}");
        assert!(v.blockers.is_empty());
    }

    #[test]
    fn blocked_loop_names_instruction_and_hint() {
        let (n, audit) = audit_src(
            r#"
module "t" {
define i64 @main() {
entry:
  %cell = alloca i64, i64 1
  store i64 i64 1, %cell
  br header
header:
  %i = phi i64 [entry: i64 0] [body: %i2]
  %c = icmp slt i64 %i, i64 100
  condbr %c, body, exit
body:
  %v = load i64, %cell
  %v2 = mul i64 %v, i64 3
  store i64 %v2, %cell
  %i2 = add i64 %i, i64 1
  br header
exit:
  %r = load i64, %cell
  ret %r
}
}
"#,
        );
        assert_eq!(audit.loops.len(), 1);
        let v = audit.loops[0].verdict(Technique::Doall);
        assert!(!v.clean);
        assert!(!v.blockers.is_empty(), "blocked verdicts carry blockers");
        // The recurrence is through the alloca cell: the attribution must
        // name the abstract object.
        assert!(
            v.blockers
                .iter()
                .any(|b| b.objects.iter().any(|o| o.contains("alloca"))),
            "{:?}",
            v.blockers
        );
        let findings = audit_findings(n.module(), &audit);
        assert!(!findings.is_empty());
        assert!(findings.iter().all(|f| f.code.starts_with("NL01")));
        assert!(findings.iter().all(|f| f.severity == Severity::Hint));
    }

    #[test]
    fn interprocedural_attribution_reaches_call_sites() {
        // The kernel updates memory through a parameter; the conflicting
        // pointer arrives from main's call site.
        let (_, audit) = audit_src(
            r#"
module "t" {
define void @kernel(i64* %acc, i64 %n) {
entry:
  br header
header:
  %i = phi i64 [entry: i64 0] [body: %i2]
  %c = icmp slt i64 %i, %n
  condbr %c, body, exit
body:
  %v = load i64, %acc
  %v2 = mul i64 %v, i64 3
  store i64 %v2, %acc
  %i2 = add i64 %i, i64 1
  br header
exit:
  ret void
}
define i64 @main() {
entry:
  %cell = alloca i64, i64 1
  store i64 i64 1, %cell
  call void @kernel(%cell, i64 10)
  %r = load i64, %cell
  ret %r
}
}
"#,
        );
        let lk = audit
            .loops
            .iter()
            .find(|l| l.function == "kernel")
            .expect("kernel loop audited");
        let v = lk.verdict(Technique::Doall);
        assert!(!v.clean);
        let main_fid = v
            .blockers
            .iter()
            .flat_map(|b| &b.cross)
            .next()
            .map(|(f, _)| *f);
        assert!(
            main_fid.is_some(),
            "cross attribution names main's call site: {:?}",
            v.blockers
        );
    }

    #[test]
    fn audit_json_is_deterministic() {
        let src = r#"
module "t" {
define i64 @main() {
entry:
  %cell = alloca i64, i64 1
  br header
header:
  %i = phi i64 [entry: i64 0] [body: %i2]
  %c = icmp slt i64 %i, i64 100
  condbr %c, body, exit
body:
  %v = load i64, %cell
  %v2 = add i64 %v, %i
  store i64 %v2, %cell
  %i2 = add i64 %i, i64 1
  br header
exit:
  ret i64 0
}
}
"#;
        let (_, a) = audit_src(src);
        let (_, b) = audit_src(src);
        assert_eq!(
            a.to_json().to_string_pretty(),
            b.to_json().to_string_pretty()
        );
    }
}
