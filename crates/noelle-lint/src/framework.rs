//! The lint driver: a registry of named passes, each of which runs over the
//! `Noelle` manager (so analyses are computed once and cached) and returns a
//! list of findings in canonical order.

use crate::diag::{sort_findings, Finding};
use noelle_core::noelle::Noelle;

/// A single lint pass. Passes pull whatever abstractions they need (PDG, DFE,
/// loop forest, ...) from the shared `Noelle` manager so repeated checks reuse
/// cached analyses.
pub trait LintPass {
    /// Stable CLI name, e.g. `races`.
    fn name(&self) -> &'static str;
    /// Primary diagnostic code emitted, e.g. `NL0001`.
    fn code(&self) -> &'static str;
    /// One-line human description.
    fn description(&self) -> &'static str;
    fn run(&self, n: &mut Noelle) -> Vec<Finding>;
}

/// All registered passes, in the order they run under `--check all`.
pub fn passes() -> Vec<Box<dyn LintPass>> {
    vec![
        Box::new(crate::races::RaceDetector),
        Box::new(crate::passes::DeadStores),
        Box::new(crate::passes::EnvSlots),
        Box::new(crate::passes::HoistableCalls),
        Box::new(crate::passes::Hygiene),
    ]
}

/// The `--check` grammar accepted by `run_checks`.
pub fn check_usage() -> String {
    let names: Vec<&str> = passes().iter().map(|p| p.name()).collect();
    format!("all|{}", names.join("|"))
}

/// Run the named check (or `all`), returning findings in canonical order.
pub fn run_checks(n: &mut Noelle, check: &str) -> Result<Vec<Finding>, String> {
    let registry = passes();
    let selected: Vec<&Box<dyn LintPass>> = if check == "all" {
        registry.iter().collect()
    } else {
        let found: Vec<_> = registry.iter().filter(|p| p.name() == check).collect();
        if found.is_empty() {
            return Err(format!(
                "unknown check '{check}' (expected {})",
                check_usage()
            ));
        }
        found
    };
    let mut findings = Vec::new();
    for pass in selected {
        findings.extend(pass.run(n));
    }
    sort_findings(&mut findings);
    Ok(findings)
}
