//! The lint driver: a registry of named passes, each of which runs over the
//! `Noelle` manager (so analyses are computed once and cached) and returns a
//! list of findings in canonical order.

use crate::diag::{sort_findings, Finding};
use noelle_core::noelle::Noelle;
use noelle_ir::module::FuncId;
use std::collections::BTreeSet;

/// A single lint pass. Passes pull whatever abstractions they need (PDG, DFE,
/// loop forest, ...) from the shared `Noelle` manager so repeated checks reuse
/// cached analyses.
pub trait LintPass {
    /// Stable CLI name, e.g. `races`.
    fn name(&self) -> &'static str;
    /// Primary diagnostic code emitted, e.g. `NL0001`.
    fn code(&self) -> &'static str;
    /// One-line human description.
    fn description(&self) -> &'static str;
    fn run(&self, n: &mut Noelle) -> Vec<Finding>;

    /// True when every finding of this pass is anchored in the function it
    /// was derived from, and re-running over a function subset yields
    /// exactly the full run's findings for that subset. Function-local
    /// passes can be re-run incrementally over an edit's damage set; the
    /// rest must run whole-module.
    fn function_local(&self) -> bool {
        false
    }

    /// Run the pass restricted to `funcs`. For a [function-local] pass this
    /// returns exactly the full run's findings whose location lies in
    /// `funcs`; the default falls back to a full run (sound for passes with
    /// cross-function findings).
    ///
    /// [function-local]: LintPass::function_local
    fn run_scoped(&self, n: &mut Noelle, funcs: &BTreeSet<FuncId>) -> Vec<Finding> {
        let _ = funcs;
        self.run(n)
    }
}

/// All registered passes, in the order they run under `--check all`.
pub fn passes() -> Vec<Box<dyn LintPass>> {
    vec![
        Box::new(crate::races::RaceDetector),
        Box::new(crate::passes::DeadStores),
        Box::new(crate::passes::EnvSlots),
        Box::new(crate::passes::HoistableCalls),
        Box::new(crate::passes::Hygiene),
    ]
}

/// The `--check` grammar accepted by `run_checks`.
pub fn check_usage() -> String {
    let names: Vec<&str> = passes().iter().map(|p| p.name()).collect();
    format!("all|{}", names.join("|"))
}

/// Run the named check (or `all`), returning findings in canonical order.
pub fn run_checks(n: &mut Noelle, check: &str) -> Result<Vec<Finding>, String> {
    let registry = passes();
    let selected: Vec<&Box<dyn LintPass>> = if check == "all" {
        registry.iter().collect()
    } else {
        let found: Vec<_> = registry.iter().filter(|p| p.name() == check).collect();
        if found.is_empty() {
            return Err(format!(
                "unknown check '{check}' (expected {})",
                check_usage()
            ));
        }
        found
    };
    let mut findings = Vec::new();
    for pass in selected {
        findings.extend(pass.run(n));
    }
    sort_findings(&mut findings);
    Ok(findings)
}

/// Run every function-local pass restricted to `funcs`, in canonical order.
///
/// The incremental half of the IDE's re-lint split: after an edit, only the
/// damage set's function-local findings are re-derived; untouched functions
/// keep their cached findings. Together with [`run_global_checks`] this
/// reproduces `run_checks(n, "all")` exactly — the two partitions are
/// disjoint by [`LintPass::function_local`] and each is stable under
/// partial re-runs.
pub fn run_local_checks(n: &mut Noelle, funcs: &BTreeSet<FuncId>) -> Vec<Finding> {
    let mut findings = Vec::new();
    for pass in passes() {
        if pass.function_local() {
            findings.extend(pass.run_scoped(n, funcs));
        }
    }
    sort_findings(&mut findings);
    findings
}

/// Run every whole-module pass (races, env-slots), in canonical order.
///
/// These passes derive findings from cross-function structure (task
/// dispatch groups), so they re-run in full after every edit; modules with
/// no dispatch sites exit in O(functions) before touching any instruction.
pub fn run_global_checks(n: &mut Noelle) -> Vec<Finding> {
    let mut findings = Vec::new();
    for pass in passes() {
        if !pass.function_local() {
            findings.extend(pass.run(n));
        }
    }
    sort_findings(&mut findings);
    findings
}
