//! noelle-lint: static diagnostics built on the NOELLE abstraction layer.
//!
//! The paper's pitch is that once a compiler infrastructure offers the PDG,
//! dependence summaries, the data-flow engine, and the task/environment
//! abstractions as reusable components, new analyses become cheap to write.
//! This crate is that claim exercised in the other direction from the
//! parallelizers: instead of *transforming* code, the lint passes *audit* it.
//!
//! The headline pass is the NL0001 race detector ([`races`]): it proves (or
//! refutes) that every cross-task memory dependence in `parallelize_with`
//! output is mediated by the environment, queue, or sequential-segment
//! protocol, and reports any unmediated shared access pair with both
//! locations. The supporting suite ([`passes`]) covers dead stores, unused
//! environment slots, hoistable pure calls, and IR hygiene.
//!
//! Findings carry stable codes and sort deterministically ([`diag`]), so the
//! JSON renderer is byte-identical across runs — a property the test suite
//! and the fuzz oracle both rely on.

pub mod audit;
pub mod diag;
pub mod framework;
pub mod passes;
pub mod races;

pub use audit::{audit_code, audit_findings, run_audit, run_audit_scoped};
pub use diag::{has_errors, render_json, render_text, sort_findings, Finding, IrLoc, Severity};
pub use framework::{
    check_usage, passes, run_checks, run_global_checks, run_local_checks, LintPass,
};
pub use races::detect_races;
