//! NL0001: static race detection for parallelized task code.
//!
//! The parallelization enablers (`parallelize_with` DOALL/HELIX/DSWP) emit
//! task functions that run concurrently under `noelle.task.dispatch`. Their
//! correctness contract is that every cross-task memory dependence is
//! mediated by one of the runtime protocols:
//!
//! * the **environment**: live-ins are read-only, live-outs go to slots
//!   indexed by the task id (disjoint per task);
//! * **strided iteration**: DOALL instances cover disjoint residue classes of
//!   the induction space, so same-base accesses indexed by the strided IV
//!   never collide across instances;
//! * **sequential segments** (HELIX): accesses bracketed by
//!   `noelle.ss.wait`/`noelle.ss.signal` on the same segment id are totally
//!   ordered across instances;
//! * **queues** (DSWP): stages exchange values and a per-iteration token
//!   through `noelle.queue.push`/`pop`, which orders the connected stages.
//!
//! This pass re-derives the task structure from the IR alone (dispatch sites,
//! trampolines, environment slot layout), enumerates may-conflicting access
//! pairs with the PDG machinery, and reports every pair it cannot prove
//! mediated as a race, with both instruction locations. On tool output the
//! expected report is empty; a nonempty report on hand-written "task-shaped"
//! code pinpoints the unprotected accesses.
//!
//! Known soundness assumptions (documented, deliberate): stack addresses of a
//! task instance do not escape to shared memory, and queue connectivity
//! between DSWP stages is taken as ordering the connected stage bodies (the
//! token-queue chain the partitioner emits does exactly this).

use crate::diag::{Finding, IrLoc, Severity};
use crate::framework::LintPass;
use noelle_analysis::alias::MemoryObject;
use noelle_analysis::dfe::{BitSet, DataFlowProblem, Direction, Meet};
use noelle_analysis::modref::{is_allocator, ModRefSummaries};
use noelle_core::noelle::{Abstraction, Noelle};
use noelle_ir::inst::{BinOp, Callee, Inst, InstId, Terminator};
use noelle_ir::module::{BlockId, FuncId, Function, Module};
use noelle_ir::value::{Constant, Value};
use noelle_transforms::common::{
    DISPATCH_INTRINSIC, QUEUE_CREATE_INTRINSIC, QUEUE_POP_INTRINSIC, QUEUE_PUSH_INTRINSIC,
    SS_SIGNAL_INTRINSIC, SS_WAIT_INTRINSIC,
};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// The race detector pass (code NL0001).
pub struct RaceDetector;

impl LintPass for RaceDetector {
    fn name(&self) -> &'static str {
        "races"
    }
    fn code(&self) -> &'static str {
        "NL0001"
    }
    fn description(&self) -> &'static str {
        "unmediated cross-task memory dependence in parallelized task code"
    }
    fn run(&self, n: &mut Noelle) -> Vec<Finding> {
        detect_races(n)
    }
}

// ---------------------------------------------------------------------------
// Task-group discovery
// ---------------------------------------------------------------------------

/// One `noelle.task.dispatch` site and the task functions it launches.
pub(crate) struct TaskGroup {
    /// Function containing the dispatch call.
    pub dispatcher: FuncId,
    /// The environment pointer passed to the dispatch.
    pub env: Value,
    /// Task bodies that actually execute user code. For DSWP this is the
    /// stage list behind the trampoline; otherwise the dispatched function.
    pub members: Vec<FuncId>,
    /// True when the dispatched function is a stage-selecting trampoline:
    /// each member then runs as exactly one instance.
    pub pipelined: bool,
}

/// Find every dispatch site in the module.
pub(crate) fn task_groups(m: &Module) -> Vec<TaskGroup> {
    // No dispatch intrinsic declared -> no dispatch site can exist. The
    // O(functions) name probe keeps whole-module passes (races, env-slots)
    // effectively free on modules without tasks — the common case for the
    // IDE's per-keystroke re-lint.
    if m.func_id_by_name(DISPATCH_INTRINSIC).is_none() {
        return Vec::new();
    }
    let mut out = Vec::new();
    for fid in m.func_ids() {
        let f = m.func(fid);
        if f.is_declaration() {
            continue;
        }
        for id in f.inst_ids() {
            let Inst::Call {
                callee: Callee::Direct(c),
                args,
                ..
            } = f.inst(id)
            else {
                continue;
            };
            if m.func(*c).name != DISPATCH_INTRINSIC {
                continue;
            }
            let root = match args.first() {
                Some(Value::Func(r)) => *r,
                _ => continue,
            };
            let env = match args.get(1) {
                Some(v) => *v,
                None => continue,
            };
            match trampoline_stages(m, root) {
                Some(members) => out.push(TaskGroup {
                    dispatcher: fid,
                    env,
                    members,
                    pipelined: true,
                }),
                None => out.push(TaskGroup {
                    dispatcher: fid,
                    env,
                    members: vec![root],
                    pipelined: false,
                }),
            }
        }
    }
    out
}

/// Recognize a DSWP trampoline structurally: it touches no memory itself —
/// every non-terminator instruction is a direct call forwarding
/// `(env, task_id, n_tasks)` — and the entry block switches on the task id.
/// Returns the stage functions in case-value order.
fn trampoline_stages(m: &Module, root: FuncId) -> Option<Vec<FuncId>> {
    let f = m.func(root);
    if f.is_declaration() {
        return None;
    }
    let forwarded = [Value::Arg(0), Value::Arg(1), Value::Arg(2)];
    let mut stage_of_block: BTreeMap<BlockId, FuncId> = BTreeMap::new();
    for id in f.inst_ids() {
        match f.inst(id) {
            Inst::Call {
                callee: Callee::Direct(c),
                args,
                ..
            } if args.as_slice() == forwarded && !m.func(*c).is_declaration() => {
                stage_of_block.insert(f.parent_block(id), *c);
            }
            Inst::Term(_) => {}
            _ => return None,
        }
    }
    if stage_of_block.is_empty() {
        return None;
    }
    let term = f.inst(f.terminator_id(f.entry())?);
    let Inst::Term(Terminator::Switch { value, cases, .. }) = term else {
        return None;
    };
    if *value != Value::Arg(1) {
        return None;
    }
    let mut sorted = cases.clone();
    sorted.sort_by_key(|&(v, _)| v);
    let mut stages = Vec::new();
    for (_, bb) in sorted {
        stages.push(*stage_of_block.get(&bb)?);
    }
    if stages.is_empty() {
        return None;
    }
    Some(stages)
}

// ---------------------------------------------------------------------------
// Environment slot layout
// ---------------------------------------------------------------------------

/// Strip a chain of casts off a value.
fn strip_casts(f: &Function, mut v: Value) -> Value {
    for _ in 0..8 {
        match v {
            Value::Inst(id) => match f.inst(id) {
                Inst::Cast { val, .. } => v = *val,
                _ => break,
            },
            _ => break,
        }
    }
    v
}

/// If `ptr` is `gep env, <const c>` (possibly through casts), return `c`.
pub(crate) fn env_slot_of_ptr(f: &Function, ptr: Value, env: Value) -> Option<i64> {
    let Value::Inst(id) = strip_casts(f, ptr) else {
        return None;
    };
    let Inst::Gep { base, indices, .. } = f.inst(id) else {
        return None;
    };
    if strip_casts(f, *base) != env {
        return None;
    }
    match indices.as_slice() {
        [Value::Const(c)] => c.as_int(),
        _ => None,
    }
}

/// The values the dispatcher stores into each constant environment slot
/// (live-ins and queue ids), with value-side casts stripped.
fn env_slot_stores(m: &Module, g: &TaskGroup) -> BTreeMap<i64, Value> {
    let f = m.func(g.dispatcher);
    let mut slots = BTreeMap::new();
    for id in f.inst_ids() {
        if let Inst::Store { val, ptr, .. } = f.inst(id) {
            if let Some(c) = env_slot_of_ptr(f, *ptr, g.env) {
                slots.insert(c, strip_casts(f, *val));
            }
        }
    }
    slots
}

/// If `v` is a task-side load of constant environment slot `c` —
/// `inttoptr(load(gep(Arg(0), c)))` — return `c`.
fn loaded_env_slot(f: &Function, v: Value) -> Option<i64> {
    let Value::Inst(id) = strip_casts(f, v) else {
        return None;
    };
    let Inst::Load { ptr, .. } = f.inst(id) else {
        return None;
    };
    env_slot_of_ptr(f, *ptr, Value::Arg(0))
}

// ---------------------------------------------------------------------------
// Base-object resolution with environment-slot substitution
// ---------------------------------------------------------------------------

/// Resolve the abstract objects a task-side pointer may address. Unlike the
/// purely intra-procedural `underlying_objects`, a load of a constant
/// environment slot is substituted with the value the dispatcher stored
/// there, and the chase continues in the dispatcher's context — recovering
/// the heap/stack/global identity of live-in pointers so that accesses to
/// provably distinct objects are never paired. `None` means "unknown".
fn resolve_objects(
    m: &Module,
    g: &TaskGroup,
    slots: &BTreeMap<i64, Value>,
    fid: FuncId,
    ptr: Value,
) -> Option<BTreeSet<MemoryObject>> {
    let mut out = BTreeSet::new();
    let mut visited = BTreeSet::new();
    if chase(
        m,
        g,
        slots,
        fid,
        ptr,
        fid != g.dispatcher,
        &mut out,
        &mut visited,
        0,
    ) {
        Some(out)
    } else {
        None
    }
}

/// The actual values flowing into argument `argno` of `fid` across every
/// call site in the module, with the calling function of each. `None` when
/// the function's address is taken (so call sites can't be enumerated) or it
/// is never called.
fn arg_sources(m: &Module, fid: FuncId, argno: usize) -> Option<Vec<(FuncId, Value)>> {
    let mut out = Vec::new();
    for f2id in m.func_ids() {
        let f2 = m.func(f2id);
        if f2.is_declaration() {
            continue;
        }
        for id in f2.inst_ids() {
            let inst = f2.inst(id);
            if let Inst::Call {
                callee: Callee::Direct(c),
                args,
                ..
            } = inst
            {
                if *c == fid {
                    out.push((f2id, *args.get(argno)?));
                    continue;
                }
            }
            if inst.operands().contains(&Value::Func(fid)) {
                return None;
            }
        }
    }
    if out.is_empty() {
        return None;
    }
    Some(out)
}

#[allow(clippy::too_many_arguments)]
fn chase(
    m: &Module,
    g: &TaskGroup,
    slots: &BTreeMap<i64, Value>,
    fid: FuncId,
    v: Value,
    task_side: bool,
    out: &mut BTreeSet<MemoryObject>,
    visited: &mut BTreeSet<(FuncId, u32, bool)>,
    depth: u32,
) -> bool {
    if depth > 24 {
        return false;
    }
    match v {
        Value::Global(gid) => {
            out.insert(MemoryObject::Global(gid));
            true
        }
        Value::Func(f) => {
            out.insert(MemoryObject::Function(f));
            true
        }
        // Null/undef address nothing.
        Value::Const(_) => true,
        // Task arguments are the env/task_id/n_tasks triple and never carry a
        // chased pointer; dispatcher-side arguments are resolved through the
        // call sites of the enclosing function.
        Value::Arg(i) if !task_side => {
            if !visited.insert((fid, i, true)) {
                return true;
            }
            match arg_sources(m, fid, i as usize) {
                Some(sources) => sources.into_iter().all(|(caller, actual)| {
                    chase(m, g, slots, caller, actual, false, out, visited, depth + 1)
                }),
                None => false,
            }
        }
        Value::Arg(_) => false,
        Value::Inst(id) => {
            if !visited.insert((fid, id.0, false)) {
                return true;
            }
            let f = m.func(fid);
            match f.inst(id) {
                Inst::Alloca { .. } => {
                    out.insert(MemoryObject::Alloca(fid, id));
                    true
                }
                Inst::Gep { base, .. } => {
                    chase(m, g, slots, fid, *base, task_side, out, visited, depth + 1)
                }
                Inst::Cast { val, .. } => {
                    chase(m, g, slots, fid, *val, task_side, out, visited, depth + 1)
                }
                Inst::Select { tval, fval, .. } => {
                    chase(m, g, slots, fid, *tval, task_side, out, visited, depth + 1)
                        && chase(m, g, slots, fid, *fval, task_side, out, visited, depth + 1)
                }
                Inst::Phi { incomings, .. } => incomings.iter().all(|&(_, iv)| {
                    chase(m, g, slots, fid, iv, task_side, out, visited, depth + 1)
                }),
                Inst::Call {
                    callee: Callee::Direct(c),
                    ..
                } if is_allocator(&m.func(*c).name) => {
                    out.insert(MemoryObject::Heap(fid, id));
                    true
                }
                Inst::Load { ptr, .. } if task_side => {
                    match env_slot_of_ptr(f, *ptr, Value::Arg(0)).and_then(|c| slots.get(&c)) {
                        Some(&stored) => chase(
                            m,
                            g,
                            slots,
                            g.dispatcher,
                            stored,
                            false,
                            out,
                            visited,
                            depth + 1,
                        ),
                        None => false,
                    }
                }
                _ => false,
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Strided-recurrence recognition
// ---------------------------------------------------------------------------

/// Induction variables of the cyclic-distribution form DOALL emits:
/// `iv = phi [entry: start + step*task_id] [latch: iv + step*n_tasks]`.
/// Every value in one class enumerates `{start + step*(task_id + k*n_tasks)}`
/// — a residue class of `step` disjoint across task instances.
struct StridedInfo {
    /// IV instruction (phi or its update) → class index.
    class_of: BTreeMap<InstId, usize>,
    /// Class index → `(start, step)` key values.
    keys: Vec<(Value, Value)>,
}

fn as_bin(f: &Function, v: Value, op: BinOp) -> Option<(Value, Value)> {
    let Value::Inst(id) = v else {
        return None;
    };
    match f.inst(id) {
        Inst::Bin {
            op: o, lhs, rhs, ..
        } if *o == op => Some((*lhs, *rhs)),
        _ => None,
    }
}

/// Match `v` as `step * Arg(arg)` (either operand order, or the bare
/// argument, i.e. step 1); returns the step.
fn step_times_arg(f: &Function, v: Value, arg: u32) -> Option<Value> {
    if v == Value::Arg(arg) {
        return Some(Value::const_i64(1));
    }
    let (a, b) = as_bin(f, v, BinOp::Mul)?;
    if b == Value::Arg(arg) {
        return Some(a);
    }
    if a == Value::Arg(arg) {
        return Some(b);
    }
    None
}

/// Match one phi as a strided recurrence; returns `(start, step, update)`.
fn strided_phi(f: &Function, phi: InstId) -> Option<(Value, Value, InstId)> {
    let Inst::Phi { incomings, .. } = f.inst(phi) else {
        return None;
    };
    if incomings.len() != 2 {
        return None;
    }
    let orders = [
        (incomings[0].1, incomings[1].1),
        (incomings[1].1, incomings[0].1),
    ];
    for (init_v, upd_v) in orders {
        // Initial value: start + step*task_id (or just step*task_id).
        let parsed = if let Some(step) = step_times_arg(f, init_v, 1) {
            Some((Value::const_i64(0), step))
        } else if let Some((a, b)) = as_bin(f, init_v, BinOp::Add) {
            step_times_arg(f, b, 1)
                .map(|step| (a, step))
                .or_else(|| step_times_arg(f, a, 1).map(|step| (b, step)))
        } else {
            None
        };
        let Some((start, step)) = parsed else {
            continue;
        };
        // Update: iv + step*n_tasks, with the same step.
        let Value::Inst(upd_id) = upd_v else { continue };
        let Some((ua, ub)) = as_bin(f, upd_v, BinOp::Add) else {
            continue;
        };
        let scaled = if ua == Value::Inst(phi) {
            ub
        } else if ub == Value::Inst(phi) {
            ua
        } else {
            continue;
        };
        let Some(step2) = step_times_arg(f, scaled, 2) else {
            continue;
        };
        if step2 != step {
            continue;
        }
        return Some((start, step, upd_id));
    }
    None
}

fn strided_classes(f: &Function) -> StridedInfo {
    let mut info = StridedInfo {
        class_of: BTreeMap::new(),
        keys: Vec::new(),
    };
    for id in f.inst_ids() {
        let Some((start, step, upd)) = strided_phi(f, id) else {
            continue;
        };
        let key = (start, step);
        let class = match info.keys.iter().position(|k| *k == key) {
            Some(c) => c,
            None => {
                info.keys.push(key);
                info.keys.len() - 1
            }
        };
        info.class_of.insert(id, class);
        info.class_of.insert(upd, class);
    }
    info
}

/// True when `v` computes the same value in every task instance: built only
/// from constants, globals, the shared environment pointer, the instance
/// count, and loads of constant (live-in) environment slots.
fn instance_invariant(f: &Function, v: Value, depth: u32) -> bool {
    if depth > 16 {
        return false;
    }
    match v {
        Value::Const(_) | Value::Global(_) | Value::Func(_) => true,
        Value::Arg(1) => false,
        Value::Arg(_) => true,
        Value::Inst(id) => match f.inst(id) {
            Inst::Load { ptr, .. } => env_slot_of_ptr(f, *ptr, Value::Arg(0)).is_some(),
            Inst::Cast { val, .. } => instance_invariant(f, *val, depth + 1),
            Inst::Gep { base, indices, .. } => {
                instance_invariant(f, *base, depth + 1)
                    && indices.iter().all(|&i| instance_invariant(f, i, depth + 1))
            }
            Inst::Bin { lhs, rhs, .. } => {
                instance_invariant(f, *lhs, depth + 1) && instance_invariant(f, *rhs, depth + 1)
            }
            _ => false,
        },
    }
}

// ---------------------------------------------------------------------------
// Sequential-segment open sets (HELIX)
// ---------------------------------------------------------------------------

/// Which segment ids are provably "open" (waited on, not yet signalled) at
/// each instruction — a forward must-analysis solved by the DFE.
struct SegProblem {
    n: usize,
    genb: HashMap<BlockId, BitSet>,
    killb: HashMap<BlockId, BitSet>,
}

impl DataFlowProblem for SegProblem {
    fn universe(&self) -> usize {
        self.n
    }
    fn direction(&self) -> Direction {
        Direction::Forward
    }
    fn meet(&self) -> Meet {
        Meet::Intersection
    }
    fn gen_of(&self, block: BlockId) -> BitSet {
        self.genb
            .get(&block)
            .cloned()
            .unwrap_or_else(|| BitSet::new(self.n))
    }
    fn kill_of(&self, block: BlockId) -> BitSet {
        self.killb
            .get(&block)
            .cloned()
            .unwrap_or_else(|| BitSet::new(self.n))
    }
}

/// If `id` is a wait/signal call, return `(segment id, is_wait)`.
fn seg_event(m: &Module, f: &Function, id: InstId) -> Option<(i64, bool)> {
    let Inst::Call {
        callee: Callee::Direct(c),
        args,
        ..
    } = f.inst(id)
    else {
        return None;
    };
    let name = &m.func(*c).name;
    let is_wait = name == SS_WAIT_INTRINSIC;
    if !is_wait && name != SS_SIGNAL_INTRINSIC {
        return None;
    }
    match args.first() {
        Some(Value::Const(Constant::Int(s, _))) => Some((*s, is_wait)),
        _ => None,
    }
}

/// Per-instruction open-segment sets for `fid` (empty map when the function
/// has no segment brackets).
fn segment_open_sets(n: &mut Noelle, fid: FuncId) -> HashMap<InstId, BTreeSet<i64>> {
    // First pass (immutable): find the segment universe and block gen/kill.
    let (segs, genb, killb) = {
        let m = n.module();
        let f = m.func(fid);
        let mut segs: Vec<i64> = Vec::new();
        for id in f.inst_ids() {
            if let Some((s, _)) = seg_event(m, f, id) {
                if !segs.contains(&s) {
                    segs.push(s);
                }
            }
        }
        segs.sort_unstable();
        if segs.is_empty() {
            return HashMap::new();
        }
        let idx = |s: i64| segs.iter().position(|&x| x == s).unwrap();
        let mut genb = HashMap::new();
        let mut killb = HashMap::new();
        for &b in f.block_order() {
            let mut gen = BitSet::new(segs.len());
            let mut kill = BitSet::new(segs.len());
            for &id in &f.block(b).insts {
                if let Some((s, is_wait)) = seg_event(m, f, id) {
                    let i = idx(s);
                    if is_wait {
                        gen.insert(i);
                        kill.remove(i);
                    } else {
                        kill.insert(i);
                        gen.remove(i);
                    }
                }
            }
            genb.insert(b, gen);
            killb.insert(b, kill);
        }
        (segs, genb, killb)
    };
    let prob = SegProblem {
        n: segs.len(),
        genb,
        killb,
    };
    let res = n.solve_dataflow(fid, &prob);
    // Second pass: refine block-entry facts to per-instruction sets.
    let m = n.module();
    let f = m.func(fid);
    let mut out = HashMap::new();
    for &b in f.block_order() {
        let mut open: BTreeSet<i64> = match res.inb.get(&b) {
            Some(bits) => segs
                .iter()
                .enumerate()
                .filter(|&(i, _)| bits.contains(i))
                .map(|(_, &s)| s)
                .collect(),
            None => BTreeSet::new(),
        };
        for &id in &f.block(b).insts {
            match seg_event(m, f, id) {
                Some((s, true)) => {
                    open.insert(s);
                }
                Some((s, false)) => {
                    open.remove(&s);
                }
                None => {
                    out.insert(id, open.clone());
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Access classification
// ---------------------------------------------------------------------------

#[derive(Clone, Debug, PartialEq)]
enum Shape {
    /// A runtime-protocol intrinsic (dispatch, queues, segments, allocators).
    Protocol,
    /// Read through the shared environment pointer (live-ins; read-only).
    EnvRead,
    /// Environment write whose slot index depends on the task id.
    EnvWritePerTask,
    /// Environment write to a task-id-independent slot — shared.
    EnvWriteShared,
    /// All addressed objects are private to this task function.
    Local,
    /// `gep base, iv` with an instance-invariant base and a strided IV.
    Strided { base: Value, class: usize },
    /// Anything else.
    Plain,
}

#[derive(Clone, Debug)]
struct Access {
    write: bool,
    shape: Shape,
    objs: Option<BTreeSet<MemoryObject>>,
    segs: BTreeSet<i64>,
}

/// True when every syntactic root of `ptr` is the environment argument.
fn env_rooted(f: &Function, ptr: Value, depth: u32) -> bool {
    if depth > 16 {
        return false;
    }
    match ptr {
        Value::Arg(0) => true,
        Value::Inst(id) => match f.inst(id) {
            Inst::Gep { base, .. } => env_rooted(f, *base, depth + 1),
            Inst::Cast { val, .. } => env_rooted(f, *val, depth + 1),
            _ => false,
        },
        _ => false,
    }
}

/// True when the operand closure of `v` contains the task-id argument.
fn depends_on_task_id(f: &Function, v: Value, visited: &mut BTreeSet<InstId>) -> bool {
    match v {
        Value::Arg(1) => true,
        Value::Inst(id) => {
            if !visited.insert(id) {
                return false;
            }
            f.inst(id)
                .operands()
                .iter()
                .any(|&o| depends_on_task_id(f, o, visited))
        }
        _ => false,
    }
}

fn classify_ptr(
    m: &Module,
    g: &TaskGroup,
    slots: &BTreeMap<i64, Value>,
    fid: FuncId,
    ptr: Value,
    is_write: bool,
    strided: &StridedInfo,
) -> (Shape, Option<BTreeSet<MemoryObject>>) {
    let f = m.func(fid);
    if env_rooted(f, ptr, 0) {
        if !is_write {
            return (Shape::EnvRead, None);
        }
        // Per-task iff some gep index on the path depends on the task id.
        let per_task = {
            let p = strip_casts(f, ptr);
            match p {
                Value::Inst(id) => match f.inst(id) {
                    Inst::Gep { indices, .. } => indices.iter().any(|&i| {
                        let mut visited = BTreeSet::new();
                        depends_on_task_id(f, i, &mut visited)
                    }),
                    _ => false,
                },
                _ => false,
            }
        };
        return if per_task {
            (Shape::EnvWritePerTask, None)
        } else {
            (Shape::EnvWriteShared, None)
        };
    }
    let objs = resolve_objects(m, g, slots, fid, ptr);
    if let Some(set) = &objs {
        let local = !set.is_empty()
            && set.iter().all(|o| {
                matches!(o, MemoryObject::Alloca(of, _) | MemoryObject::Heap(of, _) if *of == fid)
            });
        if local {
            return (Shape::Local, objs);
        }
    }
    if let Value::Inst(id) = ptr {
        if let Inst::Gep { base, indices, .. } = f.inst(id) {
            if let [Value::Inst(ix)] = indices.as_slice() {
                if let Some(&class) = strided.class_of.get(ix) {
                    if instance_invariant(f, *base, 0) {
                        return (Shape::Strided { base: *base, class }, objs);
                    }
                }
            }
        }
    }
    (Shape::Plain, objs)
}

/// Names that are part of the task runtime protocol rather than user memory
/// traffic.
fn is_protocol_call(name: &str) -> bool {
    name == DISPATCH_INTRINSIC
        || name == QUEUE_CREATE_INTRINSIC
        || name == QUEUE_PUSH_INTRINSIC
        || name == QUEUE_POP_INTRINSIC
        || name == SS_WAIT_INTRINSIC
        || name == SS_SIGNAL_INTRINSIC
        || is_allocator(name)
}

fn build_accesses(
    m: &Module,
    mr: &ModRefSummaries,
    g: &TaskGroup,
    slots: &BTreeMap<i64, Value>,
    fid: FuncId,
    seg_open: &HashMap<InstId, BTreeSet<i64>>,
) -> BTreeMap<InstId, Access> {
    let f = m.func(fid);
    let strided = strided_classes(f);
    let mut out = BTreeMap::new();
    for id in f.inst_ids() {
        let segs = seg_open.get(&id).cloned().unwrap_or_default();
        match f.inst(id) {
            Inst::Load { ptr, .. } => {
                let (shape, objs) = classify_ptr(m, g, slots, fid, *ptr, false, &strided);
                out.insert(
                    id,
                    Access {
                        write: false,
                        shape,
                        objs,
                        segs,
                    },
                );
            }
            Inst::Store { ptr, .. } => {
                let (shape, objs) = classify_ptr(m, g, slots, fid, *ptr, true, &strided);
                out.insert(
                    id,
                    Access {
                        write: true,
                        shape,
                        objs,
                        segs,
                    },
                );
            }
            Inst::Call { callee, .. } => {
                let shape = match callee {
                    Callee::Direct(c) if is_protocol_call(&m.func(*c).name) => Shape::Protocol,
                    _ => Shape::Plain,
                };
                let write = if shape == Shape::Protocol {
                    true
                } else {
                    let r = mr.call_may_read(m, fid, id);
                    let w = mr.call_may_write(m, fid, id) || mr.call_has_side_effects(m, fid, id);
                    if !r && !w {
                        continue;
                    }
                    w
                };
                out.insert(
                    id,
                    Access {
                        write,
                        shape,
                        objs: None,
                        segs,
                    },
                );
            }
            _ => {}
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Pair judgment
// ---------------------------------------------------------------------------

/// Decide whether an access pair that may run concurrently is provably
/// mediated. Returns `None` when safe, otherwise a short reason fragment.
fn pair_race(
    ax: &Access,
    ay: &Access,
    keys: &[(Value, Value)],
    queue_ordered: bool,
) -> Option<&'static str> {
    if !(ax.write || ay.write) {
        return None;
    }
    let shapes = [&ax.shape, &ay.shape];
    if shapes.iter().any(|s| **s == Shape::Protocol) {
        return None;
    }
    if shapes.iter().any(|s| **s == Shape::Local) {
        return None;
    }
    if shapes.iter().any(|s| **s == Shape::EnvRead) {
        return None;
    }
    if shapes.iter().any(|s| **s == Shape::EnvWritePerTask) {
        return None;
    }
    // A shared-slot environment write races every concurrent instance of
    // itself; report it here so the location is the write.
    if shapes.iter().any(|s| **s == Shape::EnvWriteShared) {
        return Some("a task-id-independent environment slot");
    }
    // Provably distinct objects never collide.
    if let (Some(a), Some(b)) = (&ax.objs, &ay.objs) {
        a.intersection(b).next()?;
    }
    // Same strided residue class over the same base: instances are disjoint
    // as long as the stride is a known nonzero constant.
    if let (
        Shape::Strided {
            base: b1,
            class: c1,
        },
        Shape::Strided {
            base: b2,
            class: c2,
        },
    ) = (&ax.shape, &ay.shape)
    {
        if b1 == b2 && c1 == c2 {
            if let Some((_, Value::Const(Constant::Int(s, _)))) = keys.get(*c1) {
                if *s != 0 {
                    return None;
                }
            }
        }
    }
    // Both accesses inside the same open sequential segment: totally ordered.
    if !ax.segs.is_disjoint(&ay.segs) {
        return None;
    }
    // Connected DSWP stages are ordered by the queue/token chain.
    if queue_ordered {
        return None;
    }
    Some("shared memory")
}

// ---------------------------------------------------------------------------
// The detector
// ---------------------------------------------------------------------------

/// Queue-id environment slots used by `fid` through the given intrinsic.
fn queue_slots(m: &Module, fid: FuncId, intrinsic: &str) -> BTreeSet<i64> {
    let f = m.func(fid);
    let mut out = BTreeSet::new();
    for id in f.inst_ids() {
        let Inst::Call {
            callee: Callee::Direct(c),
            args,
            ..
        } = f.inst(id)
        else {
            continue;
        };
        if m.func(*c).name != intrinsic {
            continue;
        }
        if let Some(&qid) = args.first() {
            if let Some(slot) = loaded_env_slot(f, qid) {
                out.insert(slot);
            }
        }
    }
    out
}

/// Run the race analysis over every dispatch site in the module.
pub fn detect_races(n: &mut Noelle) -> Vec<Finding> {
    n.note(Abstraction::Task);
    n.note(Abstraction::Env);
    let groups = task_groups(n.module());
    if groups.is_empty() {
        return Vec::new();
    }
    // Segment open sets need the DFE and cached CFGs; compute them before
    // the PDG builder borrows the manager.
    let mut seg_open: HashMap<FuncId, HashMap<InstId, BTreeSet<i64>>> = HashMap::new();
    for g in &groups {
        for &mfid in &g.members {
            if let std::collections::hash_map::Entry::Vacant(e) = seg_open.entry(mfid) {
                e.insert(segment_open_sets(n, mfid));
            }
        }
    }
    n.with_pdg(|m, b| {
        let mut findings = Vec::new();
        let mut seen: BTreeSet<((u32, u32), (u32, u32))> = BTreeSet::new();
        let empty = HashMap::new();
        for g in &groups {
            let slots = env_slot_stores(m, g);
            let mut acc: BTreeMap<FuncId, BTreeMap<InstId, Access>> = BTreeMap::new();
            let mut keys: BTreeMap<FuncId, Vec<(Value, Value)>> = BTreeMap::new();
            for &mfid in &g.members {
                let open = seg_open.get(&mfid).unwrap_or(&empty);
                acc.insert(mfid, build_accesses(m, b.modref(), g, &slots, mfid, open));
                keys.insert(mfid, strided_classes(m.func(mfid)).keys);
            }
            let mut report = |fa: FuncId, ia: InstId, fb: FuncId, ib: InstId, why: &str| {
                let mut pair = [(fa.0, ia.0), (fb.0, ib.0)];
                pair.sort_unstable();
                if !seen.insert((pair[0], pair[1])) {
                    return;
                }
                let la = IrLoc::of(m, fa, ia);
                let lb = IrLoc::of(m, fb, ib);
                let (first, second) = if (fa.0, ia.0) <= (fb.0, ib.0) {
                    (la, lb)
                } else {
                    (lb, la)
                };
                let message = if first == second {
                    format!(
                        "possible data race: concurrent task instances of this write touch {why} \
                         without environment, queue, or sequential-segment mediation"
                    )
                } else {
                    format!(
                        "possible data race: this access and {second} touch {why} without \
                         environment, queue, or sequential-segment mediation"
                    )
                };
                let related = if first == second {
                    vec![]
                } else {
                    vec![second]
                };
                findings.push(Finding {
                    code: "NL0001",
                    severity: Severity::Error,
                    loc: first,
                    message,
                    related,
                });
            };
            if g.pipelined {
                let push: Vec<BTreeSet<i64>> = g
                    .members
                    .iter()
                    .map(|&s| queue_slots(m, s, QUEUE_PUSH_INTRINSIC))
                    .collect();
                let pop: Vec<BTreeSet<i64>> = g
                    .members
                    .iter()
                    .map(|&s| queue_slots(m, s, QUEUE_POP_INTRINSIC))
                    .collect();
                let k = g.members.len();
                let mut reach = vec![vec![false; k]; k];
                for i in 0..k {
                    for j in 0..k {
                        reach[i][j] = i != j && push[i].intersection(&pop[j]).next().is_some();
                    }
                }
                for via in 0..k {
                    for i in 0..k {
                        for j in 0..k {
                            reach[i][j] = reach[i][j] || (reach[i][via] && reach[via][j]);
                        }
                    }
                }
                for (i, &fa) in g.members.iter().enumerate() {
                    for (j, &fb) in g.members.iter().enumerate().skip(i + 1) {
                        let ordered = reach[i][j] || reach[j][i];
                        for e in b.cross_function_memory_edges(fa, fb) {
                            let (ia, ib) = (e.src.1, e.dst.1);
                            let (Some(ax), Some(ay)) = (acc[&fa].get(&ia), acc[&fb].get(&ib))
                            else {
                                continue;
                            };
                            if let Some(why) = pair_race(ax, ay, &[], ordered) {
                                report(fa, ia, fb, ib, why);
                            }
                        }
                    }
                }
            } else {
                let mfid = g.members[0];
                let accesses = &acc[&mfid];
                let class_keys = &keys[&mfid];
                let pdg = b.function_pdg(mfid);
                let mut pairs: BTreeSet<(InstId, InstId)> = BTreeSet::new();
                for e in pdg.edges() {
                    if !(e.attrs.memory && e.attrs.is_data()) {
                        continue;
                    }
                    let (lo, hi) = if e.src <= e.dst {
                        (e.src, e.dst)
                    } else {
                        (e.dst, e.src)
                    };
                    pairs.insert((lo, hi));
                }
                // The function PDG has no self-edges, but a shared write
                // races the same write in a sibling instance.
                for (&id, a) in accesses {
                    if a.write {
                        pairs.insert((id, id));
                    }
                }
                for (ia, ib) in pairs {
                    let (Some(ax), Some(ay)) = (accesses.get(&ia), accesses.get(&ib)) else {
                        continue;
                    };
                    if let Some(why) = pair_race(ax, ay, class_keys, false) {
                        report(mfid, ia, mfid, ib, why);
                    }
                }
            }
        }
        findings
    })
}
