//! The supporting lint suite: dead stores (NL0002), unused environment slots
//! (NL0003), hoistable pure calls in loops (NL0004), and verifier-adjacent
//! IR hygiene (NL0005 unreachable blocks, NL0006 dead pure instructions).

use crate::diag::{Finding, IrLoc, Severity};
use crate::framework::LintPass;
use crate::races::{env_slot_of_ptr, task_groups};
use noelle_analysis::alias::alloca_address_taken;
use noelle_analysis::dfe::{BitSet, DataFlowProblem, Direction, Meet};
use noelle_analysis::scev::trivially_loop_invariant;
use noelle_core::noelle::Noelle;
use noelle_ir::inst::{Callee, Inst, InstId};
use noelle_ir::module::{BlockId, FuncId, Module};
use noelle_ir::value::Value;
use std::collections::{BTreeMap, BTreeSet, HashMap};

// ---------------------------------------------------------------------------
// NL0002: dead stores to non-escaping allocas
// ---------------------------------------------------------------------------

/// Classic backward liveness over the tracked allocas of one function,
/// solved by the DFE at block granularity and refined to instructions by a
/// backward in-block walk.
pub struct DeadStores;

struct LivenessProblem {
    n: usize,
    genb: HashMap<BlockId, BitSet>,
    killb: HashMap<BlockId, BitSet>,
}

impl DataFlowProblem for LivenessProblem {
    fn universe(&self) -> usize {
        self.n
    }
    fn direction(&self) -> Direction {
        Direction::Backward
    }
    fn meet(&self) -> Meet {
        Meet::Union
    }
    fn gen_of(&self, block: BlockId) -> BitSet {
        self.genb
            .get(&block)
            .cloned()
            .unwrap_or_else(|| BitSet::new(self.n))
    }
    fn kill_of(&self, block: BlockId) -> BitSet {
        self.killb
            .get(&block)
            .cloned()
            .unwrap_or_else(|| BitSet::new(self.n))
    }
}

impl LintPass for DeadStores {
    fn name(&self) -> &'static str {
        "dead-stores"
    }
    fn code(&self) -> &'static str {
        "NL0002"
    }
    fn description(&self) -> &'static str {
        "store to a non-escaping alloca whose value is never read"
    }
    fn run(&self, n: &mut Noelle) -> Vec<Finding> {
        let fids: Vec<FuncId> = n.module().func_ids().collect();
        run_dead_stores(n, &fids)
    }
    fn function_local(&self) -> bool {
        true
    }
    fn run_scoped(&self, n: &mut Noelle, funcs: &BTreeSet<FuncId>) -> Vec<Finding> {
        let fids: Vec<FuncId> = funcs.iter().copied().collect();
        run_dead_stores(n, &fids)
    }
}

/// The liveness walk behind [`DeadStores`], over an explicit function list.
fn run_dead_stores(n: &mut Noelle, fids: &[FuncId]) -> Vec<Finding> {
    {
        let mut findings = Vec::new();
        for &fid in fids {
            // Gather the tracked allocas and the block gen/kill sets under an
            // immutable borrow, then hand the owned problem to the DFE.
            let (tracked, prob) = {
                let f = n.module().func(fid);
                if f.is_declaration() {
                    continue;
                }
                let tracked: Vec<InstId> = f
                    .inst_ids()
                    .into_iter()
                    .filter(|&id| {
                        matches!(f.inst(id), Inst::Alloca { .. }) && !alloca_address_taken(f, id)
                    })
                    .collect();
                if tracked.is_empty() {
                    continue;
                }
                let idx: BTreeMap<InstId, usize> =
                    tracked.iter().enumerate().map(|(i, &a)| (a, i)).collect();
                let mut genb = HashMap::new();
                let mut killb = HashMap::new();
                for &b in f.block_order() {
                    let mut gen = BitSet::new(tracked.len());
                    let mut kill = BitSet::new(tracked.len());
                    for &id in &f.block(b).insts {
                        match f.inst(id) {
                            Inst::Load {
                                ptr: Value::Inst(a),
                                ..
                            } => {
                                if let Some(&i) = idx.get(a) {
                                    if !kill.contains(i) {
                                        gen.insert(i);
                                    }
                                }
                            }
                            Inst::Store {
                                ptr: Value::Inst(a),
                                ..
                            } => {
                                if let Some(&i) = idx.get(a) {
                                    kill.insert(i);
                                }
                            }
                            _ => {}
                        }
                    }
                    genb.insert(b, gen);
                    killb.insert(b, kill);
                }
                (
                    idx,
                    LivenessProblem {
                        n: tracked.len(),
                        genb,
                        killb,
                    },
                )
            };
            let res = n.solve_dataflow(fid, &prob);
            let m = n.module();
            let f = m.func(fid);
            for &b in f.block_order() {
                let mut live: BTreeSet<usize> = match res.outb.get(&b) {
                    Some(bits) => (0..prob.n).filter(|&i| bits.contains(i)).collect(),
                    None => BTreeSet::new(),
                };
                for &id in f.block(b).insts.iter().rev() {
                    match f.inst(id) {
                        Inst::Store {
                            ptr: Value::Inst(a),
                            ..
                        } => {
                            if let Some(&i) = tracked.get(a) {
                                if !live.contains(&i) {
                                    findings.push(Finding {
                                        code: "NL0002",
                                        severity: Severity::Warning,
                                        loc: IrLoc::of(m, fid, id),
                                        message: format!(
                                            "dead store: the value written to %v{} here is \
                                             overwritten or never read",
                                            a.0
                                        ),
                                        related: vec![],
                                    });
                                }
                                live.remove(&i);
                            }
                        }
                        Inst::Load {
                            ptr: Value::Inst(a),
                            ..
                        } => {
                            if let Some(&i) = tracked.get(a) {
                                live.insert(i);
                            }
                        }
                        _ => {}
                    }
                }
            }
        }
        findings
    }
}

// ---------------------------------------------------------------------------
// NL0003: environment slots written by the dispatcher but never read
// ---------------------------------------------------------------------------

pub struct EnvSlots;

impl LintPass for EnvSlots {
    fn name(&self) -> &'static str {
        "env-slots"
    }
    fn code(&self) -> &'static str {
        "NL0003"
    }
    fn description(&self) -> &'static str {
        "environment slot initialized at a dispatch site but read by no task"
    }
    fn run(&self, n: &mut Noelle) -> Vec<Finding> {
        let m = n.module();
        let mut findings = Vec::new();
        for g in task_groups(m) {
            // Constant slots any member reads through the env argument.
            let mut used: BTreeSet<i64> = BTreeSet::new();
            for &mfid in &g.members {
                let f = m.func(mfid);
                for id in f.inst_ids() {
                    if let Inst::Load { ptr, .. } = f.inst(id) {
                        if let Some(c) = env_slot_of_ptr(f, *ptr, Value::Arg(0)) {
                            used.insert(c);
                        }
                    }
                }
            }
            let f = m.func(g.dispatcher);
            for id in f.inst_ids() {
                let Inst::Store { ptr, .. } = f.inst(id) else {
                    continue;
                };
                let Some(c) = env_slot_of_ptr(f, *ptr, g.env) else {
                    continue;
                };
                if !used.contains(&c) {
                    findings.push(Finding {
                        code: "NL0003",
                        severity: Severity::Warning,
                        loc: IrLoc::of(m, g.dispatcher, id),
                        message: format!(
                            "environment slot {c} is initialized here but no task of this \
                             dispatch reads it"
                        ),
                        related: vec![],
                    });
                }
            }
        }
        findings
    }
}

// ---------------------------------------------------------------------------
// NL0004: pure calls with loop-invariant arguments inside loops
// ---------------------------------------------------------------------------

pub struct HoistableCalls;

impl LintPass for HoistableCalls {
    fn name(&self) -> &'static str {
        "hoistable-calls"
    }
    fn code(&self) -> &'static str {
        "NL0004"
    }
    fn description(&self) -> &'static str {
        "call to a pure function with loop-invariant arguments inside a loop"
    }
    fn run(&self, n: &mut Noelle) -> Vec<Finding> {
        let fids: Vec<FuncId> = n.module().func_ids().collect();
        run_hoistable_calls(n, &fids)
    }
    fn function_local(&self) -> bool {
        true
    }
    fn run_scoped(&self, n: &mut Noelle, funcs: &BTreeSet<FuncId>) -> Vec<Finding> {
        let fids: Vec<FuncId> = funcs.iter().copied().collect();
        run_hoistable_calls(n, &fids)
    }
}

/// The loop walk behind [`HoistableCalls`], over an explicit function list.
/// Findings anchor in the caller; callee purity comes from whole-module
/// mod/ref summaries, so a summary change damages its direct callers (which
/// the manager's edit damage rule already includes).
fn run_hoistable_calls(n: &mut Noelle, fids: &[FuncId]) -> Vec<Finding> {
    {
        let mut loops_by_fn = BTreeMap::new();
        for &fid in fids {
            if n.module().func(fid).is_declaration() {
                continue;
            }
            loops_by_fn.insert(fid, n.loops_of(fid));
        }
        n.with_pdg(|m, b| {
            let mr = b.modref();
            let mut findings = Vec::new();
            for (&fid, loops) in &loops_by_fn {
                let f = m.func(fid);
                for l in loops {
                    for &bb in &l.blocks {
                        for &id in &f.block(bb).insts {
                            let Inst::Call {
                                callee: Callee::Direct(c),
                                args,
                                ..
                            } = f.inst(id)
                            else {
                                continue;
                            };
                            let callee = m.func(*c);
                            if callee.is_declaration()
                                || mr.may_read(*c)
                                || mr.may_write(*c)
                                || mr.has_io(*c)
                            {
                                continue;
                            }
                            if !args.iter().all(|&a| trivially_loop_invariant(f, l, a)) {
                                continue;
                            }
                            findings.push(Finding {
                                code: "NL0004",
                                severity: Severity::Hint,
                                loc: IrLoc::of(m, fid, id),
                                message: format!(
                                    "call to pure function @{} has loop-invariant arguments; \
                                     it can be hoisted out of the enclosing loop",
                                    callee.name
                                ),
                                related: vec![],
                            });
                        }
                    }
                }
            }
            findings
        })
    }
}

// ---------------------------------------------------------------------------
// NL0005 / NL0006: verifier-adjacent IR hygiene
// ---------------------------------------------------------------------------

pub struct Hygiene;

fn reachable_blocks(m: &Module, fid: FuncId) -> BTreeSet<BlockId> {
    let f = m.func(fid);
    let mut seen = BTreeSet::new();
    let mut work = vec![f.entry()];
    while let Some(b) = work.pop() {
        if !seen.insert(b) {
            continue;
        }
        if let Some(t) = f.terminator_id(b) {
            if let Inst::Term(term) = f.inst(t) {
                work.extend(term.successors());
            }
        }
    }
    seen
}

impl LintPass for Hygiene {
    fn name(&self) -> &'static str {
        "hygiene"
    }
    fn code(&self) -> &'static str {
        "NL0005"
    }
    fn description(&self) -> &'static str {
        "IR hygiene: unreachable blocks and dead pure instructions"
    }
    fn run(&self, n: &mut Noelle) -> Vec<Finding> {
        let fids: Vec<FuncId> = n.module().func_ids().collect();
        run_hygiene(n, &fids)
    }
    fn function_local(&self) -> bool {
        true
    }
    fn run_scoped(&self, n: &mut Noelle, funcs: &BTreeSet<FuncId>) -> Vec<Finding> {
        let fids: Vec<FuncId> = funcs.iter().copied().collect();
        run_hygiene(n, &fids)
    }
}

/// The reachability/use walk behind [`Hygiene`], over an explicit function
/// list.
fn run_hygiene(n: &mut Noelle, fids: &[FuncId]) -> Vec<Finding> {
    {
        let m = n.module();
        let mut findings = Vec::new();
        for &fid in fids {
            let f = m.func(fid);
            if f.is_declaration() {
                continue;
            }
            let reachable = reachable_blocks(m, fid);
            let mut used: BTreeSet<InstId> = BTreeSet::new();
            for id in f.inst_ids() {
                for op in f.inst(id).operands() {
                    if let Value::Inst(u) = op {
                        used.insert(u);
                    }
                }
            }
            for &b in f.block_order() {
                if !reachable.contains(&b) {
                    if let Some(&first) = f.block(b).insts.first() {
                        findings.push(Finding {
                            code: "NL0005",
                            severity: Severity::Warning,
                            loc: IrLoc::of(m, fid, first),
                            message: format!(
                                "block '{}' is unreachable from the function entry",
                                f.block(b).name
                            ),
                            related: vec![],
                        });
                    }
                    continue;
                }
                for &id in &f.block(b).insts {
                    let pure = matches!(
                        f.inst(id),
                        Inst::Bin { .. }
                            | Inst::Icmp { .. }
                            | Inst::Fcmp { .. }
                            | Inst::Cast { .. }
                            | Inst::Gep { .. }
                            | Inst::Select { .. }
                            | Inst::Phi { .. }
                            | Inst::Load { .. }
                            | Inst::Alloca { .. }
                    );
                    // Keep unused `ret`-shaped terminators and side-effecting
                    // instructions out of this; `Term(Unreachable)` blocks are
                    // legitimate `unreachable` markers, not dead code.
                    if pure && !used.contains(&id) {
                        findings.push(Finding {
                            code: "NL0006",
                            severity: Severity::Hint,
                            loc: IrLoc::of(m, fid, id),
                            message: format!(
                                "result of %v{} is never used and the instruction has no side \
                                 effects",
                                id.0
                            ),
                            related: vec![],
                        });
                    }
                }
            }
        }
        findings
    }
}
