//! Diagnostics model: findings carry a stable code (`NL0001`..), a severity,
//! and resolved IR locations, and sort deterministically so that two runs over
//! the same module render byte-identical output in both text and JSON form.

use noelle_core::json::Json;
use noelle_ir::inst::InstId;
use noelle_ir::module::{FuncId, Module};
use std::collections::BTreeMap;
use std::fmt;

/// How serious a finding is. Only `Error` findings make `noelle-lint` exit
/// nonzero; warnings and hints are advisory.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Hint,
    Warning,
    Error,
}

impl Severity {
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Hint => "hint",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// A position in the IR, resolved to stable coordinates: function name, block
/// name plus its layout index, and the instruction's numeric id.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct IrLoc {
    pub function: String,
    pub block_index: usize,
    pub block: String,
    pub inst: u32,
}

impl IrLoc {
    pub fn of(m: &Module, fid: FuncId, id: InstId) -> IrLoc {
        let f = m.func(fid);
        let b = f.parent_block(id);
        let block_index = f
            .block_order()
            .iter()
            .position(|&x| x == b)
            .unwrap_or(usize::MAX);
        IrLoc {
            function: f.name.clone(),
            block_index,
            block: f.block(b).name.clone(),
            inst: id.0,
        }
    }

    fn to_json(&self) -> Json {
        Json::object(vec![
            ("function".to_string(), Json::Str(self.function.clone())),
            ("block".to_string(), Json::Str(self.block.clone())),
            ("inst".to_string(), Json::Int(i64::from(self.inst))),
        ])
    }
}

impl fmt::Display for IrLoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}:{}:%v{}", self.function, self.block, self.inst)
    }
}

/// One diagnostic produced by a lint pass.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    pub code: &'static str,
    pub severity: Severity,
    pub loc: IrLoc,
    pub message: String,
    /// Secondary locations (e.g. the other half of a racing access pair).
    pub related: Vec<IrLoc>,
}

impl Finding {
    /// The deterministic ordering key required by the renderers:
    /// (function, block, instruction, code).
    fn key(&self) -> (&str, usize, u32, &'static str) {
        (
            &self.loc.function,
            self.loc.block_index,
            self.loc.inst,
            self.code,
        )
    }

    pub fn to_json(&self) -> Json {
        Json::object(vec![
            ("code".to_string(), Json::Str(self.code.to_string())),
            (
                "severity".to_string(),
                Json::Str(self.severity.as_str().to_string()),
            ),
            ("location".to_string(), self.loc.to_json()),
            ("message".to_string(), Json::Str(self.message.clone())),
            (
                "related".to_string(),
                Json::Array(self.related.iter().map(|l| l.to_json()).collect()),
            ),
        ])
    }
}

/// Sort findings into the canonical order and drop exact duplicates.
///
/// The comparator is a *total* order over every field: two findings equal in
/// (key, message) but differing in severity or related locations must still
/// land in a fixed relative order, or the final byte stream would depend on
/// the arrival order — which, under parallel PDG partition repair, is
/// whatever the thread pool produced first. Totality also makes `dedup`
/// reliable: equal findings are always adjacent.
pub fn sort_findings(findings: &mut Vec<Finding>) {
    findings.sort_by(|a, b| {
        a.key()
            .cmp(&b.key())
            .then_with(|| a.message.cmp(&b.message))
            .then_with(|| a.severity.cmp(&b.severity))
            .then_with(|| a.related.cmp(&b.related))
            .then_with(|| a.loc.cmp(&b.loc))
    });
    findings.dedup();
}

/// Render findings for a terminal, one line per finding plus related notes.
pub fn render_text(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&format!(
            "{}[{}] {}: {}\n",
            f.severity.as_str(),
            f.code,
            f.loc,
            f.message
        ));
        for r in &f.related {
            out.push_str(&format!("  note: see also {r}\n"));
        }
    }
    let errors = findings
        .iter()
        .filter(|f| f.severity == Severity::Error)
        .count();
    let warnings = findings
        .iter()
        .filter(|f| f.severity == Severity::Warning)
        .count();
    let hints = findings
        .iter()
        .filter(|f| f.severity == Severity::Hint)
        .count();
    out.push_str(&format!(
        "{} finding(s): {errors} error(s), {warnings} warning(s), {hints} hint(s)\n",
        findings.len()
    ));
    out
}

/// Render findings as a JSON document. Findings must already be sorted; the
/// output is then byte-identical across runs (object keys are BTreeMap-ordered
/// and the findings array preserves the canonical order).
pub fn render_json(findings: &[Finding]) -> Json {
    let mut by_severity: BTreeMap<&str, i64> = BTreeMap::new();
    for f in findings {
        *by_severity.entry(f.severity.as_str()).or_insert(0) += 1;
    }
    Json::object(vec![
        (
            "findings".to_string(),
            Json::Array(findings.iter().map(|f| f.to_json()).collect()),
        ),
        (
            "summary".to_string(),
            Json::object(vec![
                ("total".to_string(), Json::Int(findings.len() as i64)),
                (
                    "errors".to_string(),
                    Json::Int(by_severity.get("error").copied().unwrap_or(0)),
                ),
                (
                    "warnings".to_string(),
                    Json::Int(by_severity.get("warning").copied().unwrap_or(0)),
                ),
                (
                    "hints".to_string(),
                    Json::Int(by_severity.get("hint").copied().unwrap_or(0)),
                ),
            ]),
        ),
    ])
}

/// True if any finding should make a checking tool exit nonzero.
pub fn has_errors(findings: &[Finding]) -> bool {
    findings.iter().any(|f| f.severity == Severity::Error)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loc(inst: u32) -> IrLoc {
        IrLoc {
            function: "f".to_string(),
            block_index: 1,
            block: "body".to_string(),
            inst,
        }
    }

    /// Parallel PDG partition repair delivers findings in thread-completion
    /// order; two findings that tie on (key, message) but differ in related
    /// locations or severity must still render byte-identically regardless
    /// of arrival order.
    #[test]
    fn sort_is_total_under_arrival_order() {
        let a = Finding {
            code: "NL0001",
            severity: Severity::Warning,
            loc: loc(4),
            message: "unmediated access".to_string(),
            related: vec![loc(9)],
        };
        let b = Finding {
            code: "NL0001",
            severity: Severity::Warning,
            loc: loc(4),
            message: "unmediated access".to_string(),
            related: vec![loc(7)],
        };
        let c = Finding {
            code: "NL0001",
            severity: Severity::Error,
            loc: loc(4),
            message: "unmediated access".to_string(),
            related: vec![],
        };
        let mut fwd = vec![a.clone(), b.clone(), c.clone()];
        let mut rev = vec![c, b, a];
        sort_findings(&mut fwd);
        sort_findings(&mut rev);
        assert_eq!(fwd, rev);
        assert_eq!(
            render_json(&fwd).to_string_pretty(),
            render_json(&rev).to_string_pretty()
        );
        assert_eq!(render_text(&fwd), render_text(&rev));
    }

    #[test]
    fn exact_duplicates_are_dropped() {
        let a = Finding {
            code: "NL0002",
            severity: Severity::Hint,
            loc: loc(2),
            message: "dup".to_string(),
            related: vec![],
        };
        let mut v = vec![a.clone(), a.clone(), a];
        sort_findings(&mut v);
        assert_eq!(v.len(), 1);
    }
}
