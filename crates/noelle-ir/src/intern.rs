//! Global string interner.
//!
//! Symbol names (function names above all) are compared on hot analysis
//! paths: alias analysis classifies every call-site callee, mod/ref walks
//! external names, and `Module::func_id_by_name` resolves tool and fuzz
//! lookups. Interning turns those `str` comparisons into `u32` equality.
//!
//! The interner is process-global and append-only: strings are leaked into
//! `'static` storage the first time they are seen, so [`Symbol::as_str`]
//! hands back a plain `&'static str` with no lock held by the caller. For a
//! compiler-shaped workload the set of distinct names is bounded by the
//! input program, so the leak is the arena.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// An interned string. Equality and hashing are `u32` operations.
///
/// Ordering follows interning order, not lexicographic order — use
/// [`Symbol::as_str`] when a textual sort is needed.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

struct Interner {
    map: HashMap<&'static str, u32>,
    strings: Vec<&'static str>,
}

fn interner() -> &'static Mutex<Interner> {
    static INTERNER: OnceLock<Mutex<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        Mutex::new(Interner {
            map: HashMap::new(),
            strings: Vec::new(),
        })
    })
}

impl Symbol {
    /// Intern `s`, returning its stable symbol. Idempotent: the same string
    /// always maps to the same symbol for the lifetime of the process.
    pub fn intern(s: &str) -> Symbol {
        let mut it = interner().lock().unwrap();
        if let Some(&i) = it.map.get(s) {
            return Symbol(i);
        }
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let i = u32::try_from(it.strings.len()).expect("interner overflow");
        it.strings.push(leaked);
        it.map.insert(leaked, i);
        Symbol(i)
    }

    /// The interned string.
    pub fn as_str(self) -> &'static str {
        interner().lock().unwrap().strings[self.0 as usize]
    }

    /// The raw id (stable within the process).
    pub fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({:?})", self.as_str())
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_cheap_to_compare() {
        let a = Symbol::intern("malloc");
        let b = Symbol::intern("malloc");
        let c = Symbol::intern("free");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.as_u32(), b.as_u32());
        assert_eq!(a.as_str(), "malloc");
        assert_eq!(c.as_str(), "free");
    }

    #[test]
    fn symbols_round_trip_through_display() {
        let s = Symbol::intern("noelle.alloc");
        assert_eq!(format!("{s}"), "noelle.alloc");
        assert!(format!("{s:?}").contains("noelle.alloc"));
    }

    #[test]
    fn distinct_strings_get_distinct_ids() {
        let ids: Vec<u32> = ["x1", "x2", "x3", "x1"]
            .iter()
            .map(|s| Symbol::intern(s).as_u32())
            .collect();
        assert_eq!(ids[0], ids[3]);
        assert_ne!(ids[0], ids[1]);
        assert_ne!(ids[1], ids[2]);
    }
}
