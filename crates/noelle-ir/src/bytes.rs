//! Stable little-endian binary encoding primitives.
//!
//! The durable analysis store (`noelle-store`) persists per-function
//! artifacts — PDG partitions, points-to rows, loop forests — as byte
//! payloads whose encoding must be *stable*: the same in-memory value must
//! produce the same bytes in every process, on every run, forever within
//! one store format revision. These primitives are therefore deliberately
//! boring: fixed-width little-endian integers, LEB128 varints for counts,
//! zigzag for signed values, and length-prefixed byte strings. No
//! type-level cleverness, no implicit framing — each artifact codec
//! composes these into its own explicit layout.
//!
//! Decoding is total: every read is bounds-checked and malformed input
//! surfaces as a [`DecodeError`], never a panic. The store treats a decode
//! failure exactly like a cache miss (recompute and overwrite), so a
//! corrupt or stale entry can degrade performance but never correctness.

use std::fmt;

/// A growing byte buffer with stable append-only encoding helpers.
#[derive(Default, Debug)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> ByteWriter {
        ByteWriter::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a fixed-width little-endian u32.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a fixed-width little-endian u64.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an unsigned LEB128 varint (used for counts and small ids).
    pub fn varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Append a zigzag-encoded signed varint.
    pub fn ivarint(&mut self, v: i64) {
        self.varint(((v << 1) ^ (v >> 63)) as u64);
    }

    /// Append a length-prefixed byte string.
    pub fn bytes(&mut self, b: &[u8]) {
        self.varint(b.len() as u64);
        self.buf.extend_from_slice(b);
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.bytes(s.as_bytes());
    }
}

/// Decoding failure: truncated input, varint overflow, invalid UTF-8, or a
/// value outside its domain. Carries a static context label so a store
/// `fsck` can say *which* field of *which* artifact was malformed.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DecodeError {
    /// What was being decoded when the failure occurred.
    pub context: &'static str,
}

impl DecodeError {
    /// A decode error in `context`.
    pub fn new(context: &'static str) -> DecodeError {
        DecodeError { context }
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed encoding: {}", self.context)
    }
}

impl std::error::Error for DecodeError {}

/// A bounds-checked cursor over an encoded byte slice.
#[derive(Clone, Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over `buf`.
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when every byte has been consumed (codecs assert this at the
    /// end so trailing garbage is a decode error, not silently ignored).
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::new(context));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self, context: &'static str) -> Result<u8, DecodeError> {
        Ok(self.take(1, context)?[0])
    }

    /// Read a fixed-width little-endian u32.
    pub fn u32(&mut self, context: &'static str) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(
            self.take(4, context)?.try_into().expect("4 bytes"),
        ))
    }

    /// Read a fixed-width little-endian u64.
    pub fn u64(&mut self, context: &'static str) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(
            self.take(8, context)?.try_into().expect("8 bytes"),
        ))
    }

    /// Read an unsigned LEB128 varint.
    pub fn varint(&mut self, context: &'static str) -> Result<u64, DecodeError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.u8(context)?;
            if shift == 63 && byte > 1 {
                return Err(DecodeError::new(context)); // u64 overflow
            }
            v |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift > 63 {
                return Err(DecodeError::new(context));
            }
        }
    }

    /// Read a varint bounded by `max` (for counts, so a corrupt length
    /// cannot trigger a huge allocation).
    pub fn count(&mut self, max: usize, context: &'static str) -> Result<usize, DecodeError> {
        let v = self.varint(context)?;
        if v > max as u64 {
            return Err(DecodeError::new(context));
        }
        Ok(v as usize)
    }

    /// Read a zigzag-encoded signed varint.
    pub fn ivarint(&mut self, context: &'static str) -> Result<i64, DecodeError> {
        let v = self.varint(context)?;
        Ok(((v >> 1) as i64) ^ -((v & 1) as i64))
    }

    /// Read a length-prefixed byte string.
    pub fn bytes(&mut self, context: &'static str) -> Result<&'a [u8], DecodeError> {
        let n = self.count(self.remaining(), context)?;
        self.take(n, context)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self, context: &'static str) -> Result<&'a str, DecodeError> {
        std::str::from_utf8(self.bytes(context)?).map_err(|_| DecodeError::new(context))
    }

    /// Fail with a decode error unless every byte was consumed.
    pub fn finish(&self, context: &'static str) -> Result<(), DecodeError> {
        if self.is_exhausted() {
            Ok(())
        } else {
            Err(DecodeError::new(context))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        let mut w = ByteWriter::new();
        w.u8(7);
        w.u32(0xdead_beef);
        w.u64(u64::MAX);
        w.varint(0);
        w.varint(127);
        w.varint(128);
        w.varint(u64::MAX);
        w.ivarint(-1);
        w.ivarint(i64::MIN);
        w.ivarint(i64::MAX);
        w.str("hé");
        w.bytes(&[]);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u8("t").unwrap(), 7);
        assert_eq!(r.u32("t").unwrap(), 0xdead_beef);
        assert_eq!(r.u64("t").unwrap(), u64::MAX);
        assert_eq!(r.varint("t").unwrap(), 0);
        assert_eq!(r.varint("t").unwrap(), 127);
        assert_eq!(r.varint("t").unwrap(), 128);
        assert_eq!(r.varint("t").unwrap(), u64::MAX);
        assert_eq!(r.ivarint("t").unwrap(), -1);
        assert_eq!(r.ivarint("t").unwrap(), i64::MIN);
        assert_eq!(r.ivarint("t").unwrap(), i64::MAX);
        assert_eq!(r.str("t").unwrap(), "hé");
        assert_eq!(r.bytes("t").unwrap(), &[] as &[u8]);
        r.finish("t").unwrap();
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut w = ByteWriter::new();
        w.u64(42);
        w.str("hello");
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = ByteReader::new(&bytes[..cut]);
            let ok = r
                .u64("u64")
                .and_then(|_| r.str("str").map(|_| ()))
                .and_then(|()| r.finish("tail"));
            assert!(ok.is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn counts_are_bounded() {
        let mut w = ByteWriter::new();
        w.varint(1 << 40); // absurd element count
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(r.count(1 << 20, "count").is_err());
    }

    #[test]
    fn varint_overflow_rejected() {
        // 11 bytes of continuation: too long for a u64.
        let bytes = [0xff; 11];
        let mut r = ByteReader::new(&bytes);
        assert!(r.varint("v").is_err());
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut w = ByteWriter::new();
        w.u8(1);
        w.u8(2);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        r.u8("a").unwrap();
        assert!(r.finish("tail").is_err());
    }
}
