//! SSA values and constants.

use crate::inst::InstId;
use crate::module::{FuncId, GlobalId};
use crate::types::{FloatWidth, IntWidth, Type};
use std::fmt;

/// A compile-time constant.
///
/// Floats are stored by their bit pattern so that `Constant` can implement
/// `Eq` and `Hash` (needed by the dependence-graph keys in `noelle-pdg`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Constant {
    /// Integer constant of a given width (stored sign-extended).
    Int(i64, IntWidth),
    /// Floating-point constant of a given width, stored as raw bits.
    Float(u64, FloatWidth),
    /// The null pointer.
    Null,
    /// An undefined value of any type.
    Undef,
}

impl Constant {
    /// A boolean (`i1`) constant.
    pub fn bool(v: bool) -> Constant {
        Constant::Int(v as i64, IntWidth::I1)
    }

    /// An `f64` constant from a Rust `f64`.
    pub fn f64(v: f64) -> Constant {
        Constant::Float(v.to_bits(), FloatWidth::F64)
    }

    /// An `f32` constant from a Rust `f32`.
    pub fn f32(v: f32) -> Constant {
        Constant::Float((v as f64).to_bits(), FloatWidth::F32)
    }

    /// The float payload as `f64`, if this is a float constant.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Constant::Float(bits, _) => Some(f64::from_bits(*bits)),
            _ => None,
        }
    }

    /// The integer payload, if this is an integer constant.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Constant::Int(v, _) => Some(*v),
            _ => None,
        }
    }

    /// The natural type of this constant, if it determines one.
    ///
    /// `Null` and `Undef` are typed by context, so they return `None`.
    pub fn ty(&self) -> Option<Type> {
        match self {
            Constant::Int(_, w) => Some(Type::Int(*w)),
            Constant::Float(_, w) => Some(Type::Float(*w)),
            Constant::Null | Constant::Undef => None,
        }
    }
}

impl fmt::Display for Constant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Constant::Int(v, w) => write!(f, "{w} {v}"),
            Constant::Float(bits, w) => write!(f, "{w} {:?}", f64::from_bits(*bits)),
            Constant::Null => write!(f, "null"),
            Constant::Undef => write!(f, "undef"),
        }
    }
}

/// An SSA value: the operand of an instruction.
///
/// `Value` is a small `Copy` handle; instruction results and arguments are
/// indices into the owning [`Function`](crate::Function).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Value {
    /// The result of an instruction in the same function.
    Inst(InstId),
    /// The `i`-th formal argument of the enclosing function.
    Arg(u32),
    /// A compile-time constant.
    Const(Constant),
    /// The address of a module-level global.
    Global(GlobalId),
    /// The address of a function (for indirect calls / function pointers).
    Func(FuncId),
}

impl Value {
    /// Convenience constructor for an `i64` constant value.
    pub fn const_i64(v: i64) -> Value {
        Value::Const(Constant::Int(v, IntWidth::I64))
    }

    /// Convenience constructor for an `i32` constant value.
    pub fn const_i32(v: i32) -> Value {
        Value::Const(Constant::Int(v as i64, IntWidth::I32))
    }

    /// Convenience constructor for an `i1` constant value.
    pub fn const_bool(v: bool) -> Value {
        Value::Const(Constant::bool(v))
    }

    /// Convenience constructor for an `f64` constant value.
    pub fn const_f64(v: f64) -> Value {
        Value::Const(Constant::f64(v))
    }

    /// The instruction id, if this value is an instruction result.
    pub fn as_inst(&self) -> Option<InstId> {
        match self {
            Value::Inst(id) => Some(*id),
            _ => None,
        }
    }

    /// True if this value is a compile-time constant.
    pub fn is_const(&self) -> bool {
        matches!(self, Value::Const(_))
    }

    /// True if this value is defined outside any function body (constants,
    /// globals, function references).
    pub fn is_toplevel(&self) -> bool {
        matches!(self, Value::Const(_) | Value::Global(_) | Value::Func(_))
    }
}

impl From<Constant> for Value {
    fn from(c: Constant) -> Value {
        Value::Const(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_constructors() {
        assert_eq!(Constant::bool(true), Constant::Int(1, IntWidth::I1));
        assert_eq!(Constant::f64(1.5).as_f64(), Some(1.5));
        assert_eq!(Constant::Int(7, IntWidth::I32).as_int(), Some(7));
        assert_eq!(Constant::Null.as_int(), None);
        assert_eq!(Constant::f64(2.0).ty(), Some(Type::F64));
        assert_eq!(Constant::Undef.ty(), None);
    }

    #[test]
    fn value_predicates() {
        assert!(Value::const_i64(1).is_const());
        assert!(Value::const_i64(1).is_toplevel());
        assert!(!Value::Arg(0).is_toplevel());
        assert_eq!(Value::Inst(InstId(3)).as_inst(), Some(InstId(3)));
        assert_eq!(Value::Arg(0).as_inst(), None);
    }

    #[test]
    fn float_constants_hashable_and_eq() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Constant::f64(0.5));
        assert!(set.contains(&Constant::f64(0.5)));
        assert!(!set.contains(&Constant::f64(0.25)));
    }
}
