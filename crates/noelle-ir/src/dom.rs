//! Dominator and post-dominator trees, dominance frontiers, and control
//! dependence.
//!
//! The paper notes (§2.2 "Other abstractions") that NOELLE re-implements
//! LLVM's dominator analysis so that *users* control the lifetime of the
//! analysis result instead of a function-pass manager invalidating it behind
//! their back. In Rust this falls out naturally: [`DomTree`] and
//! [`PostDomTree`] are plain owned values.

use crate::cfg::Cfg;
use crate::module::{BlockId, Function};
use std::collections::{HashMap, HashSet};

/// Cooper–Harvey–Kennedy "engineered" iterative dominator algorithm over a
/// graph given as predecessor lists and a reverse postorder (`rpo[0]` must be
/// the start node). Returns the immediate dominator of each node (the start
/// node is its own idom).
fn chk_idoms(rpo: &[usize], preds: &[Vec<usize>], n: usize) -> Vec<Option<usize>> {
    let mut rpo_pos = vec![usize::MAX; n];
    for (i, &b) in rpo.iter().enumerate() {
        rpo_pos[b] = i;
    }
    let mut idom: Vec<Option<usize>> = vec![None; n];
    let start = rpo[0];
    idom[start] = Some(start);

    let intersect = |idom: &[Option<usize>], mut a: usize, mut b: usize| -> usize {
        while a != b {
            while rpo_pos[a] > rpo_pos[b] {
                a = idom[a].expect("processed node has idom");
            }
            while rpo_pos[b] > rpo_pos[a] {
                b = idom[b].expect("processed node has idom");
            }
        }
        a
    };

    let mut changed = true;
    while changed {
        changed = false;
        for &b in rpo.iter().skip(1) {
            let mut new_idom: Option<usize> = None;
            for &p in &preds[b] {
                if rpo_pos[p] == usize::MAX || idom[p].is_none() {
                    continue;
                }
                new_idom = Some(match new_idom {
                    None => p,
                    Some(cur) => intersect(&idom, cur, p),
                });
            }
            if new_idom.is_some() && idom[b] != new_idom {
                idom[b] = new_idom;
                changed = true;
            }
        }
    }
    idom
}

/// Shared representation for dominator-style trees over block ids.
#[derive(Clone, Debug)]
struct TreeCore {
    /// Immediate dominator of each node; the root maps to itself.
    idom: HashMap<BlockId, BlockId>,
    children: HashMap<BlockId, Vec<BlockId>>,
    /// DFS interval numbering for O(1) dominance queries.
    dfs_in: HashMap<BlockId, u32>,
    dfs_out: HashMap<BlockId, u32>,
    root: BlockId,
}

impl TreeCore {
    fn build(root: BlockId, idom: HashMap<BlockId, BlockId>) -> TreeCore {
        let mut children: HashMap<BlockId, Vec<BlockId>> = HashMap::new();
        for (&b, &d) in &idom {
            if b != d {
                children.entry(d).or_default().push(b);
            }
        }
        for c in children.values_mut() {
            c.sort();
        }
        let mut dfs_in = HashMap::new();
        let mut dfs_out = HashMap::new();
        let mut counter = 0u32;
        // Iterative DFS to number the tree.
        let mut stack = vec![(root, false)];
        while let Some((b, done)) = stack.pop() {
            if done {
                dfs_out.insert(b, counter);
                counter += 1;
                continue;
            }
            dfs_in.insert(b, counter);
            counter += 1;
            stack.push((b, true));
            if let Some(cs) = children.get(&b) {
                for &c in cs.iter().rev() {
                    stack.push((c, false));
                }
            }
        }
        TreeCore {
            idom,
            children,
            dfs_in,
            dfs_out,
            root,
        }
    }

    fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        match (
            self.dfs_in.get(&a),
            self.dfs_out.get(&a),
            self.dfs_in.get(&b),
            self.dfs_out.get(&b),
        ) {
            (Some(ai), Some(ao), Some(bi), Some(bo)) => ai <= bi && bo <= ao,
            _ => false,
        }
    }
}

/// The dominator tree of a function's CFG.
#[derive(Clone, Debug)]
pub struct DomTree {
    core: TreeCore,
}

impl DomTree {
    /// Build the dominator tree from a CFG.
    pub fn new(f: &Function, cfg: &Cfg) -> DomTree {
        let n = f.num_blocks();
        let rpo: Vec<usize> = cfg.rpo.iter().map(|b| b.index()).collect();
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &b in &cfg.rpo {
            preds[b.index()] = cfg.preds(b).iter().map(|p| p.index()).collect();
        }
        let idoms = chk_idoms(&rpo, &preds, n);
        let mut map = HashMap::new();
        for &b in &cfg.rpo {
            if let Some(d) = idoms[b.index()] {
                map.insert(b, BlockId(d as u32));
            }
        }
        DomTree {
            core: TreeCore::build(f.entry(), map),
        }
    }

    /// The immediate dominator of `b` (`None` for the entry or unreachable
    /// blocks).
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        let d = *self.core.idom.get(&b)?;
        (d != b).then_some(d)
    }

    /// True if `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        self.core.dominates(a, b)
    }

    /// True if `a` strictly dominates `b`.
    pub fn strictly_dominates(&self, a: BlockId, b: BlockId) -> bool {
        a != b && self.dominates(a, b)
    }

    /// Children of `b` in the dominator tree.
    pub fn children(&self, b: BlockId) -> &[BlockId] {
        self.core.children.get(&b).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The tree root (the entry block).
    pub fn root(&self) -> BlockId {
        self.core.root
    }

    /// Dominance frontier of every reachable block (Cooper–Harvey–Kennedy).
    pub fn dominance_frontier(&self, cfg: &Cfg) -> HashMap<BlockId, HashSet<BlockId>> {
        let mut df: HashMap<BlockId, HashSet<BlockId>> = HashMap::new();
        for &b in &cfg.rpo {
            let preds = cfg.preds(b);
            if preds.len() < 2 {
                continue;
            }
            for &p in preds {
                if !cfg.is_reachable(p) {
                    continue;
                }
                let mut runner = p;
                while self.idom(b) != Some(runner) {
                    df.entry(runner).or_default().insert(b);
                    match self.idom(runner) {
                        Some(next) => runner = next,
                        None => break,
                    }
                }
            }
        }
        df
    }
}

/// The post-dominator tree of a function's CFG.
///
/// A virtual exit node joins all exit blocks (and a representative of every
/// infinite loop, so functions with endless loops — which the COOS custom
/// tool must handle — still get a total post-dominance relation).
#[derive(Clone, Debug)]
pub struct PostDomTree {
    core: TreeCore,
    /// The blocks directly attached to the virtual exit.
    virtual_exit_preds: Vec<BlockId>,
}

impl PostDomTree {
    /// Build the post-dominator tree from a CFG.
    pub fn new(f: &Function, cfg: &Cfg) -> PostDomTree {
        let n = f.num_blocks();
        // Node numbering: 0..n for blocks, n for the virtual exit.
        let vexit = n;
        let mut exits: Vec<usize> = cfg.exit_blocks().iter().map(|b| b.index()).collect();

        // Blocks that cannot reach an exit (infinite loops): walk backwards
        // from exits; anything reachable-from-entry but not in that set needs
        // a tether to the virtual exit.
        let mut can_exit: HashSet<usize> = HashSet::new();
        let mut work: Vec<usize> = exits.clone();
        while let Some(b) = work.pop() {
            if !can_exit.insert(b) {
                continue;
            }
            for &p in cfg.preds(BlockId(b as u32)) {
                work.push(p.index());
            }
        }
        let mut tethered: Vec<usize> = cfg
            .rpo
            .iter()
            .map(|b| b.index())
            .filter(|b| !can_exit.contains(b))
            .collect();
        // One tether per endless region is enough, but tethering each
        // non-exiting block is simpler and still sound (it only weakens
        // post-dominance inside the endless region).
        exits.append(&mut tethered);

        // Reversed graph: preds of a node are its CFG successors; each exit
        // block additionally has the virtual exit as a predecessor (the
        // reversed direction of the conceptual `exit -> vexit` edge).
        let mut rpreds: Vec<Vec<usize>> = vec![Vec::new(); n + 1];
        for &b in &cfg.rpo {
            rpreds[b.index()] = cfg.succs(b).iter().map(|s| s.index()).collect();
        }
        for &e in &exits {
            rpreds[e].push(vexit);
        }

        // Reverse postorder of the reversed graph, starting at the virtual
        // exit. Successors in the reversed graph are CFG predecessors.
        let rsucc = |node: usize| -> Vec<usize> {
            if node == vexit {
                return vec![];
            }
            let mut out: Vec<usize> = cfg
                .preds(BlockId(node as u32))
                .iter()
                .filter(|p| cfg.is_reachable(**p))
                .map(|p| p.index())
                .collect();
            out.sort_unstable();
            out
        };
        let redges_from_vexit = exits.clone();
        let mut post = Vec::new();
        let mut visited = HashSet::new();
        visited.insert(vexit);
        let mut stack: Vec<(usize, usize)> = vec![(vexit, 0)];
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            let succs: Vec<usize> = if node == vexit {
                redges_from_vexit.clone()
            } else {
                rsucc(node)
            };
            if *next < succs.len() {
                let s = succs[*next];
                *next += 1;
                if visited.insert(s) {
                    stack.push((s, 0));
                }
            } else {
                post.push(node);
                stack.pop();
            }
        }
        post.reverse();

        let idoms = chk_idoms(&post, &rpreds, n + 1);
        let mut map = HashMap::new();
        for &b in &cfg.rpo {
            if let Some(d) = idoms[b.index()] {
                // "Post-dominated only by the virtual exit" is represented by
                // making the block a direct child of the sentinel root.
                if d == vexit {
                    map.insert(b, SENTINEL_ROOT);
                } else {
                    map.insert(b, BlockId(d as u32));
                }
            }
        }
        map.insert(SENTINEL_ROOT, SENTINEL_ROOT);
        PostDomTree {
            core: TreeCore::build(SENTINEL_ROOT, map),
            virtual_exit_preds: exits.into_iter().map(|b| BlockId(b as u32)).collect(),
        }
    }

    /// The immediate post-dominator of `b` (`None` if `b` is only
    /// post-dominated by the virtual exit).
    pub fn ipostdom(&self, b: BlockId) -> Option<BlockId> {
        let d = *self.core.idom.get(&b)?;
        (d != SENTINEL_ROOT && d != b).then_some(d)
    }

    /// True if `a` post-dominates `b` (reflexive).
    pub fn postdominates(&self, a: BlockId, b: BlockId) -> bool {
        self.core.dominates(a, b)
    }

    /// True if `a` strictly post-dominates `b`.
    pub fn strictly_postdominates(&self, a: BlockId, b: BlockId) -> bool {
        a != b && self.postdominates(a, b)
    }

    /// Blocks attached directly to the virtual exit.
    pub fn virtual_exit_preds(&self) -> &[BlockId] {
        &self.virtual_exit_preds
    }

    /// Control dependences of a function (Ferrante–Ottenstein–Warren):
    /// `b` is control dependent on branch block `a` iff `a` has a successor
    /// `s` with `b` post-dominating `s`, and `b` does not strictly
    /// post-dominate `a`. Returns `dependent -> set of controlling blocks`.
    pub fn control_dependences(&self, cfg: &Cfg) -> HashMap<BlockId, HashSet<BlockId>> {
        let mut cd: HashMap<BlockId, HashSet<BlockId>> = HashMap::new();
        for &a in &cfg.rpo {
            let succs = cfg.succs(a);
            if succs.len() < 2 {
                continue;
            }
            for &s in succs {
                // Walk up the post-dominator tree from s to (exclusive) the
                // ipostdom of a; every node on that path is control dependent
                // on a.
                let stop = self.ipostdom(a);
                let mut cur = Some(s);
                while let Some(b) = cur {
                    if Some(b) == stop {
                        break;
                    }
                    cd.entry(b).or_default().insert(a);
                    cur = self.ipostdom(b);
                }
            }
        }
        cd
    }
}

/// Sentinel block id used as the virtual-exit root of the post-dominator
/// tree. No real function has 2^32 - 7 blocks.
const SENTINEL_ROOT: BlockId = BlockId(u32::MAX - 7);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::types::Type;

    fn diamond() -> Function {
        let mut b = FunctionBuilder::new("diamond", vec![("c", Type::I1)], Type::Void);
        let entry = b.entry_block();
        let left = b.block("left");
        let right = b.block("right");
        let join = b.block("join");
        b.switch_to(entry);
        b.cond_br(b.arg(0), left, right);
        b.switch_to(left);
        b.br(join);
        b.switch_to(right);
        b.br(join);
        b.switch_to(join);
        b.ret(None);
        b.finish()
    }

    #[test]
    fn diamond_dominators() {
        let f = diamond();
        let cfg = Cfg::new(&f);
        let dt = DomTree::new(&f, &cfg);
        let [entry, left, right, join] = [0, 1, 2, 3].map(BlockId);
        assert_eq!(dt.idom(entry), None);
        assert_eq!(dt.idom(left), Some(entry));
        assert_eq!(dt.idom(right), Some(entry));
        assert_eq!(dt.idom(join), Some(entry));
        assert!(dt.dominates(entry, join));
        assert!(!dt.dominates(left, join));
        assert!(dt.dominates(join, join));
        assert!(dt.strictly_dominates(entry, left));
        assert!(!dt.strictly_dominates(entry, entry));
    }

    #[test]
    fn diamond_postdominators() {
        let f = diamond();
        let cfg = Cfg::new(&f);
        let pdt = PostDomTree::new(&f, &cfg);
        let [entry, left, right, join] = [0, 1, 2, 3].map(BlockId);
        assert_eq!(pdt.ipostdom(entry), Some(join));
        assert_eq!(pdt.ipostdom(left), Some(join));
        assert_eq!(pdt.ipostdom(right), Some(join));
        assert_eq!(pdt.ipostdom(join), None);
        assert!(pdt.postdominates(join, entry));
        assert!(!pdt.postdominates(left, entry));
    }

    #[test]
    fn diamond_control_dependence() {
        let f = diamond();
        let cfg = Cfg::new(&f);
        let pdt = PostDomTree::new(&f, &cfg);
        let cd = pdt.control_dependences(&cfg);
        let [entry, left, right, join] = [0, 1, 2, 3].map(BlockId);
        assert!(cd[&left].contains(&entry));
        assert!(cd[&right].contains(&entry));
        assert!(!cd.contains_key(&join));
        assert!(!cd.contains_key(&entry));
    }

    #[test]
    fn loop_control_dependence_includes_header_on_itself_region() {
        // entry -> header; header -> body | exit; body -> header
        let mut b = FunctionBuilder::new("f", vec![("c", Type::I1)], Type::Void);
        let entry = b.entry_block();
        let header = b.block("header");
        let body = b.block("body");
        let exit = b.block("exit");
        b.switch_to(entry);
        b.br(header);
        b.switch_to(header);
        b.cond_br(b.arg(0), body, exit);
        b.switch_to(body);
        b.br(header);
        b.switch_to(exit);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let pdt = PostDomTree::new(&f, &cfg);
        let cd = pdt.control_dependences(&cfg);
        // The body is control dependent on the header's branch, and so is the
        // header itself (via the back edge path).
        assert!(cd[&body].contains(&header));
        assert!(cd[&header].contains(&header));
        assert!(!cd.contains_key(&exit));
    }

    #[test]
    fn infinite_loop_gets_tethered() {
        let mut b = FunctionBuilder::new("f", vec![], Type::Void);
        let entry = b.entry_block();
        let spin = b.block("spin");
        b.switch_to(entry);
        b.br(spin);
        b.switch_to(spin);
        b.br(spin);
        let f = b.finish();
        let cfg = Cfg::new(&f);
        // No exit blocks at all; the virtual exit must still adopt the spin
        // block so the analysis terminates and yields a total relation.
        let pdt = PostDomTree::new(&f, &cfg);
        assert!(pdt.virtual_exit_preds().contains(&spin));
        // spin does not strictly post-dominate entry in any meaningful way,
        // but the queries must at least not panic.
        let _ = pdt.postdominates(spin, entry);
    }

    #[test]
    fn nested_if_dominance() {
        // entry -> a | d ; a -> b | c ; b,c -> m ; m,d -> join
        let mut bd =
            FunctionBuilder::new("f", vec![("c1", Type::I1), ("c2", Type::I1)], Type::Void);
        let entry = bd.entry_block();
        let a = bd.block("a");
        let b = bd.block("b");
        let c = bd.block("c");
        let m = bd.block("m");
        let d = bd.block("d");
        let join = bd.block("join");
        bd.switch_to(entry);
        bd.cond_br(bd.arg(0), a, d);
        bd.switch_to(a);
        bd.cond_br(bd.arg(1), b, c);
        bd.switch_to(b);
        bd.br(m);
        bd.switch_to(c);
        bd.br(m);
        bd.switch_to(m);
        bd.br(join);
        bd.switch_to(d);
        bd.br(join);
        bd.switch_to(join);
        bd.ret(None);
        let f = bd.finish();
        let cfg = Cfg::new(&f);
        let dt = DomTree::new(&f, &cfg);
        assert_eq!(dt.idom(m), Some(a));
        assert_eq!(dt.idom(join), Some(entry));
        assert!(dt.dominates(a, b) && dt.dominates(a, c) && dt.dominates(a, m));
        assert!(!dt.dominates(a, join));
        let pdt = PostDomTree::new(&f, &cfg);
        assert_eq!(pdt.ipostdom(a), Some(m));
        assert_eq!(pdt.ipostdom(m), Some(join));
        let cd = pdt.control_dependences(&cfg);
        assert!(cd[&b].contains(&a));
        assert!(cd[&m].contains(&entry));
    }
}
