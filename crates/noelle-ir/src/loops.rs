//! Natural-loop detection and the loop forest.
//!
//! This module provides the structural half of the paper's *loop structure*
//! (LS) abstraction: headers, pre-headers, latches, exits, body blocks, and
//! nesting. The semantic half (induction variables, invariants, dependence
//! graph) is layered on top in `noelle-core` as the paper's L abstraction.

use crate::bytes::{ByteReader, ByteWriter, DecodeError};
use crate::cfg::Cfg;
use crate::dom::DomTree;
use crate::module::{BlockId, Function};
use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// Function-local identifier of a natural loop.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct LoopId(pub u32);

impl LoopId {
    /// Arena index of this loop.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for LoopId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "loop{}", self.0)
    }
}

/// Structure of one natural loop.
#[derive(Clone, Debug)]
pub struct LoopInfo {
    /// This loop's id within its forest.
    pub id: LoopId,
    /// The loop header (target of the back edges; dominates the body).
    pub header: BlockId,
    /// Blocks with a back edge to the header.
    pub latches: Vec<BlockId>,
    /// All blocks of the loop, including the header.
    pub blocks: BTreeSet<BlockId>,
    /// The unique out-of-loop predecessor of the header whose only successor
    /// is the header, if the CFG has one.
    pub preheader: Option<BlockId>,
    /// Edges leaving the loop: `(inside block, outside successor)`.
    pub exit_edges: Vec<(BlockId, BlockId)>,
    /// Enclosing loop, if any.
    pub parent: Option<LoopId>,
    /// Directly nested loops.
    pub children: Vec<LoopId>,
    /// Nesting depth (top-level loops have depth 1).
    pub depth: u32,
}

impl LoopInfo {
    /// True if `b` belongs to the loop.
    pub fn contains(&self, b: BlockId) -> bool {
        self.blocks.contains(&b)
    }

    /// Out-of-loop blocks targeted by exit edges, deduplicated.
    pub fn exit_blocks(&self) -> Vec<BlockId> {
        let mut out: Vec<BlockId> = self.exit_edges.iter().map(|&(_, t)| t).collect();
        out.sort();
        out.dedup();
        out
    }

    /// In-loop blocks with an edge out of the loop, deduplicated.
    pub fn exiting_blocks(&self) -> Vec<BlockId> {
        let mut out: Vec<BlockId> = self.exit_edges.iter().map(|&(s, _)| s).collect();
        out.sort();
        out.dedup();
        out
    }

    /// True for do-while-shaped loops: every exit test happens at a latch, so
    /// the body runs at least once per entry and the test is at the bottom.
    /// LLVM's induction-variable analysis expects this shape (§4.3 of the
    /// paper); NOELLE's does not.
    pub fn is_do_while(&self) -> bool {
        self.exit_edges
            .iter()
            .all(|&(s, _)| self.latches.contains(&s))
    }

    /// True for while-shaped loops: the header tests the exit condition.
    pub fn is_while(&self) -> bool {
        !self.is_do_while()
    }

    /// True if the loop has no exit edges at all.
    pub fn is_endless(&self) -> bool {
        self.exit_edges.is_empty()
    }

    /// The single latch, if there is exactly one.
    pub fn single_latch(&self) -> Option<BlockId> {
        match self.latches.as_slice() {
            [l] => Some(*l),
            _ => None,
        }
    }
}

/// The loop forest of a function: every natural loop plus nesting structure.
#[derive(Clone, Debug)]
pub struct LoopForest {
    loops: Vec<LoopInfo>,
    top_level: Vec<LoopId>,
    /// Innermost loop containing each block.
    block_map: HashMap<BlockId, LoopId>,
}

impl LoopForest {
    /// Detect all natural loops of `f`.
    ///
    /// Back edges are CFG edges `n -> h` where `h` dominates `n`; loops with
    /// the same header are merged (as in LLVM). Irreducible cycles (no
    /// dominating header) are not recognized as loops, matching LLVM 9.
    pub fn new(_f: &Function, cfg: &Cfg, dt: &DomTree) -> LoopForest {
        // 1. Collect back edges grouped by header.
        let mut latches_by_header: HashMap<BlockId, Vec<BlockId>> = HashMap::new();
        for &b in &cfg.rpo {
            for &s in cfg.succs(b) {
                if dt.dominates(s, b) {
                    latches_by_header.entry(s).or_default().push(b);
                }
            }
        }

        // 2. For each header, the loop body is everything that can reach a
        //    latch without passing through the header.
        let mut headers: Vec<BlockId> = latches_by_header.keys().copied().collect();
        headers.sort();
        let mut loops: Vec<LoopInfo> = Vec::new();
        for header in headers {
            let latches = {
                let mut l = latches_by_header[&header].clone();
                l.sort();
                l
            };
            let mut blocks: BTreeSet<BlockId> = BTreeSet::new();
            blocks.insert(header);
            let mut work: Vec<BlockId> = latches.clone();
            while let Some(b) = work.pop() {
                if !blocks.insert(b) {
                    continue;
                }
                for &p in cfg.preds(b) {
                    if cfg.is_reachable(p) {
                        work.push(p);
                    }
                }
            }

            // Exit edges.
            let mut exit_edges = Vec::new();
            for &b in &blocks {
                for &s in cfg.succs(b) {
                    if !blocks.contains(&s) {
                        exit_edges.push((b, s));
                    }
                }
            }
            exit_edges.sort();

            // Preheader: unique out-of-loop predecessor of the header with a
            // single successor.
            let outside_preds: Vec<BlockId> = cfg
                .preds(header)
                .iter()
                .copied()
                .filter(|p| !blocks.contains(p))
                .collect();
            let preheader = match outside_preds.as_slice() {
                [p] if cfg.succs(*p).len() == 1 => Some(*p),
                _ => None,
            };

            let id = LoopId(loops.len() as u32);
            loops.push(LoopInfo {
                id,
                header,
                latches,
                blocks,
                preheader,
                exit_edges,
                parent: None,
                children: Vec::new(),
                depth: 0,
            });
        }

        // 3. Nesting: loop A is an ancestor of loop B iff A contains B's
        //    header (and A != B). The parent is the smallest such ancestor.
        let order: Vec<usize> = {
            let mut idx: Vec<usize> = (0..loops.len()).collect();
            idx.sort_by_key(|&i| loops[i].blocks.len());
            idx
        };
        for &i in &order {
            let header = loops[i].header;
            let mut best: Option<usize> = None;
            for (j, cand) in loops.iter().enumerate() {
                if j != i
                    && cand.blocks.contains(&header)
                    && cand.blocks.len() > loops[i].blocks.len()
                {
                    match best {
                        None => best = Some(j),
                        Some(b) if cand.blocks.len() < loops[b].blocks.len() => best = Some(j),
                        _ => {}
                    }
                }
            }
            if let Some(p) = best {
                loops[i].parent = Some(LoopId(p as u32));
                let id = loops[i].id;
                loops[p].children.push(id);
            }
        }
        for l in loops.iter_mut() {
            l.children.sort();
        }

        // 4. Depths and top-level list.
        let mut top_level = Vec::new();
        for i in 0..loops.len() {
            let mut depth = 1;
            let mut cur = loops[i].parent;
            while let Some(p) = cur {
                depth += 1;
                cur = loops[p.index()].parent;
            }
            loops[i].depth = depth;
            if loops[i].parent.is_none() {
                top_level.push(loops[i].id);
            }
        }

        // 5. Innermost-loop map.
        let mut block_map: HashMap<BlockId, LoopId> = HashMap::new();
        let mut by_size: Vec<usize> = (0..loops.len()).collect();
        by_size.sort_by_key(|&i| std::cmp::Reverse(loops[i].blocks.len()));
        for &i in &by_size {
            for &b in &loops[i].blocks {
                block_map.insert(b, loops[i].id);
            }
        }

        LoopForest {
            loops,
            top_level,
            block_map,
        }
    }

    /// All loops, in header order.
    pub fn loops(&self) -> &[LoopInfo] {
        &self.loops
    }

    /// Access one loop.
    pub fn loop_info(&self, id: LoopId) -> &LoopInfo {
        &self.loops[id.index()]
    }

    /// Outermost loops.
    pub fn top_level(&self) -> &[LoopId] {
        &self.top_level
    }

    /// The innermost loop containing `b`, if any.
    pub fn innermost_containing(&self, b: BlockId) -> Option<LoopId> {
        self.block_map.get(&b).copied()
    }

    /// True if `inner` is nested (transitively) inside `outer`.
    pub fn is_nested_in(&self, inner: LoopId, outer: LoopId) -> bool {
        let mut cur = self.loops[inner.index()].parent;
        while let Some(p) = cur {
            if p == outer {
                return true;
            }
            cur = self.loops[p.index()].parent;
        }
        false
    }

    /// Loops ordered innermost-first (children before parents), the order in
    /// which LICM-style transforms should process them.
    pub fn innermost_first(&self) -> Vec<LoopId> {
        let mut out: Vec<LoopId> = self.loops.iter().map(|l| l.id).collect();
        out.sort_by_key(|l| std::cmp::Reverse(self.loops[l.index()].depth));
        out
    }

    /// Number of loops.
    pub fn len(&self) -> usize {
        self.loops.len()
    }

    /// True if the function has no loops.
    pub fn is_empty(&self) -> bool {
        self.loops.is_empty()
    }

    /// Stable binary encoding of the forest (see `noelle-ir::bytes`).
    ///
    /// Only the defining fields are written — header, latches, body blocks,
    /// preheader, exit edges, and parent, per loop in id order. Everything
    /// derived (children, depths, the top-level list, the innermost-block
    /// map) is reconstructed by [`LoopForest::decode`] with the same
    /// algorithm [`LoopForest::new`] uses, so a decoded forest is
    /// structurally identical to the one that was encoded and cannot carry
    /// inconsistent redundant state.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.varint(self.loops.len() as u64);
        for l in &self.loops {
            w.varint(u64::from(l.header.0));
            w.varint(l.latches.len() as u64);
            for b in &l.latches {
                w.varint(u64::from(b.0));
            }
            w.varint(l.blocks.len() as u64);
            for b in &l.blocks {
                w.varint(u64::from(b.0));
            }
            match l.preheader {
                Some(p) => {
                    w.u8(1);
                    w.varint(u64::from(p.0));
                }
                None => w.u8(0),
            }
            w.varint(l.exit_edges.len() as u64);
            for (a, b) in &l.exit_edges {
                w.varint(u64::from(a.0));
                w.varint(u64::from(b.0));
            }
            match l.parent {
                Some(p) => {
                    w.u8(1);
                    w.varint(u64::from(p.0));
                }
                None => w.u8(0),
            }
        }
        w.into_bytes()
    }

    /// Decode a forest encoded by [`LoopForest::encode`].
    ///
    /// # Errors
    /// Any truncated, overlong, or out-of-domain input is a [`DecodeError`].
    pub fn decode(bytes: &[u8]) -> Result<LoopForest, DecodeError> {
        const MAX: usize = 1 << 24; // sanity bound on element counts
        let mut r = ByteReader::new(bytes);
        let n = r.count(MAX, "forest: loop count")?;
        let block = |r: &mut ByteReader<'_>, ctx| -> Result<BlockId, DecodeError> {
            let v = r.varint(ctx)?;
            u32::try_from(v)
                .map(BlockId)
                .map_err(|_| DecodeError::new(ctx))
        };
        let mut loops: Vec<LoopInfo> = Vec::with_capacity(n.min(1024));
        for i in 0..n {
            let header = block(&mut r, "forest: header")?;
            let latches = (0..r.count(MAX, "forest: latch count")?)
                .map(|_| block(&mut r, "forest: latch"))
                .collect::<Result<Vec<_>, _>>()?;
            let blocks = (0..r.count(MAX, "forest: block count")?)
                .map(|_| block(&mut r, "forest: block"))
                .collect::<Result<BTreeSet<_>, _>>()?;
            let preheader = match r.u8("forest: preheader flag")? {
                0 => None,
                1 => Some(block(&mut r, "forest: preheader")?),
                _ => return Err(DecodeError::new("forest: preheader flag")),
            };
            let exit_edges = (0..r.count(MAX, "forest: exit count")?)
                .map(|_| {
                    Ok((
                        block(&mut r, "forest: exit src")?,
                        block(&mut r, "forest: exit dst")?,
                    ))
                })
                .collect::<Result<Vec<_>, DecodeError>>()?;
            let parent = match r.u8("forest: parent flag")? {
                0 => None,
                1 => {
                    let p = r.count(MAX, "forest: parent id")?;
                    if p >= n || p == i {
                        return Err(DecodeError::new("forest: parent id"));
                    }
                    Some(LoopId(p as u32))
                }
                _ => return Err(DecodeError::new("forest: parent flag")),
            };
            loops.push(LoopInfo {
                id: LoopId(i as u32),
                header,
                latches,
                blocks,
                preheader,
                exit_edges,
                parent,
                children: Vec::new(),
                depth: 0,
            });
        }
        r.finish("forest: trailing bytes")?;
        // Re-derive children, depths, the top-level list, and the
        // innermost-block map exactly as construction does.
        for i in 0..loops.len() {
            if let Some(p) = loops[i].parent {
                let id = loops[i].id;
                loops[p.index()].children.push(id);
            }
        }
        let mut top_level = Vec::new();
        for i in 0..loops.len() {
            loops[i].children.sort();
            let mut depth = 1u32;
            let mut cur = loops[i].parent;
            let mut hops = 0usize;
            while let Some(p) = cur {
                depth += 1;
                hops += 1;
                if hops > loops.len() {
                    return Err(DecodeError::new("forest: parent cycle"));
                }
                cur = loops[p.index()].parent;
            }
            loops[i].depth = depth;
            if loops[i].parent.is_none() {
                top_level.push(loops[i].id);
            }
        }
        let mut block_map: HashMap<BlockId, LoopId> = HashMap::new();
        let mut by_size: Vec<usize> = (0..loops.len()).collect();
        by_size.sort_by_key(|&i| std::cmp::Reverse(loops[i].blocks.len()));
        for &i in &by_size {
            for &b in &loops[i].blocks {
                block_map.insert(b, loops[i].id);
            }
        }
        Ok(LoopForest {
            loops,
            top_level,
            block_map,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::IcmpPred;
    use crate::types::Type;
    use crate::value::Value;

    fn forest_of(f: &Function) -> LoopForest {
        let cfg = Cfg::new(f);
        let dt = DomTree::new(f, &cfg);
        LoopForest::new(f, &cfg, &dt)
    }

    /// while-shaped counted loop.
    fn while_loop() -> Function {
        let mut b = FunctionBuilder::new("w", vec![("n", Type::I64)], Type::Void);
        let entry = b.entry_block();
        let header = b.block("header");
        let body = b.block("body");
        let exit = b.block("exit");
        b.switch_to(entry);
        b.br(header);
        b.switch_to(header);
        let i = b.phi(Type::I64, vec![(entry, Value::const_i64(0))]);
        let c = b.icmp(IcmpPred::Slt, Type::I64, i, b.arg(0));
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let i2 = b.binop(crate::inst::BinOp::Add, Type::I64, i, Value::const_i64(1));
        b.br(header);
        b.add_incoming(i, body, i2);
        b.switch_to(exit);
        b.ret(None);
        b.finish()
    }

    /// do-while-shaped loop: entry -> body; body -> body | exit.
    fn do_while_loop() -> Function {
        let mut b = FunctionBuilder::new("dw", vec![("n", Type::I64)], Type::Void);
        let entry = b.entry_block();
        let body = b.block("body");
        let exit = b.block("exit");
        b.switch_to(entry);
        b.br(body);
        b.switch_to(body);
        let i = b.phi(Type::I64, vec![(entry, Value::const_i64(0))]);
        let i2 = b.binop(crate::inst::BinOp::Add, Type::I64, i, Value::const_i64(1));
        let c = b.icmp(IcmpPred::Slt, Type::I64, i2, b.arg(0));
        b.cond_br(c, body, exit);
        b.add_incoming(i, body, i2);
        b.switch_to(exit);
        b.ret(None);
        b.finish()
    }

    #[test]
    fn while_loop_structure() {
        let f = while_loop();
        let forest = forest_of(&f);
        assert_eq!(forest.len(), 1);
        let l = &forest.loops()[0];
        assert_eq!(l.header, BlockId(1));
        assert_eq!(l.latches, vec![BlockId(2)]);
        assert_eq!(l.blocks.len(), 2);
        assert_eq!(l.preheader, Some(BlockId(0)));
        assert_eq!(l.exit_blocks(), vec![BlockId(3)]);
        assert_eq!(l.exiting_blocks(), vec![BlockId(1)]);
        assert!(l.is_while());
        assert!(!l.is_do_while());
        assert!(!l.is_endless());
        assert_eq!(l.depth, 1);
        assert_eq!(l.single_latch(), Some(BlockId(2)));
    }

    #[test]
    fn do_while_loop_structure() {
        let f = do_while_loop();
        let forest = forest_of(&f);
        assert_eq!(forest.len(), 1);
        let l = &forest.loops()[0];
        assert!(l.is_do_while());
        assert_eq!(l.blocks.len(), 1);
        assert_eq!(l.latches, vec![l.header]);
    }

    #[test]
    fn nested_loops() {
        // for i { for j { } }
        let mut b = FunctionBuilder::new("nest", vec![("n", Type::I64)], Type::Void);
        let entry = b.entry_block();
        let oh = b.block("outer_header");
        let ih_pre = b.block("inner_pre");
        let ih = b.block("inner_header");
        let ibody = b.block("inner_body");
        let olatch = b.block("outer_latch");
        let exit = b.block("exit");
        b.switch_to(entry);
        b.br(oh);
        b.switch_to(oh);
        let i = b.phi(Type::I64, vec![(entry, Value::const_i64(0))]);
        let c1 = b.icmp(IcmpPred::Slt, Type::I64, i, b.arg(0));
        b.cond_br(c1, ih_pre, exit);
        b.switch_to(ih_pre);
        b.br(ih);
        b.switch_to(ih);
        let j = b.phi(Type::I64, vec![(ih_pre, Value::const_i64(0))]);
        let c2 = b.icmp(IcmpPred::Slt, Type::I64, j, b.arg(0));
        b.cond_br(c2, ibody, olatch);
        b.switch_to(ibody);
        let j2 = b.binop(crate::inst::BinOp::Add, Type::I64, j, Value::const_i64(1));
        b.br(ih);
        b.add_incoming(j, ibody, j2);
        b.switch_to(olatch);
        let i2 = b.binop(crate::inst::BinOp::Add, Type::I64, i, Value::const_i64(1));
        b.br(oh);
        b.add_incoming(i, olatch, i2);
        b.switch_to(exit);
        b.ret(None);
        let f = b.finish();
        let forest = forest_of(&f);
        assert_eq!(forest.len(), 2);
        assert_eq!(forest.top_level().len(), 1);
        let outer_id = forest.top_level()[0];
        let outer = forest.loop_info(outer_id);
        assert_eq!(outer.depth, 1);
        assert_eq!(outer.children.len(), 1);
        let inner = forest.loop_info(outer.children[0]);
        assert_eq!(inner.depth, 2);
        assert_eq!(inner.parent, Some(outer_id));
        assert!(forest.is_nested_in(inner.id, outer_id));
        assert!(!forest.is_nested_in(outer_id, inner.id));
        // Innermost map: inner header maps to the inner loop, outer latch to
        // the outer loop.
        assert_eq!(forest.innermost_containing(inner.header), Some(inner.id));
        assert_eq!(
            forest.innermost_containing(outer.latches[0]),
            Some(outer_id)
        );
        assert_eq!(forest.innermost_containing(BlockId(6)), None);
        // innermost_first puts the inner loop before the outer one.
        let order = forest.innermost_first();
        assert_eq!(order[0], inner.id);
        assert_eq!(order[1], outer_id);
    }

    #[test]
    fn endless_loop_detected() {
        let mut b = FunctionBuilder::new("spin", vec![], Type::Void);
        let entry = b.entry_block();
        let spin = b.block("spin");
        b.switch_to(entry);
        b.br(spin);
        b.switch_to(spin);
        b.br(spin);
        let f = b.finish();
        let forest = forest_of(&f);
        assert_eq!(forest.len(), 1);
        assert!(forest.loops()[0].is_endless());
        // An endless loop is trivially do-while shaped (no header exit).
        assert!(forest.loops()[0].is_do_while());
    }

    #[test]
    fn straight_line_code_has_no_loops() {
        let mut b = FunctionBuilder::new("s", vec![], Type::Void);
        let entry = b.entry_block();
        b.switch_to(entry);
        b.ret(None);
        let f = b.finish();
        assert!(forest_of(&f).is_empty());
    }

    fn assert_forest_eq(a: &LoopForest, b: &LoopForest) {
        assert_eq!(a.len(), b.len());
        assert_eq!(a.top_level, b.top_level);
        assert_eq!(a.block_map, b.block_map);
        for (x, y) in a.loops.iter().zip(b.loops.iter()) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.header, y.header);
            assert_eq!(x.latches, y.latches);
            assert_eq!(x.blocks, y.blocks);
            assert_eq!(x.preheader, y.preheader);
            assert_eq!(x.exit_edges, y.exit_edges);
            assert_eq!(x.parent, y.parent);
            assert_eq!(x.children, y.children);
            assert_eq!(x.depth, y.depth);
        }
    }

    #[test]
    fn forest_codec_round_trips() {
        for f in [while_loop(), do_while_loop()] {
            let forest = forest_of(&f);
            let bytes = forest.encode();
            let back = LoopForest::decode(&bytes).expect("decode");
            assert_forest_eq(&forest, &back);
            // Re-encoding the decoded forest is byte-identical.
            assert_eq!(back.encode(), bytes);
        }
    }

    #[test]
    fn forest_codec_rebuilds_nesting() {
        // A synthetic two-level forest: decode must re-derive children,
        // depths, the top-level list, and the innermost-block map.
        let outer = LoopInfo {
            id: LoopId(0),
            header: BlockId(1),
            latches: vec![BlockId(5)],
            blocks: BTreeSet::from([BlockId(1), BlockId(2), BlockId(3), BlockId(5)]),
            preheader: Some(BlockId(0)),
            exit_edges: vec![(BlockId(1), BlockId(6))],
            parent: None,
            children: vec![LoopId(1)],
            depth: 1,
        };
        let inner = LoopInfo {
            id: LoopId(1),
            header: BlockId(2),
            latches: vec![BlockId(3)],
            blocks: BTreeSet::from([BlockId(2), BlockId(3)]),
            preheader: None,
            exit_edges: vec![(BlockId(2), BlockId(5))],
            parent: Some(LoopId(0)),
            children: Vec::new(),
            depth: 2,
        };
        let mut block_map = HashMap::new();
        for b in [1u32, 5] {
            block_map.insert(BlockId(b), LoopId(0));
        }
        for b in [2u32, 3] {
            block_map.insert(BlockId(b), LoopId(1));
        }
        let forest = LoopForest {
            loops: vec![outer, inner],
            top_level: vec![LoopId(0)],
            block_map,
        };
        let back = LoopForest::decode(&forest.encode()).expect("decode");
        assert_forest_eq(&forest, &back);
    }

    #[test]
    fn forest_decode_rejects_malformed() {
        let forest = forest_of(&while_loop());
        let bytes = forest.encode();
        for cut in 0..bytes.len() {
            assert!(LoopForest::decode(&bytes[..cut]).is_err(), "cut {cut}");
        }
        let mut garbage = bytes.clone();
        garbage.push(0);
        assert!(LoopForest::decode(&garbage).is_err(), "trailing byte");
        // A parent id pointing at itself is out of domain.
        let mut w = ByteWriter::new();
        w.varint(1); // one loop
        w.varint(1); // header
        w.varint(0); // no latches
        w.varint(0); // no blocks
        w.u8(0); // no preheader
        w.varint(0); // no exits
        w.u8(1);
        w.varint(0); // parent = self
        assert!(LoopForest::decode(&w.into_bytes()).is_err());
    }
}
