//! Natural-loop detection and the loop forest.
//!
//! This module provides the structural half of the paper's *loop structure*
//! (LS) abstraction: headers, pre-headers, latches, exits, body blocks, and
//! nesting. The semantic half (induction variables, invariants, dependence
//! graph) is layered on top in `noelle-core` as the paper's L abstraction.

use crate::cfg::Cfg;
use crate::dom::DomTree;
use crate::module::{BlockId, Function};
use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// Function-local identifier of a natural loop.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct LoopId(pub u32);

impl LoopId {
    /// Arena index of this loop.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for LoopId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "loop{}", self.0)
    }
}

/// Structure of one natural loop.
#[derive(Clone, Debug)]
pub struct LoopInfo {
    /// This loop's id within its forest.
    pub id: LoopId,
    /// The loop header (target of the back edges; dominates the body).
    pub header: BlockId,
    /// Blocks with a back edge to the header.
    pub latches: Vec<BlockId>,
    /// All blocks of the loop, including the header.
    pub blocks: BTreeSet<BlockId>,
    /// The unique out-of-loop predecessor of the header whose only successor
    /// is the header, if the CFG has one.
    pub preheader: Option<BlockId>,
    /// Edges leaving the loop: `(inside block, outside successor)`.
    pub exit_edges: Vec<(BlockId, BlockId)>,
    /// Enclosing loop, if any.
    pub parent: Option<LoopId>,
    /// Directly nested loops.
    pub children: Vec<LoopId>,
    /// Nesting depth (top-level loops have depth 1).
    pub depth: u32,
}

impl LoopInfo {
    /// True if `b` belongs to the loop.
    pub fn contains(&self, b: BlockId) -> bool {
        self.blocks.contains(&b)
    }

    /// Out-of-loop blocks targeted by exit edges, deduplicated.
    pub fn exit_blocks(&self) -> Vec<BlockId> {
        let mut out: Vec<BlockId> = self.exit_edges.iter().map(|&(_, t)| t).collect();
        out.sort();
        out.dedup();
        out
    }

    /// In-loop blocks with an edge out of the loop, deduplicated.
    pub fn exiting_blocks(&self) -> Vec<BlockId> {
        let mut out: Vec<BlockId> = self.exit_edges.iter().map(|&(s, _)| s).collect();
        out.sort();
        out.dedup();
        out
    }

    /// True for do-while-shaped loops: every exit test happens at a latch, so
    /// the body runs at least once per entry and the test is at the bottom.
    /// LLVM's induction-variable analysis expects this shape (§4.3 of the
    /// paper); NOELLE's does not.
    pub fn is_do_while(&self) -> bool {
        self.exit_edges
            .iter()
            .all(|&(s, _)| self.latches.contains(&s))
    }

    /// True for while-shaped loops: the header tests the exit condition.
    pub fn is_while(&self) -> bool {
        !self.is_do_while()
    }

    /// True if the loop has no exit edges at all.
    pub fn is_endless(&self) -> bool {
        self.exit_edges.is_empty()
    }

    /// The single latch, if there is exactly one.
    pub fn single_latch(&self) -> Option<BlockId> {
        match self.latches.as_slice() {
            [l] => Some(*l),
            _ => None,
        }
    }
}

/// The loop forest of a function: every natural loop plus nesting structure.
#[derive(Clone, Debug)]
pub struct LoopForest {
    loops: Vec<LoopInfo>,
    top_level: Vec<LoopId>,
    /// Innermost loop containing each block.
    block_map: HashMap<BlockId, LoopId>,
}

impl LoopForest {
    /// Detect all natural loops of `f`.
    ///
    /// Back edges are CFG edges `n -> h` where `h` dominates `n`; loops with
    /// the same header are merged (as in LLVM). Irreducible cycles (no
    /// dominating header) are not recognized as loops, matching LLVM 9.
    pub fn new(_f: &Function, cfg: &Cfg, dt: &DomTree) -> LoopForest {
        // 1. Collect back edges grouped by header.
        let mut latches_by_header: HashMap<BlockId, Vec<BlockId>> = HashMap::new();
        for &b in &cfg.rpo {
            for &s in cfg.succs(b) {
                if dt.dominates(s, b) {
                    latches_by_header.entry(s).or_default().push(b);
                }
            }
        }

        // 2. For each header, the loop body is everything that can reach a
        //    latch without passing through the header.
        let mut headers: Vec<BlockId> = latches_by_header.keys().copied().collect();
        headers.sort();
        let mut loops: Vec<LoopInfo> = Vec::new();
        for header in headers {
            let latches = {
                let mut l = latches_by_header[&header].clone();
                l.sort();
                l
            };
            let mut blocks: BTreeSet<BlockId> = BTreeSet::new();
            blocks.insert(header);
            let mut work: Vec<BlockId> = latches.clone();
            while let Some(b) = work.pop() {
                if !blocks.insert(b) {
                    continue;
                }
                for &p in cfg.preds(b) {
                    if cfg.is_reachable(p) {
                        work.push(p);
                    }
                }
            }

            // Exit edges.
            let mut exit_edges = Vec::new();
            for &b in &blocks {
                for &s in cfg.succs(b) {
                    if !blocks.contains(&s) {
                        exit_edges.push((b, s));
                    }
                }
            }
            exit_edges.sort();

            // Preheader: unique out-of-loop predecessor of the header with a
            // single successor.
            let outside_preds: Vec<BlockId> = cfg
                .preds(header)
                .iter()
                .copied()
                .filter(|p| !blocks.contains(p))
                .collect();
            let preheader = match outside_preds.as_slice() {
                [p] if cfg.succs(*p).len() == 1 => Some(*p),
                _ => None,
            };

            let id = LoopId(loops.len() as u32);
            loops.push(LoopInfo {
                id,
                header,
                latches,
                blocks,
                preheader,
                exit_edges,
                parent: None,
                children: Vec::new(),
                depth: 0,
            });
        }

        // 3. Nesting: loop A is an ancestor of loop B iff A contains B's
        //    header (and A != B). The parent is the smallest such ancestor.
        let order: Vec<usize> = {
            let mut idx: Vec<usize> = (0..loops.len()).collect();
            idx.sort_by_key(|&i| loops[i].blocks.len());
            idx
        };
        for &i in &order {
            let header = loops[i].header;
            let mut best: Option<usize> = None;
            for (j, cand) in loops.iter().enumerate() {
                if j != i
                    && cand.blocks.contains(&header)
                    && cand.blocks.len() > loops[i].blocks.len()
                {
                    match best {
                        None => best = Some(j),
                        Some(b) if cand.blocks.len() < loops[b].blocks.len() => best = Some(j),
                        _ => {}
                    }
                }
            }
            if let Some(p) = best {
                loops[i].parent = Some(LoopId(p as u32));
                let id = loops[i].id;
                loops[p].children.push(id);
            }
        }
        for l in loops.iter_mut() {
            l.children.sort();
        }

        // 4. Depths and top-level list.
        let mut top_level = Vec::new();
        for i in 0..loops.len() {
            let mut depth = 1;
            let mut cur = loops[i].parent;
            while let Some(p) = cur {
                depth += 1;
                cur = loops[p.index()].parent;
            }
            loops[i].depth = depth;
            if loops[i].parent.is_none() {
                top_level.push(loops[i].id);
            }
        }

        // 5. Innermost-loop map.
        let mut block_map: HashMap<BlockId, LoopId> = HashMap::new();
        let mut by_size: Vec<usize> = (0..loops.len()).collect();
        by_size.sort_by_key(|&i| std::cmp::Reverse(loops[i].blocks.len()));
        for &i in &by_size {
            for &b in &loops[i].blocks {
                block_map.insert(b, loops[i].id);
            }
        }

        LoopForest {
            loops,
            top_level,
            block_map,
        }
    }

    /// All loops, in header order.
    pub fn loops(&self) -> &[LoopInfo] {
        &self.loops
    }

    /// Access one loop.
    pub fn loop_info(&self, id: LoopId) -> &LoopInfo {
        &self.loops[id.index()]
    }

    /// Outermost loops.
    pub fn top_level(&self) -> &[LoopId] {
        &self.top_level
    }

    /// The innermost loop containing `b`, if any.
    pub fn innermost_containing(&self, b: BlockId) -> Option<LoopId> {
        self.block_map.get(&b).copied()
    }

    /// True if `inner` is nested (transitively) inside `outer`.
    pub fn is_nested_in(&self, inner: LoopId, outer: LoopId) -> bool {
        let mut cur = self.loops[inner.index()].parent;
        while let Some(p) = cur {
            if p == outer {
                return true;
            }
            cur = self.loops[p.index()].parent;
        }
        false
    }

    /// Loops ordered innermost-first (children before parents), the order in
    /// which LICM-style transforms should process them.
    pub fn innermost_first(&self) -> Vec<LoopId> {
        let mut out: Vec<LoopId> = self.loops.iter().map(|l| l.id).collect();
        out.sort_by_key(|l| std::cmp::Reverse(self.loops[l.index()].depth));
        out
    }

    /// Number of loops.
    pub fn len(&self) -> usize {
        self.loops.len()
    }

    /// True if the function has no loops.
    pub fn is_empty(&self) -> bool {
        self.loops.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::IcmpPred;
    use crate::types::Type;
    use crate::value::Value;

    fn forest_of(f: &Function) -> LoopForest {
        let cfg = Cfg::new(f);
        let dt = DomTree::new(f, &cfg);
        LoopForest::new(f, &cfg, &dt)
    }

    /// while-shaped counted loop.
    fn while_loop() -> Function {
        let mut b = FunctionBuilder::new("w", vec![("n", Type::I64)], Type::Void);
        let entry = b.entry_block();
        let header = b.block("header");
        let body = b.block("body");
        let exit = b.block("exit");
        b.switch_to(entry);
        b.br(header);
        b.switch_to(header);
        let i = b.phi(Type::I64, vec![(entry, Value::const_i64(0))]);
        let c = b.icmp(IcmpPred::Slt, Type::I64, i, b.arg(0));
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let i2 = b.binop(crate::inst::BinOp::Add, Type::I64, i, Value::const_i64(1));
        b.br(header);
        b.add_incoming(i, body, i2);
        b.switch_to(exit);
        b.ret(None);
        b.finish()
    }

    /// do-while-shaped loop: entry -> body; body -> body | exit.
    fn do_while_loop() -> Function {
        let mut b = FunctionBuilder::new("dw", vec![("n", Type::I64)], Type::Void);
        let entry = b.entry_block();
        let body = b.block("body");
        let exit = b.block("exit");
        b.switch_to(entry);
        b.br(body);
        b.switch_to(body);
        let i = b.phi(Type::I64, vec![(entry, Value::const_i64(0))]);
        let i2 = b.binop(crate::inst::BinOp::Add, Type::I64, i, Value::const_i64(1));
        let c = b.icmp(IcmpPred::Slt, Type::I64, i2, b.arg(0));
        b.cond_br(c, body, exit);
        b.add_incoming(i, body, i2);
        b.switch_to(exit);
        b.ret(None);
        b.finish()
    }

    #[test]
    fn while_loop_structure() {
        let f = while_loop();
        let forest = forest_of(&f);
        assert_eq!(forest.len(), 1);
        let l = &forest.loops()[0];
        assert_eq!(l.header, BlockId(1));
        assert_eq!(l.latches, vec![BlockId(2)]);
        assert_eq!(l.blocks.len(), 2);
        assert_eq!(l.preheader, Some(BlockId(0)));
        assert_eq!(l.exit_blocks(), vec![BlockId(3)]);
        assert_eq!(l.exiting_blocks(), vec![BlockId(1)]);
        assert!(l.is_while());
        assert!(!l.is_do_while());
        assert!(!l.is_endless());
        assert_eq!(l.depth, 1);
        assert_eq!(l.single_latch(), Some(BlockId(2)));
    }

    #[test]
    fn do_while_loop_structure() {
        let f = do_while_loop();
        let forest = forest_of(&f);
        assert_eq!(forest.len(), 1);
        let l = &forest.loops()[0];
        assert!(l.is_do_while());
        assert_eq!(l.blocks.len(), 1);
        assert_eq!(l.latches, vec![l.header]);
    }

    #[test]
    fn nested_loops() {
        // for i { for j { } }
        let mut b = FunctionBuilder::new("nest", vec![("n", Type::I64)], Type::Void);
        let entry = b.entry_block();
        let oh = b.block("outer_header");
        let ih_pre = b.block("inner_pre");
        let ih = b.block("inner_header");
        let ibody = b.block("inner_body");
        let olatch = b.block("outer_latch");
        let exit = b.block("exit");
        b.switch_to(entry);
        b.br(oh);
        b.switch_to(oh);
        let i = b.phi(Type::I64, vec![(entry, Value::const_i64(0))]);
        let c1 = b.icmp(IcmpPred::Slt, Type::I64, i, b.arg(0));
        b.cond_br(c1, ih_pre, exit);
        b.switch_to(ih_pre);
        b.br(ih);
        b.switch_to(ih);
        let j = b.phi(Type::I64, vec![(ih_pre, Value::const_i64(0))]);
        let c2 = b.icmp(IcmpPred::Slt, Type::I64, j, b.arg(0));
        b.cond_br(c2, ibody, olatch);
        b.switch_to(ibody);
        let j2 = b.binop(crate::inst::BinOp::Add, Type::I64, j, Value::const_i64(1));
        b.br(ih);
        b.add_incoming(j, ibody, j2);
        b.switch_to(olatch);
        let i2 = b.binop(crate::inst::BinOp::Add, Type::I64, i, Value::const_i64(1));
        b.br(oh);
        b.add_incoming(i, olatch, i2);
        b.switch_to(exit);
        b.ret(None);
        let f = b.finish();
        let forest = forest_of(&f);
        assert_eq!(forest.len(), 2);
        assert_eq!(forest.top_level().len(), 1);
        let outer_id = forest.top_level()[0];
        let outer = forest.loop_info(outer_id);
        assert_eq!(outer.depth, 1);
        assert_eq!(outer.children.len(), 1);
        let inner = forest.loop_info(outer.children[0]);
        assert_eq!(inner.depth, 2);
        assert_eq!(inner.parent, Some(outer_id));
        assert!(forest.is_nested_in(inner.id, outer_id));
        assert!(!forest.is_nested_in(outer_id, inner.id));
        // Innermost map: inner header maps to the inner loop, outer latch to
        // the outer loop.
        assert_eq!(forest.innermost_containing(inner.header), Some(inner.id));
        assert_eq!(
            forest.innermost_containing(outer.latches[0]),
            Some(outer_id)
        );
        assert_eq!(forest.innermost_containing(BlockId(6)), None);
        // innermost_first puts the inner loop before the outer one.
        let order = forest.innermost_first();
        assert_eq!(order[0], inner.id);
        assert_eq!(order[1], outer_id);
    }

    #[test]
    fn endless_loop_detected() {
        let mut b = FunctionBuilder::new("spin", vec![], Type::Void);
        let entry = b.entry_block();
        let spin = b.block("spin");
        b.switch_to(entry);
        b.br(spin);
        b.switch_to(spin);
        b.br(spin);
        let f = b.finish();
        let forest = forest_of(&f);
        assert_eq!(forest.len(), 1);
        assert!(forest.loops()[0].is_endless());
        // An endless loop is trivially do-while shaped (no header exit).
        assert!(forest.loops()[0].is_do_while());
    }

    #[test]
    fn straight_line_code_has_no_loops() {
        let mut b = FunctionBuilder::new("s", vec![], Type::Void);
        let entry = b.entry_block();
        b.switch_to(entry);
        b.ret(None);
        let f = b.finish();
        assert!(forest_of(&f).is_empty());
    }
}
