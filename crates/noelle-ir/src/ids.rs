//! Deterministic IDs for instructions, blocks, functions, and loops.
//!
//! The paper lists "deterministic IDs" among NOELLE's supporting abstractions:
//! stable identifiers that survive serialization, used by `noelle-meta-pdg-embed`
//! to reference instructions from metadata. IDs are stored as instruction /
//! function metadata under the `noelle.id` key.

use crate::inst::InstId;
use crate::module::{FuncId, Module};
use std::collections::HashMap;

/// Metadata key under which deterministic IDs are stored.
pub const ID_KEY: &str = "noelle.id";

/// Assign a deterministic, dense ID to every attached instruction of every
/// defined function (overwriting any previous assignment). Returns the number
/// of IDs assigned.
pub fn assign_ids(m: &mut Module) -> usize {
    let mut next = 0u64;
    for fid in m.func_ids().collect::<Vec<_>>() {
        let f = m.func_mut(fid);
        if f.is_declaration() {
            continue;
        }
        f.metadata.insert(ID_KEY.to_string(), next.to_string());
        next += 1;
        for id in f.inst_ids() {
            f.set_inst_metadata(id, ID_KEY, next.to_string());
            next += 1;
        }
    }
    next as usize
}

/// Map from deterministic ID back to the instruction carrying it.
pub fn id_index(m: &Module) -> HashMap<u64, (FuncId, InstId)> {
    let mut out = HashMap::new();
    for fid in m.func_ids() {
        let f = m.func(fid);
        for id in f.inst_ids() {
            if let Some(s) = f.inst_metadata(id, ID_KEY) {
                if let Ok(v) = s.parse::<u64>() {
                    out.insert(v, (fid, id));
                }
            }
        }
    }
    out
}

/// The deterministic ID of instruction `inst` in `f`, if assigned.
pub fn inst_id_of(m: &Module, fid: FuncId, inst: InstId) -> Option<u64> {
    m.func(fid)
        .inst_metadata(inst, ID_KEY)
        .and_then(|s| s.parse().ok())
}

/// Remove all NOELLE metadata (keys starting with `noelle.`) from the module,
/// mirroring the paper's `noelle-meta-clean` tool.
pub fn clean_noelle_metadata(m: &mut Module) {
    m.metadata.retain(|k, _| !k.starts_with("noelle."));
    for fid in m.func_ids().collect::<Vec<_>>() {
        let f = m.func_mut(fid);
        f.metadata.retain(|k, _| !k.starts_with("noelle."));
        for md in f.inst_metadata.values_mut() {
            md.retain(|k, _| !k.starts_with("noelle."));
        }
        f.inst_metadata.retain(|_, md| !md.is_empty());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::BinOp;
    use crate::types::Type;
    use crate::value::Value;

    fn two_function_module() -> Module {
        let mut m = Module::new("t");
        for name in ["f", "g"] {
            let mut b = FunctionBuilder::new(name, vec![("x", Type::I64)], Type::I64);
            let entry = b.entry_block();
            b.switch_to(entry);
            let s = b.binop(BinOp::Add, Type::I64, b.arg(0), Value::const_i64(1));
            b.ret(Some(s));
            m.add_function(b.finish());
        }
        m
    }

    #[test]
    fn ids_are_dense_and_unique() {
        let mut m = two_function_module();
        let n = assign_ids(&mut m);
        assert_eq!(n, 6); // 2 functions + 2*2 instructions
        let idx = id_index(&m);
        assert_eq!(idx.len(), 4); // instruction ids only
        let mut seen: Vec<u64> = idx.keys().copied().collect();
        seen.sort();
        assert_eq!(seen, vec![1, 2, 4, 5]);
    }

    #[test]
    fn ids_survive_print_parse_round_trip() {
        let mut m = two_function_module();
        assign_ids(&mut m);
        let text = crate::printer::print_module(&m);
        let m2 = crate::parser::parse_module(&text).unwrap();
        assert_eq!(id_index(&m), id_index(&m2));
    }

    #[test]
    fn assignment_is_deterministic() {
        let mut m1 = two_function_module();
        let mut m2 = two_function_module();
        assign_ids(&mut m1);
        assign_ids(&mut m2);
        assert_eq!(id_index(&m1), id_index(&m2));
    }

    #[test]
    fn clean_removes_only_noelle_keys() {
        let mut m = two_function_module();
        assign_ids(&mut m);
        m.metadata.insert("noelle.pdg".into(), "...".into());
        m.metadata.insert("user.key".into(), "kept".into());
        clean_noelle_metadata(&mut m);
        assert!(m.metadata.contains_key("user.key"));
        assert!(!m.metadata.contains_key("noelle.pdg"));
        assert!(id_index(&m).is_empty());
    }
}
