//! IR verifier: SSA dominance, CFG well-formedness, and type checking.

use crate::cfg::Cfg;
use crate::dom::DomTree;
use crate::inst::{Callee, Inst, InstId, Terminator};
use crate::module::{BlockId, Function, Module};
use crate::types::Type;
use crate::value::{Constant, Value};
use std::error::Error;
use std::fmt;

/// All problems found by the verifier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyErrors {
    /// One message per violated invariant.
    pub errors: Vec<String>,
}

impl fmt::Display for VerifyErrors {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} verification error(s):", self.errors.len())?;
        for e in &self.errors {
            writeln!(f, "  - {e}")?;
        }
        Ok(())
    }
}

impl Error for VerifyErrors {}

/// Verify every function of a module.
///
/// # Errors
/// Returns all violations found across the module.
pub fn verify_module(m: &Module) -> Result<(), VerifyErrors> {
    let mut errors = Vec::new();
    for f in m.functions() {
        if f.is_declaration() {
            continue;
        }
        verify_function(m, f, &mut errors);
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(VerifyErrors { errors })
    }
}

/// Verify a single function, appending problems to `errors`.
pub fn verify_function(m: &Module, f: &Function, errors: &mut Vec<String>) {
    let fname = &f.name;

    // Structural checks first; bail out of deeper checks if they fail.
    let mut structural_ok = true;
    for &b in f.block_order() {
        let insts = &f.block(b).insts;
        if insts.is_empty() {
            errors.push(format!("@{fname}: block {b} is empty"));
            structural_ok = false;
            continue;
        }
        let last = *insts.last().expect("non-empty");
        if !f.inst(last).is_terminator() {
            errors.push(format!("@{fname}: block {b} does not end in a terminator"));
            structural_ok = false;
        }
        for (i, &id) in insts.iter().enumerate() {
            if f.inst(id).is_terminator() && i + 1 != insts.len() {
                errors.push(format!(
                    "@{fname}: terminator {id} in the middle of block {b}"
                ));
                structural_ok = false;
            }
            if matches!(f.inst(id), Inst::Phi { .. }) {
                let at_head = insts[..i]
                    .iter()
                    .all(|&p| matches!(f.inst(p), Inst::Phi { .. }));
                if !at_head {
                    errors.push(format!("@{fname}: phi {id} not at head of block {b}"));
                }
            }
            if f.parent_block(id) != b {
                errors.push(format!("@{fname}: instruction {id} has stale parent block"));
            }
        }
        // Successor validity.
        if let Some(t) = f.terminator(b) {
            for s in t.successors() {
                if s.index() >= f.num_blocks() {
                    errors.push(format!("@{fname}: branch to non-existent block {s}"));
                    structural_ok = false;
                }
            }
        }
    }
    if !structural_ok {
        return;
    }

    let cfg = Cfg::new(f);
    let dt = DomTree::new(f, &cfg);

    // Phi incoming edges match predecessors; SSA dominance; type rules.
    for &b in &cfg.rpo {
        let preds: std::collections::BTreeSet<BlockId> = cfg.preds(b).iter().copied().collect();
        for &id in &f.block(b).insts {
            if let Inst::Phi { incomings, .. } = f.inst(id) {
                let inc: std::collections::BTreeSet<BlockId> =
                    incomings.iter().map(|(p, _)| *p).collect();
                if inc.len() != incomings.len() {
                    errors.push(format!("@{fname}: phi {id} has duplicate incoming blocks"));
                }
                let preds_reachable: std::collections::BTreeSet<BlockId> = preds
                    .iter()
                    .copied()
                    .filter(|p| cfg.is_reachable(*p))
                    .collect();
                if inc != preds_reachable && !preds_reachable.is_subset(&inc) {
                    errors.push(format!(
                        "@{fname}: phi {id} incoming blocks {inc:?} do not cover predecessors {preds_reachable:?}"
                    ));
                }
            }
            check_operand_dominance(f, &cfg, &dt, b, id, errors);
            check_types(m, f, id, errors);
        }
    }
}

fn def_dominates_use(
    f: &Function,
    dt: &DomTree,
    def: InstId,
    use_block: BlockId,
    use_pos: usize,
) -> bool {
    let def_block = f.parent_block(def);
    if def_block == use_block {
        match f.position_in_block(def) {
            Some(dp) => dp < use_pos,
            None => false,
        }
    } else {
        dt.strictly_dominates(def_block, use_block)
    }
}

fn check_operand_dominance(
    f: &Function,
    cfg: &Cfg,
    dt: &DomTree,
    b: BlockId,
    id: InstId,
    errors: &mut Vec<String>,
) {
    let fname = &f.name;
    let pos = f.position_in_block(id).expect("attached");
    match f.inst(id) {
        Inst::Phi { incomings, .. } => {
            for (pred, v) in incomings {
                if let Value::Inst(def) = v {
                    if !cfg.is_reachable(*pred) {
                        continue;
                    }
                    // The def must dominate the end of the incoming block.
                    let def_block = f.parent_block(*def);
                    if !(dt.dominates(def_block, *pred)) {
                        errors.push(format!(
                            "@{fname}: phi {id} incoming {def} from {pred} does not dominate the edge"
                        ));
                    }
                }
            }
        }
        inst => {
            for v in inst.operands() {
                match v {
                    Value::Inst(def) if !def_dominates_use(f, dt, def, b, pos) => {
                        errors.push(format!(
                            "@{fname}: use of {def} in {id} is not dominated by its definition"
                        ));
                    }
                    Value::Arg(i) if i as usize >= f.params.len() => {
                        errors.push(format!(
                            "@{fname}: {id} references out-of-range argument {i}"
                        ));
                    }
                    _ => {}
                }
            }
        }
    }
}

/// True when a constant may stand in for a value of type `ty`.
fn const_matches(c: &Constant, ty: &Type) -> bool {
    match c {
        Constant::Undef => true,
        Constant::Null => ty.is_ptr(),
        Constant::Int(_, w) => *ty == Type::Int(*w),
        Constant::Float(_, w) => *ty == Type::Float(*w),
    }
}

fn value_matches(m: &Module, f: &Function, v: Value, ty: &Type) -> bool {
    match v {
        Value::Const(c) => const_matches(&c, ty),
        other => &f.value_type(m, other) == ty,
    }
}

fn check_types(m: &Module, f: &Function, id: InstId, errors: &mut Vec<String>) {
    let fname = &f.name;
    let mut bad = |msg: String| errors.push(format!("@{fname}: {id}: {msg}"));
    match f.inst(id) {
        Inst::Alloca { count, .. } => {
            if !matches!(
                count,
                Value::Const(Constant::Int(_, _)) | Value::Inst(_) | Value::Arg(_)
            ) {
                bad("alloca count must be an integer value".into());
            }
        }
        Inst::Load { ty, ptr } => {
            if !value_matches(m, f, *ptr, &ty.ptr_to()) {
                bad(format!("load pointer is not {ty}*"));
            }
        }
        Inst::Store { val, ptr, ty } => {
            if !value_matches(m, f, *val, ty) {
                bad(format!("stored value is not {ty}"));
            }
            if !value_matches(m, f, *ptr, &ty.ptr_to()) {
                bad(format!("store pointer is not {ty}*"));
            }
        }
        Inst::Gep {
            base,
            base_ty,
            indices,
        } => {
            if !value_matches(m, f, *base, &base_ty.ptr_to()) {
                bad(format!("gep base is not {base_ty}*"));
            }
            // Struct indices must be constants so the result type is static.
            let mut ty = base_ty.clone();
            for idx in indices.iter().skip(1) {
                match &ty {
                    Type::Array(elem, _) => ty = (**elem).clone(),
                    Type::Struct(fields) => match idx {
                        Value::Const(Constant::Int(v, _)) => match fields.get(*v as usize) {
                            Some(t) => ty = t.clone(),
                            None => {
                                bad(format!("gep struct index {v} out of range"));
                                return;
                            }
                        },
                        _ => {
                            bad("gep struct index must be a constant".into());
                            return;
                        }
                    },
                    _ => {
                        bad("gep indexes into a non-aggregate type".into());
                        return;
                    }
                }
            }
        }
        Inst::Bin { op, ty, lhs, rhs } => {
            if op.is_float_op() != ty.is_float() {
                bad(format!("{} used with type {ty}", op.mnemonic()));
            }
            for v in [lhs, rhs] {
                if !value_matches(m, f, *v, ty) {
                    bad(format!("operand is not {ty}"));
                }
            }
        }
        Inst::Icmp { ty, lhs, rhs, .. } => {
            if !(ty.is_int() || ty.is_ptr()) {
                bad(format!("icmp on non-integer type {ty}"));
            }
            for v in [lhs, rhs] {
                if !value_matches(m, f, *v, ty) {
                    bad(format!("icmp operand is not {ty}"));
                }
            }
        }
        Inst::Fcmp { ty, lhs, rhs, .. } => {
            if !ty.is_float() {
                bad(format!("fcmp on non-float type {ty}"));
            }
            for v in [lhs, rhs] {
                if !value_matches(m, f, *v, ty) {
                    bad(format!("fcmp operand is not {ty}"));
                }
            }
        }
        Inst::Cast { from, val, .. } => {
            if !value_matches(m, f, *val, from) {
                bad(format!("cast source is not {from}"));
            }
        }
        Inst::Select {
            ty,
            cond,
            tval,
            fval,
        } => {
            if !value_matches(m, f, *cond, &Type::I1) {
                bad("select condition is not i1".into());
            }
            for v in [tval, fval] {
                if !value_matches(m, f, *v, ty) {
                    bad(format!("select arm is not {ty}"));
                }
            }
        }
        Inst::Phi { ty, incomings } => {
            for (_, v) in incomings {
                if !value_matches(m, f, *v, ty) {
                    bad(format!("phi incoming is not {ty}"));
                }
            }
        }
        Inst::Call {
            callee,
            args,
            ret_ty,
        } => {
            if let Callee::Direct(fid) = callee {
                let callee_f = m.func(*fid);
                if callee_f.params.len() != args.len() {
                    bad(format!(
                        "call to @{} passes {} args, expected {}",
                        callee_f.name,
                        args.len(),
                        callee_f.params.len()
                    ));
                } else {
                    for (a, (_, pty)) in args.iter().zip(&callee_f.params) {
                        if !value_matches(m, f, *a, pty) {
                            bad(format!("call argument is not {pty}"));
                        }
                    }
                }
                if callee_f.ret_ty != *ret_ty {
                    bad(format!(
                        "call return type {ret_ty} does not match @{}'s {}",
                        callee_f.name, callee_f.ret_ty
                    ));
                }
            }
        }
        Inst::Term(t) => match t {
            Terminator::Ret(None) => {
                if f.ret_ty != Type::Void {
                    bad(format!("ret void in function returning {}", f.ret_ty));
                }
            }
            Terminator::Ret(Some(v)) => {
                if f.ret_ty == Type::Void {
                    bad("ret with value in void function".into());
                } else if !value_matches(m, f, *v, &f.ret_ty) {
                    bad(format!("returned value is not {}", f.ret_ty));
                }
            }
            Terminator::CondBr { cond, .. } => {
                if !value_matches(m, f, *cond, &Type::I1) {
                    bad("condbr condition is not i1".into());
                }
            }
            Terminator::Switch { value, .. } => {
                let ty = f.value_type(m, *value);
                if !ty.is_int() {
                    bad(format!("switch on non-integer type {ty}"));
                }
            }
            Terminator::Br(_) | Terminator::Unreachable => {}
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::BinOp;

    fn verify_one(f: Function) -> Result<(), VerifyErrors> {
        let mut m = Module::new("t");
        m.add_function(f);
        verify_module(&m)
    }

    #[test]
    fn accepts_well_formed() {
        let mut b = FunctionBuilder::new("f", vec![("x", Type::I64)], Type::I64);
        let entry = b.entry_block();
        b.switch_to(entry);
        let s = b.binop(BinOp::Add, Type::I64, b.arg(0), Value::const_i64(1));
        b.ret(Some(s));
        assert!(verify_one(b.finish()).is_ok());
    }

    #[test]
    fn rejects_missing_terminator() {
        let mut b = FunctionBuilder::new("f", vec![], Type::Void);
        let entry = b.entry_block();
        b.switch_to(entry);
        b.binop(
            BinOp::Add,
            Type::I64,
            Value::const_i64(1),
            Value::const_i64(2),
        );
        let err = verify_one(b.finish()).unwrap_err();
        assert!(err.errors[0].contains("does not end in a terminator"));
    }

    #[test]
    fn rejects_type_mismatch() {
        let mut b = FunctionBuilder::new("f", vec![("x", Type::I32)], Type::I64);
        let entry = b.entry_block();
        b.switch_to(entry);
        // i32 argument used as i64 operand.
        let s = b.binop(BinOp::Add, Type::I64, b.arg(0), Value::const_i64(1));
        b.ret(Some(s));
        let err = verify_one(b.finish()).unwrap_err();
        assert!(err.errors.iter().any(|e| e.contains("operand is not i64")));
    }

    #[test]
    fn rejects_use_before_def() {
        let mut b = FunctionBuilder::new("f", vec![], Type::I64);
        let entry = b.entry_block();
        b.switch_to(entry);
        // Manually create a use of an instruction defined later.
        let f = {
            let fut = crate::inst::InstId(1);
            let use_first = b.binop(BinOp::Add, Type::I64, Value::Inst(fut), Value::const_i64(1));
            let _def_later = b.binop(
                BinOp::Add,
                Type::I64,
                Value::const_i64(2),
                Value::const_i64(3),
            );
            b.ret(Some(use_first));
            b.finish()
        };
        let err = verify_one(f).unwrap_err();
        assert!(err
            .errors
            .iter()
            .any(|e| e.contains("not dominated by its definition")));
    }

    #[test]
    fn rejects_bad_ret_type() {
        let mut b = FunctionBuilder::new("f", vec![], Type::Void);
        let entry = b.entry_block();
        b.switch_to(entry);
        b.ret(Some(Value::const_i64(1)));
        let err = verify_one(b.finish()).unwrap_err();
        assert!(err.errors[0].contains("ret with value in void function"));
    }

    #[test]
    fn rejects_call_arity_mismatch() {
        let mut m = Module::new("t");
        let callee = m.declare_function("g", vec![Type::I64, Type::I64], Type::I64);
        let mut b = FunctionBuilder::new("f", vec![], Type::I64);
        let entry = b.entry_block();
        b.switch_to(entry);
        let r = b.call(callee, vec![Value::const_i64(1)], Type::I64);
        b.ret(Some(r));
        m.add_function(b.finish());
        let err = verify_module(&m).unwrap_err();
        assert!(err.errors[0].contains("passes 1 args, expected 2"));
    }

    #[test]
    fn rejects_float_op_on_ints() {
        let mut b = FunctionBuilder::new("f", vec![], Type::I64);
        let entry = b.entry_block();
        b.switch_to(entry);
        let s = b.binop(
            BinOp::FAdd,
            Type::I64,
            Value::const_i64(1),
            Value::const_i64(2),
        );
        b.ret(Some(s));
        let err = verify_one(b.finish()).unwrap_err();
        assert!(err
            .errors
            .iter()
            .any(|e| e.contains("fadd used with type i64")));
    }

    #[test]
    fn null_matches_any_pointer() {
        let mut b = FunctionBuilder::new("f", vec![("p", Type::I64.ptr_to())], Type::Void);
        let entry = b.entry_block();
        b.switch_to(entry);
        let c = b.icmp(
            crate::inst::IcmpPred::Eq,
            Type::I64.ptr_to(),
            b.arg(0),
            Value::Const(Constant::Null),
        );
        let t = b.block("t");
        let e = b.block("e");
        b.cond_br(c, t, e);
        b.switch_to(t);
        b.ret(None);
        b.switch_to(e);
        b.ret(None);
        assert!(verify_one(b.finish()).is_ok());
    }
}
