//! Textual IR printer.
//!
//! The format round-trips with [`crate::parser`]; `noelle-tools` binaries use
//! it as the on-disk representation that the paper's tools exchange (a single
//! whole-program IR file with embedded metadata).

use crate::inst::{Callee, Inst, InstId, Terminator};
use crate::module::{BlockId, Function, Global, GlobalInit, Module};
use crate::value::{Constant, Value};
use std::collections::HashMap;
use std::fmt::Write;

/// Print a whole module in textual form.
pub fn print_module(m: &Module) -> String {
    let mut out = String::new();
    writeln!(out, "module \"{}\" {{", m.name).unwrap();
    for (k, v) in &m.metadata {
        writeln!(out, "meta \"{}\" = \"{}\"", escape(k), escape(v)).unwrap();
    }
    if !m.metadata.is_empty() {
        out.push('\n');
    }
    for g in m.globals() {
        out.push_str(&print_global(g));
        out.push('\n');
    }
    if !m.globals().is_empty() {
        out.push('\n');
    }
    for f in m.functions() {
        out.push_str(&print_function(m, f));
        out.push('\n');
    }
    out.push_str("}\n");
    out
}

fn print_global(g: &Global) -> String {
    let prefix = if g.is_const { "const global" } else { "global" };
    let init = match &g.init {
        GlobalInit::Zero => "zero".to_string(),
        GlobalInit::Scalar(c) => print_const(c),
        GlobalInit::Array(cs) => {
            let elems: Vec<String> = cs.iter().map(print_const).collect();
            format!("[{}]", elems.join(", "))
        }
    };
    format!("{} @{} : {} = {}", prefix, g.name, g.ty, init)
}

fn print_const(c: &Constant) -> String {
    match c {
        Constant::Int(v, w) => format!("{w} {v}"),
        Constant::Float(bits, w) => format!("{w} {:?}", f64::from_bits(*bits)),
        Constant::Null => "null".to_string(),
        Constant::Undef => "undef".to_string(),
    }
}

/// Unique printable names for blocks and instructions of a function.
pub(crate) struct Namer {
    pub blocks: HashMap<BlockId, String>,
    pub insts: HashMap<InstId, String>,
}

impl Namer {
    pub(crate) fn new(f: &Function) -> Namer {
        let mut used = std::collections::HashSet::new();
        let mut blocks = HashMap::new();
        for &b in f.block_order() {
            let base = {
                let n = &f.block(b).name;
                if n.is_empty() {
                    format!("bb{}", b.0)
                } else {
                    n.clone()
                }
            };
            let mut name = base.clone();
            let mut i = 1;
            while !used.insert(name.clone()) {
                name = format!("{base}.{i}");
                i += 1;
            }
            blocks.insert(b, name);
        }
        let mut used = std::collections::HashSet::new();
        for (n, _) in &f.params {
            used.insert(n.clone());
        }
        let mut insts = HashMap::new();
        for id in f.inst_ids() {
            if f.inst(id).result_type() == crate::types::Type::Void {
                continue;
            }
            let base = f
                .inst_data(id)
                .name
                .clone()
                .unwrap_or_else(|| format!("v{}", id.0));
            let mut name = base.clone();
            let mut i = 1;
            while !used.insert(name.clone()) {
                name = format!("{base}.{i}");
                i += 1;
            }
            insts.insert(id, name);
        }
        Namer { blocks, insts }
    }
}

/// Print one function (definition or declaration).
pub fn print_function(m: &Module, f: &Function) -> String {
    let mut out = String::new();
    let params: Vec<String> = f.params.iter().map(|(n, t)| format!("{t} %{n}")).collect();
    if f.is_declaration() {
        writeln!(
            out,
            "declare {} @{}({})",
            f.ret_ty,
            f.name,
            params.join(", ")
        )
        .unwrap();
        return out;
    }
    writeln!(
        out,
        "define {} @{}({}) {{",
        f.ret_ty,
        f.name,
        params.join(", ")
    )
    .unwrap();
    for (k, v) in &f.metadata {
        writeln!(out, "  fmeta \"{}\" = \"{}\"", escape(k), escape(v)).unwrap();
    }
    let namer = Namer::new(f);
    for &b in f.block_order() {
        writeln!(out, "{}:", namer.blocks[&b]).unwrap();
        for &id in &f.block(b).insts {
            let text = print_inst(m, f, &namer, id);
            let meta = f
                .inst_metadata
                .get(&id)
                .filter(|m| !m.is_empty())
                .map(|md| {
                    let kvs: Vec<String> = md
                        .iter()
                        .map(|(k, v)| format!("\"{}\"=\"{}\"", escape(k), escape(v)))
                        .collect();
                    format!(" !{{{}}}", kvs.join(", "))
                })
                .unwrap_or_default();
            writeln!(out, "  {text}{meta}").unwrap();
        }
    }
    writeln!(out, "}}").unwrap();
    out
}

fn print_value(m: &Module, f: &Function, namer: &Namer, v: Value) -> String {
    match v {
        Value::Inst(id) => format!(
            "%{}",
            namer
                .insts
                .get(&id)
                .cloned()
                .unwrap_or_else(|| format!("v{}", id.0))
        ),
        Value::Arg(i) => format!("%{}", f.params[i as usize].0),
        Value::Const(c) => print_const(&c),
        Value::Global(g) => format!("@{}", m.global(g).name),
        Value::Func(fid) => format!("@{}", m.func(fid).name),
    }
}

fn print_inst(m: &Module, f: &Function, namer: &Namer, id: InstId) -> String {
    let v = |val: Value| print_value(m, f, namer, val);
    let def = namer
        .insts
        .get(&id)
        .map(|n| format!("%{n} = "))
        .unwrap_or_default();
    match f.inst(id) {
        Inst::Alloca { ty, count } => format!("{def}alloca {ty}, {}", v(*count)),
        Inst::Load { ty, ptr } => format!("{def}load {ty}, {}", v(*ptr)),
        Inst::Store { val, ptr, ty } => format!("store {ty} {}, {}", v(*val), v(*ptr)),
        Inst::Gep {
            base,
            base_ty,
            indices,
        } => {
            let idx: Vec<String> = indices.iter().map(|i| v(*i)).collect();
            format!("{def}gep {base_ty}, {}, {}", v(*base), idx.join(", "))
        }
        Inst::Bin { op, ty, lhs, rhs } => {
            format!("{def}{} {ty} {}, {}", op.mnemonic(), v(*lhs), v(*rhs))
        }
        Inst::Icmp { pred, ty, lhs, rhs } => {
            format!(
                "{def}icmp {} {ty} {}, {}",
                pred.mnemonic(),
                v(*lhs),
                v(*rhs)
            )
        }
        Inst::Fcmp { pred, ty, lhs, rhs } => {
            format!(
                "{def}fcmp {} {ty} {}, {}",
                pred.mnemonic(),
                v(*lhs),
                v(*rhs)
            )
        }
        Inst::Cast { op, from, to, val } => {
            format!("{def}{} {from} {} to {to}", op.mnemonic(), v(*val))
        }
        Inst::Select {
            ty,
            cond,
            tval,
            fval,
        } => format!("{def}select {ty} {}, {}, {}", v(*cond), v(*tval), v(*fval)),
        Inst::Phi { ty, incomings } => {
            let inc: Vec<String> = incomings
                .iter()
                .map(|(b, val)| format!("[{}: {}]", namer.blocks[b], v(*val)))
                .collect();
            format!("{def}phi {ty} {}", inc.join(" "))
        }
        Inst::Call {
            callee,
            args,
            ret_ty,
        } => {
            let target = match callee {
                Callee::Direct(fid) => format!("@{}", m.func(*fid).name),
                Callee::Indirect(val) => v(*val),
            };
            let a: Vec<String> = args.iter().map(|x| v(*x)).collect();
            format!("{def}call {ret_ty} {target}({})", a.join(", "))
        }
        Inst::Term(t) => match t {
            Terminator::Ret(None) => "ret void".to_string(),
            Terminator::Ret(Some(val)) => format!("ret {}", v(*val)),
            Terminator::Br(b) => format!("br {}", namer.blocks[b]),
            Terminator::CondBr {
                cond,
                then_bb,
                else_bb,
            } => format!(
                "condbr {}, {}, {}",
                v(*cond),
                namer.blocks[then_bb],
                namer.blocks[else_bb]
            ),
            Terminator::Switch {
                value,
                default,
                cases,
            } => {
                let cs: Vec<String> = cases
                    .iter()
                    .map(|(c, b)| format!("[{c}: {}]", namer.blocks[b]))
                    .collect();
                format!(
                    "switch {}, {} {}",
                    v(*value),
                    namer.blocks[default],
                    cs.join(" ")
                )
            }
            Terminator::Unreachable => "unreachable".to_string(),
        },
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::{BinOp, IcmpPred};
    use crate::types::Type;

    #[test]
    fn prints_simple_module() {
        let mut m = Module::new("demo");
        m.metadata.insert("noelle.version".into(), "0.1".into());
        let mut b = FunctionBuilder::new("inc", vec![("x", Type::I64)], Type::I64);
        let entry = b.entry_block();
        b.switch_to(entry);
        let s = b.binop(BinOp::Add, Type::I64, b.arg(0), Value::const_i64(1));
        b.ret(Some(s));
        m.add_function(b.finish());
        let text = print_module(&m);
        assert!(text.contains("module \"demo\""));
        assert!(text.contains("meta \"noelle.version\" = \"0.1\""));
        assert!(text.contains("define i64 @inc(i64 %x)"));
        assert!(text.contains("add i64 %x, i64 1"));
        assert!(text.contains("ret %"));
    }

    #[test]
    fn prints_declaration() {
        let mut m = Module::new("d");
        m.declare_function("malloc", vec![Type::I64], Type::I8.ptr_to());
        let text = print_module(&m);
        assert!(text.contains("declare i8* @malloc(i64 %a0)"));
    }

    #[test]
    fn duplicate_names_are_made_unique() {
        let mut b = FunctionBuilder::new("f", vec![("c", Type::I1)], Type::I64);
        let entry = b.entry_block();
        let x1 = b.binop(
            BinOp::Add,
            Type::I64,
            Value::const_i64(1),
            Value::const_i64(2),
        );
        let x2 = b.binop(
            BinOp::Add,
            Type::I64,
            Value::const_i64(3),
            Value::const_i64(4),
        );
        b.func_mut().set_inst_name(x1.as_inst().unwrap(), "x");
        b.func_mut().set_inst_name(x2.as_inst().unwrap(), "x");
        let s = b.binop(BinOp::Add, Type::I64, x1, x2);
        b.ret(Some(s));
        let _ = entry;
        let mut m = Module::new("m");
        m.add_function(b.finish());
        let text = print_module(&m);
        assert!(text.contains("%x = "));
        assert!(text.contains("%x.1 = "));
    }

    #[test]
    fn prints_phi_and_branches() {
        let mut b = FunctionBuilder::new("f", vec![("n", Type::I64)], Type::I64);
        let entry = b.entry_block();
        let header = b.block("header");
        let exit = b.block("exit");
        b.switch_to(entry);
        b.br(header);
        b.switch_to(header);
        let i = b.phi(
            Type::I64,
            vec![(entry, Value::const_i64(0)), (header, Value::const_i64(1))],
        );
        let c = b.icmp(IcmpPred::Slt, Type::I64, i, b.arg(0));
        b.cond_br(c, header, exit);
        b.switch_to(exit);
        b.ret(Some(i));
        let mut m = Module::new("m");
        m.add_function(b.finish());
        let text = print_module(&m);
        assert!(text.contains("phi i64 [entry: i64 0] [header: i64 1]"));
        assert!(text.contains("condbr %"));
    }

    #[test]
    fn prints_metadata_suffix() {
        let mut b = FunctionBuilder::new("f", vec![], Type::I64);
        let entry = b.entry_block();
        b.switch_to(entry);
        let s = b.binop(
            BinOp::Add,
            Type::I64,
            Value::const_i64(1),
            Value::const_i64(2),
        );
        b.ret(Some(s));
        let mut f = b.finish();
        f.set_inst_metadata(s.as_inst().unwrap(), "noelle.id", "7");
        let mut m = Module::new("m");
        m.add_function(f);
        let text = print_module(&m);
        assert!(text.contains("!{\"noelle.id\"=\"7\"}"));
    }
}
