//! The IR type system.
//!
//! Types are structural and cheap to clone. Pointers are typed (as in LLVM 9,
//! which the paper builds on) because the alias analyses in `noelle-analysis`
//! use pointee types for their TBAA-style rules.

use std::fmt;
use std::sync::Arc;

/// Bit width of an integer type.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum IntWidth {
    /// 1-bit integer, the boolean type produced by comparisons.
    I1,
    /// 8-bit integer.
    I8,
    /// 16-bit integer.
    I16,
    /// 32-bit integer.
    I32,
    /// 64-bit integer.
    I64,
}

impl IntWidth {
    /// Number of bits of the width.
    pub fn bits(self) -> u32 {
        match self {
            IntWidth::I1 => 1,
            IntWidth::I8 => 8,
            IntWidth::I16 => 16,
            IntWidth::I32 => 32,
            IntWidth::I64 => 64,
        }
    }

    /// Number of bytes this width occupies in the interpreter's memory model.
    pub fn bytes(self) -> u64 {
        match self {
            IntWidth::I1 | IntWidth::I8 => 1,
            IntWidth::I16 => 2,
            IntWidth::I32 => 4,
            IntWidth::I64 => 8,
        }
    }

    /// Wrap a raw value to the two's-complement range of this width.
    pub fn truncate(self, v: i64) -> i64 {
        match self {
            IntWidth::I1 => v & 1,
            IntWidth::I8 => v as i8 as i64,
            IntWidth::I16 => v as i16 as i64,
            IntWidth::I32 => v as i32 as i64,
            IntWidth::I64 => v,
        }
    }
}

impl fmt::Display for IntWidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.bits())
    }
}

/// Bit width of a floating-point type.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum FloatWidth {
    /// IEEE-754 single precision.
    F32,
    /// IEEE-754 double precision.
    F64,
}

impl FloatWidth {
    /// Number of bytes this width occupies.
    pub fn bytes(self) -> u64 {
        match self {
            FloatWidth::F32 => 4,
            FloatWidth::F64 => 8,
        }
    }
}

impl fmt::Display for FloatWidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FloatWidth::F32 => write!(f, "f32"),
            FloatWidth::F64 => write!(f, "f64"),
        }
    }
}

/// The type of a function: parameter types plus return type.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct FuncType {
    /// Parameter types in order.
    pub params: Vec<Type>,
    /// Return type; [`Type::Void`] for procedures.
    pub ret: Type,
}

/// A structural IR type.
///
/// `Type` implements the common traits eagerly and is cheap to clone (compound
/// types share their element types behind `Arc`/`Box`).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Type {
    /// The empty type, only valid as a function return type.
    Void,
    /// Integer type of a given width.
    Int(IntWidth),
    /// Floating-point type of a given width.
    Float(FloatWidth),
    /// Typed pointer: `i64*` points to an `i64`.
    Ptr(Box<Type>),
    /// Fixed-size array `[n x elem]`.
    Array(Box<Type>, u64),
    /// Anonymous structural struct `{ t0, t1, ... }`.
    Struct(Arc<Vec<Type>>),
    /// Function type, used as the pointee of function pointers.
    Func(Arc<FuncType>),
}

impl Type {
    /// Shorthand for `Type::Int(IntWidth::I1)`.
    pub const I1: Type = Type::Int(IntWidth::I1);
    /// Shorthand for `Type::Int(IntWidth::I8)`.
    pub const I8: Type = Type::Int(IntWidth::I8);
    /// Shorthand for `Type::Int(IntWidth::I16)`.
    pub const I16: Type = Type::Int(IntWidth::I16);
    /// Shorthand for `Type::Int(IntWidth::I32)`.
    pub const I32: Type = Type::Int(IntWidth::I32);
    /// Shorthand for `Type::Int(IntWidth::I64)`.
    pub const I64: Type = Type::Int(IntWidth::I64);
    /// Shorthand for `Type::Float(FloatWidth::F32)`.
    pub const F32: Type = Type::Float(FloatWidth::F32);
    /// Shorthand for `Type::Float(FloatWidth::F64)`.
    pub const F64: Type = Type::Float(FloatWidth::F64);

    /// A pointer to `self`.
    pub fn ptr_to(&self) -> Type {
        Type::Ptr(Box::new(self.clone()))
    }

    /// An array of `n` copies of `self`.
    pub fn array_of(&self, n: u64) -> Type {
        Type::Array(Box::new(self.clone()), n)
    }

    /// True for integer types.
    pub fn is_int(&self) -> bool {
        matches!(self, Type::Int(_))
    }

    /// True for floating-point types.
    pub fn is_float(&self) -> bool {
        matches!(self, Type::Float(_))
    }

    /// True for pointer types.
    pub fn is_ptr(&self) -> bool {
        matches!(self, Type::Ptr(_))
    }

    /// True for any type a value can have (everything but `Void`).
    pub fn is_value_type(&self) -> bool {
        !matches!(self, Type::Void)
    }

    /// True for types that can be stored to / loaded from memory directly.
    pub fn is_scalar(&self) -> bool {
        matches!(self, Type::Int(_) | Type::Float(_) | Type::Ptr(_))
    }

    /// The pointee type if `self` is a pointer.
    pub fn pointee(&self) -> Option<&Type> {
        match self {
            Type::Ptr(p) => Some(p),
            _ => None,
        }
    }

    /// Size in bytes in the interpreter's memory model.
    ///
    /// Pointers are 8 bytes. Structs are laid out without padding (every
    /// scalar in this IR is naturally aligned at byte granularity, which keeps
    /// `getelementptr` arithmetic simple and deterministic).
    pub fn size_bytes(&self) -> u64 {
        match self {
            Type::Void => 0,
            Type::Int(w) => w.bytes(),
            Type::Float(w) => w.bytes(),
            Type::Ptr(_) | Type::Func(_) => 8,
            Type::Array(elem, n) => elem.size_bytes() * n,
            Type::Struct(fields) => fields.iter().map(Type::size_bytes).sum(),
        }
    }

    /// Byte offset of struct field `idx`, if `self` is a struct with that field.
    pub fn struct_field_offset(&self, idx: usize) -> Option<u64> {
        match self {
            Type::Struct(fields) if idx <= fields.len() => {
                Some(fields[..idx].iter().map(Type::size_bytes).sum())
            }
            _ => None,
        }
    }

    /// The type obtained by indexing into this aggregate (array element or
    /// struct field type).
    pub fn indexed(&self, idx: Option<usize>) -> Option<&Type> {
        match (self, idx) {
            (Type::Array(elem, _), _) => Some(elem),
            (Type::Struct(fields), Some(i)) => fields.get(i),
            _ => None,
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Void => write!(f, "void"),
            Type::Int(w) => write!(f, "{w}"),
            Type::Float(w) => write!(f, "{w}"),
            Type::Ptr(p) => write!(f, "{p}*"),
            Type::Array(elem, n) => write!(f, "[{n} x {elem}]"),
            Type::Struct(fields) => {
                write!(f, "{{")?;
                for (i, t) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, "}}")
            }
            Type::Func(ft) => {
                write!(f, "fn {}(", ft.ret)?;
                for (i, t) in ft.params.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_sizes() {
        assert_eq!(Type::I1.size_bytes(), 1);
        assert_eq!(Type::I8.size_bytes(), 1);
        assert_eq!(Type::I16.size_bytes(), 2);
        assert_eq!(Type::I32.size_bytes(), 4);
        assert_eq!(Type::I64.size_bytes(), 8);
        assert_eq!(Type::F32.size_bytes(), 4);
        assert_eq!(Type::F64.size_bytes(), 8);
        assert_eq!(Type::I64.ptr_to().size_bytes(), 8);
    }

    #[test]
    fn aggregate_sizes_and_offsets() {
        let s = Type::Struct(Arc::new(vec![Type::I32, Type::F64, Type::I8]));
        assert_eq!(s.size_bytes(), 13);
        assert_eq!(s.struct_field_offset(0), Some(0));
        assert_eq!(s.struct_field_offset(1), Some(4));
        assert_eq!(s.struct_field_offset(2), Some(12));
        assert_eq!(s.struct_field_offset(3), Some(13));
        assert_eq!(s.struct_field_offset(4), None);

        let a = Type::I32.array_of(10);
        assert_eq!(a.size_bytes(), 40);
        assert_eq!(a.indexed(None), Some(&Type::I32));
    }

    #[test]
    fn truncate_wraps_to_width() {
        assert_eq!(IntWidth::I8.truncate(300), 300i64 as i8 as i64);
        assert_eq!(IntWidth::I1.truncate(3), 1);
        assert_eq!(IntWidth::I32.truncate(i64::MAX), -1);
        assert_eq!(IntWidth::I64.truncate(i64::MIN), i64::MIN);
    }

    #[test]
    fn display_round_trips_visually() {
        assert_eq!(Type::I32.to_string(), "i32");
        assert_eq!(Type::F64.ptr_to().to_string(), "f64*");
        assert_eq!(Type::I8.array_of(4).to_string(), "[4 x i8]");
        let s = Type::Struct(Arc::new(vec![Type::I32, Type::I32]));
        assert_eq!(s.to_string(), "{i32, i32}");
    }

    #[test]
    fn predicates() {
        assert!(Type::I32.is_int());
        assert!(!Type::I32.is_float());
        assert!(Type::F32.is_float());
        assert!(Type::I32.ptr_to().is_ptr());
        assert!(Type::I32.is_scalar());
        assert!(!Type::I32.array_of(2).is_scalar());
        assert!(!Type::Void.is_value_type());
        assert_eq!(Type::I32.ptr_to().pointee(), Some(&Type::I32));
        assert_eq!(Type::I32.pointee(), None);
    }
}
