//! Textual IR parser; the inverse of [`crate::printer`].
//!
//! # Errors
//!
//! All entry points return [`ParseError`] with a line number and message on
//! malformed input.

use crate::inst::{BinOp, Callee, CastOp, FcmpPred, IcmpPred, Inst, InstId, Terminator};
use crate::module::{BlockId, Function, Global, GlobalInit, Module};
use crate::types::{FloatWidth, FuncType, IntWidth, Type};
use crate::value::{Constant, Value};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::sync::Arc;

/// A parse failure: message plus 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of the problem.
    pub message: String,
    /// 1-based line number where the problem was detected.
    pub line: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Local(String), // %name
    Sym(String),   // @name
    Str(String),
    Int(i64),
    Float(f64),
    Punct(char),
}

struct Lexer {
    toks: Vec<(Tok, usize)>,
    pos: usize,
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == '.' || c == '$'
}

fn lex(src: &str) -> Result<Vec<(Tok, usize)>, ParseError> {
    let mut toks = Vec::new();
    let mut line = 1usize;
    let mut chars = src.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                line += 1;
                chars.next();
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            ';' => {
                // Comment to end of line.
                while let Some(&c) = chars.peek() {
                    if c == '\n' {
                        break;
                    }
                    chars.next();
                }
            }
            '%' | '@' => {
                let kind = c;
                chars.next();
                let mut name = String::new();
                while let Some(&c) = chars.peek() {
                    if is_ident_char(c) {
                        name.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                if name.is_empty() {
                    return Err(ParseError {
                        message: format!("empty name after '{kind}'"),
                        line,
                    });
                }
                toks.push((
                    if kind == '%' {
                        Tok::Local(name)
                    } else {
                        Tok::Sym(name)
                    },
                    line,
                ));
            }
            '"' => {
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some('"') => break,
                        Some('\\') => match chars.next() {
                            Some('\\') => s.push('\\'),
                            Some('"') => s.push('"'),
                            Some('n') => s.push('\n'),
                            other => {
                                return Err(ParseError {
                                    message: format!("bad escape {other:?}"),
                                    line,
                                })
                            }
                        },
                        Some('\n') => {
                            return Err(ParseError {
                                message: "unterminated string".into(),
                                line,
                            })
                        }
                        Some(c) => s.push(c),
                        None => {
                            return Err(ParseError {
                                message: "unterminated string".into(),
                                line,
                            })
                        }
                    }
                }
                toks.push((Tok::Str(s), line));
            }
            c if c.is_ascii_digit() || c == '-' => {
                let neg = c == '-';
                if neg {
                    chars.next();
                    match chars.peek() {
                        Some(&d) if d.is_ascii_digit() => {}
                        Some(&'i') => {
                            // "-inf"
                            let mut word = String::new();
                            while let Some(&c) = chars.peek() {
                                if is_ident_char(c) {
                                    word.push(c);
                                    chars.next();
                                } else {
                                    break;
                                }
                            }
                            if word == "inf" {
                                toks.push((Tok::Float(f64::NEG_INFINITY), line));
                                continue;
                            }
                            return Err(ParseError {
                                message: format!("unexpected '-{word}'"),
                                line,
                            });
                        }
                        _ => {
                            return Err(ParseError {
                                message: "dangling '-'".into(),
                                line,
                            })
                        }
                    }
                }
                let mut num = String::new();
                if neg {
                    num.push('-');
                }
                let mut is_float = false;
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_digit() {
                        num.push(c);
                        chars.next();
                    } else if c == '.' {
                        // Only a float if a digit follows (names use dots too,
                        // but numbers never abut names).
                        is_float = true;
                        num.push(c);
                        chars.next();
                    } else if c == 'e' || c == 'E' {
                        is_float = true;
                        num.push(c);
                        chars.next();
                        if let Some(&s) = chars.peek() {
                            if s == '+' || s == '-' {
                                num.push(s);
                                chars.next();
                            }
                        }
                    } else {
                        break;
                    }
                }
                if is_float {
                    let v: f64 = num.parse().map_err(|_| ParseError {
                        message: format!("bad float literal '{num}'"),
                        line,
                    })?;
                    toks.push((Tok::Float(v), line));
                } else {
                    let v: i64 = num.parse().map_err(|_| ParseError {
                        message: format!("bad integer literal '{num}'"),
                        line,
                    })?;
                    toks.push((Tok::Int(v), line));
                }
            }
            c if is_ident_start(c) => {
                let mut name = String::new();
                while let Some(&c) = chars.peek() {
                    if is_ident_char(c) {
                        name.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                match name.as_str() {
                    "inf" => toks.push((Tok::Float(f64::INFINITY), line)),
                    "NaN" => toks.push((Tok::Float(f64::NAN), line)),
                    _ => toks.push((Tok::Ident(name), line)),
                }
            }
            '{' | '}' | '[' | ']' | '(' | ')' | ',' | ':' | '=' | '*' | '!' => {
                chars.next();
                toks.push((Tok::Punct(c), line));
            }
            other => {
                return Err(ParseError {
                    message: format!("unexpected character '{other}'"),
                    line,
                })
            }
        }
    }
    Ok(toks)
}

impl Lexer {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.toks.get(self.pos + 1).map(|(t, _)| t)
    }

    fn line(&self) -> usize {
        self.toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map(|(_, l)| *l)
            .unwrap_or(0)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(t, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            message: msg.into(),
            line: self.line(),
        }
    }

    fn expect_punct(&mut self, c: char) -> Result<(), ParseError> {
        match self.next() {
            Some(Tok::Punct(p)) if p == c => Ok(()),
            other => Err(self.err(format!("expected '{c}', found {other:?}"))),
        }
    }

    fn expect_ident(&mut self, word: &str) -> Result<(), ParseError> {
        match self.next() {
            Some(Tok::Ident(w)) if w == word => Ok(()),
            other => Err(self.err(format!("expected '{word}', found {other:?}"))),
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Tok::Ident(w)) => Ok(w),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Tok::Str(s)) => Ok(s),
            other => Err(self.err(format!("expected string, found {other:?}"))),
        }
    }

    fn int(&mut self) -> Result<i64, ParseError> {
        match self.next() {
            Some(Tok::Int(v)) => Ok(v),
            other => Err(self.err(format!("expected integer, found {other:?}"))),
        }
    }

    /// Line of the most recently consumed token (0 before any `next`).
    fn last_line(&self) -> usize {
        if self.pos == 0 {
            return 0;
        }
        self.toks.get(self.pos - 1).map(|(_, l)| *l).unwrap_or(0)
    }

    fn eat_punct(&mut self, c: char) -> bool {
        if self.peek() == Some(&Tok::Punct(c)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }
}

/// Symbolic (unresolved) value reference in the function AST.
#[derive(Debug, Clone)]
enum PValue {
    Local(String),
    Sym(String),
    Const(Constant),
}

#[derive(Debug, Clone)]
enum PCallee {
    Sym(String),
    Value(PValue),
}

/// An instruction with symbolic references, pre-resolution.
#[derive(Debug)]
struct PInst {
    name: Option<String>,
    kind: PInstKind,
    meta: Vec<(String, String)>,
}

#[derive(Debug)]
enum PInstKind {
    Alloca(Type, PValue),
    Load(Type, PValue),
    Store(Type, PValue, PValue),
    Gep(Type, PValue, Vec<PValue>),
    Bin(BinOp, Type, PValue, PValue),
    Icmp(IcmpPred, Type, PValue, PValue),
    Fcmp(FcmpPred, Type, PValue, PValue),
    Cast(CastOp, Type, PValue, Type),
    Select(Type, PValue, PValue, PValue),
    Phi(Type, Vec<(String, PValue)>),
    Call(Type, PCallee, Vec<PValue>),
    RetVoid,
    Ret(PValue),
    Br(String),
    CondBr(PValue, String, String),
    Switch(PValue, String, Vec<(i64, String)>),
    Unreachable,
}

#[derive(Debug)]
struct PBlock {
    label: String,
    insts: Vec<PInst>,
}

/// Source extent of one `define` in the module text: the 1-based line of
/// the `define` keyword through the line of the closing `}` of the body,
/// inclusive. The building block of the IDE diff-parser: a line edit that
/// falls inside exactly one span can be re-parsed as a single function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncSpan {
    /// Function name (without the `@`).
    pub name: String,
    /// 1-based line of the `define` keyword.
    pub start_line: usize,
    /// 1-based line of the `}` closing the body.
    pub end_line: usize,
}

/// Parse a whole module from text.
///
/// # Errors
/// Returns [`ParseError`] on malformed input or unresolved references.
pub fn parse_module(src: &str) -> Result<Module, ParseError> {
    parse_module_spanned(src).map(|(m, _)| m)
}

/// Parse a whole module, also reporting the source span of every `define`.
///
/// Spans cover function *definitions* only (declarations and globals are
/// single-line and never need incremental reparse). Span order matches
/// definition order, i.e. `FuncId` order restricted to defined functions.
///
/// # Errors
/// Returns [`ParseError`] on malformed input or unresolved references.
pub fn parse_module_spanned(src: &str) -> Result<(Module, Vec<FuncSpan>), ParseError> {
    let toks = lex(src)?;
    let mut lx = Lexer { toks, pos: 0 };
    lx.expect_ident("module")?;
    let name = lx.string()?;
    lx.expect_punct('{')?;
    let mut module = Module::new(name);

    // Function bodies are resolved after all symbols are known, so indirect
    // references to later functions work.
    type PendingFn = (
        String,
        Vec<(String, Type)>,
        Type,
        Vec<PBlock>,
        Vec<(String, String)>,
    );
    let mut pending: Vec<PendingFn> = Vec::new();
    let mut spans: Vec<FuncSpan> = Vec::new();

    loop {
        match lx.peek() {
            Some(Tok::Punct('}')) => {
                lx.next();
                break;
            }
            Some(Tok::Ident(w)) if w == "meta" => {
                lx.next();
                let k = lx.string()?;
                lx.expect_punct('=')?;
                let v = lx.string()?;
                module.metadata.insert(k, v);
            }
            Some(Tok::Ident(w)) if w == "global" || w == "const" => {
                let is_const = w == "const";
                lx.next();
                if is_const {
                    lx.expect_ident("global")?;
                }
                let gname = match lx.next() {
                    Some(Tok::Sym(s)) => s,
                    other => return Err(lx.err(format!("expected @name, found {other:?}"))),
                };
                lx.expect_punct(':')?;
                let ty = parse_type(&mut lx)?;
                lx.expect_punct('=')?;
                let init = parse_global_init(&mut lx)?;
                module.add_global(Global {
                    name: gname,
                    ty,
                    init,
                    is_const,
                });
            }
            Some(Tok::Ident(w)) if w == "declare" => {
                lx.next();
                let ret = parse_type(&mut lx)?;
                let fname = match lx.next() {
                    Some(Tok::Sym(s)) => s,
                    other => return Err(lx.err(format!("expected @name, found {other:?}"))),
                };
                let params = parse_params(&mut lx)?;
                module.add_function(Function::new(fname, params, ret));
            }
            Some(Tok::Ident(w)) if w == "define" => {
                let start_line = lx.line();
                lx.next();
                let ret = parse_type(&mut lx)?;
                let fname = match lx.next() {
                    Some(Tok::Sym(s)) => s,
                    other => return Err(lx.err(format!("expected @name, found {other:?}"))),
                };
                let params = parse_params(&mut lx)?;
                lx.expect_punct('{')?;
                let mut fmeta = Vec::new();
                while let Some(Tok::Ident(w)) = lx.peek() {
                    if w != "fmeta" {
                        break;
                    }
                    lx.next();
                    let k = lx.string()?;
                    lx.expect_punct('=')?;
                    let v = lx.string()?;
                    fmeta.push((k, v));
                }
                let blocks = parse_blocks(&mut lx)?;
                // `parse_blocks` consumed the closing '}' as its last token.
                spans.push(FuncSpan {
                    name: fname.clone(),
                    start_line,
                    end_line: lx.last_line(),
                });
                // Reserve the function slot now so FuncIds match definition
                // order; the body is materialized later.
                module.add_function(Function::new(fname.clone(), params.clone(), ret.clone()));
                pending.push((fname, params, ret, blocks, fmeta));
            }
            other => return Err(lx.err(format!("unexpected token {other:?}"))),
        }
    }

    for (fname, params, ret, blocks, fmeta) in pending {
        let f = materialize_function(&module, &fname, params, ret, blocks, fmeta)?;
        let fid = module
            .func_id_by_name(&fname)
            .expect("reserved function slot");
        *module.func_mut(fid) = f;
    }
    Ok((module, spans))
}

/// Parse one `define ... { ... }` snippet against an existing module's
/// symbol table.
///
/// The incremental half of the IDE diff-parser: when an edit is confined to
/// one function's [`FuncSpan`], only that snippet is re-lexed and re-parsed;
/// symbols (`@globals`, called functions) resolve against `module`, so any
/// reference valid in the full text is valid here. The returned function is
/// *not* installed; the caller swaps it in via its editing API.
///
/// # Errors
/// Returns [`ParseError`] on malformed input, unresolved references, or
/// trailing tokens after the closing `}`.
pub fn parse_function_text(module: &Module, src: &str) -> Result<Function, ParseError> {
    let toks = lex(src)?;
    let mut lx = Lexer { toks, pos: 0 };
    lx.expect_ident("define")?;
    let ret = parse_type(&mut lx)?;
    let fname = match lx.next() {
        Some(Tok::Sym(s)) => s,
        other => return Err(lx.err(format!("expected @name, found {other:?}"))),
    };
    let params = parse_params(&mut lx)?;
    lx.expect_punct('{')?;
    let mut fmeta = Vec::new();
    while let Some(Tok::Ident(w)) = lx.peek() {
        if w != "fmeta" {
            break;
        }
        lx.next();
        let k = lx.string()?;
        lx.expect_punct('=')?;
        let v = lx.string()?;
        fmeta.push((k, v));
    }
    let blocks = parse_blocks(&mut lx)?;
    if let Some(t) = lx.peek() {
        return Err(lx.err(format!("trailing input after function body: {t:?}")));
    }
    materialize_function(module, &fname, params, ret, blocks, fmeta)
}

fn parse_params(lx: &mut Lexer) -> Result<Vec<(String, Type)>, ParseError> {
    lx.expect_punct('(')?;
    let mut params = Vec::new();
    if lx.eat_punct(')') {
        return Ok(params);
    }
    loop {
        let ty = parse_type(lx)?;
        let name = match lx.next() {
            Some(Tok::Local(n)) => n,
            other => return Err(lx.err(format!("expected %param, found {other:?}"))),
        };
        params.push((name, ty));
        if lx.eat_punct(')') {
            break;
        }
        lx.expect_punct(',')?;
    }
    Ok(params)
}

fn parse_global_init(lx: &mut Lexer) -> Result<GlobalInit, ParseError> {
    match lx.peek() {
        Some(Tok::Ident(w)) if w == "zero" => {
            lx.next();
            Ok(GlobalInit::Zero)
        }
        Some(Tok::Punct('[')) => {
            lx.next();
            let mut elems = Vec::new();
            if lx.eat_punct(']') {
                return Ok(GlobalInit::Array(elems));
            }
            loop {
                elems.push(parse_constant(lx)?);
                if lx.eat_punct(']') {
                    break;
                }
                lx.expect_punct(',')?;
            }
            Ok(GlobalInit::Array(elems))
        }
        _ => Ok(GlobalInit::Scalar(parse_constant(lx)?)),
    }
}

/// Parse a type, including pointer suffixes.
fn parse_type(lx: &mut Lexer) -> Result<Type, ParseError> {
    let mut ty = match lx.next() {
        Some(Tok::Ident(w)) => match w.as_str() {
            "void" => Type::Void,
            "i1" => Type::I1,
            "i8" => Type::I8,
            "i16" => Type::I16,
            "i32" => Type::I32,
            "i64" => Type::I64,
            "f32" => Type::F32,
            "f64" => Type::F64,
            "fn" => {
                let ret = parse_type(lx)?;
                lx.expect_punct('(')?;
                let mut params = Vec::new();
                if !lx.eat_punct(')') {
                    loop {
                        params.push(parse_type(lx)?);
                        if lx.eat_punct(')') {
                            break;
                        }
                        lx.expect_punct(',')?;
                    }
                }
                Type::Func(Arc::new(FuncType { params, ret }))
            }
            other => return Err(lx.err(format!("unknown type '{other}'"))),
        },
        Some(Tok::Punct('[')) => {
            let n = lx.int()?;
            if n < 0 {
                return Err(lx.err("negative array length"));
            }
            lx.expect_ident("x")?;
            let elem = parse_type(lx)?;
            lx.expect_punct(']')?;
            Type::Array(Box::new(elem), n as u64)
        }
        Some(Tok::Punct('{')) => {
            let mut fields = Vec::new();
            if !lx.eat_punct('}') {
                loop {
                    fields.push(parse_type(lx)?);
                    if lx.eat_punct('}') {
                        break;
                    }
                    lx.expect_punct(',')?;
                }
            }
            Type::Struct(Arc::new(fields))
        }
        other => return Err(lx.err(format!("expected type, found {other:?}"))),
    };
    while lx.eat_punct('*') {
        ty = ty.ptr_to();
    }
    Ok(ty)
}

fn int_width_of(ty: &Type) -> Option<IntWidth> {
    match ty {
        Type::Int(w) => Some(*w),
        _ => None,
    }
}

fn float_width_of(ty: &Type) -> Option<FloatWidth> {
    match ty {
        Type::Float(w) => Some(*w),
        _ => None,
    }
}

/// Parse a typed constant: `i64 5`, `f64 1.5`, `null`, `undef`.
fn parse_constant(lx: &mut Lexer) -> Result<Constant, ParseError> {
    match lx.peek() {
        Some(Tok::Ident(w)) if w == "null" => {
            lx.next();
            Ok(Constant::Null)
        }
        Some(Tok::Ident(w)) if w == "undef" => {
            lx.next();
            Ok(Constant::Undef)
        }
        _ => {
            let ty = parse_type(lx)?;
            if let Some(w) = int_width_of(&ty) {
                let v = lx.int()?;
                Ok(Constant::Int(v, w))
            } else if let Some(w) = float_width_of(&ty) {
                let v = match lx.next() {
                    Some(Tok::Float(v)) => v,
                    Some(Tok::Int(v)) => v as f64,
                    other => return Err(lx.err(format!("expected float, found {other:?}"))),
                };
                Ok(Constant::Float(v.to_bits(), w))
            } else {
                Err(lx.err(format!("constants of type {ty} are not supported")))
            }
        }
    }
}

/// Parse a value: local, symbol, or typed constant.
fn parse_pvalue(lx: &mut Lexer) -> Result<PValue, ParseError> {
    match lx.peek() {
        Some(Tok::Local(_)) => {
            if let Some(Tok::Local(n)) = lx.next() {
                Ok(PValue::Local(n))
            } else {
                unreachable!()
            }
        }
        Some(Tok::Sym(_)) => {
            if let Some(Tok::Sym(n)) = lx.next() {
                Ok(PValue::Sym(n))
            } else {
                unreachable!()
            }
        }
        _ => Ok(PValue::Const(parse_constant(lx)?)),
    }
}

fn parse_blocks(lx: &mut Lexer) -> Result<Vec<PBlock>, ParseError> {
    let mut blocks: Vec<PBlock> = Vec::new();
    loop {
        match lx.peek() {
            Some(Tok::Punct('}')) => {
                lx.next();
                break;
            }
            Some(Tok::Ident(_)) if lx.peek2() == Some(&Tok::Punct(':')) => {
                let label = lx.ident()?;
                lx.expect_punct(':')?;
                blocks.push(PBlock {
                    label,
                    insts: Vec::new(),
                });
            }
            Some(_) => {
                let inst = parse_pinst(lx)?;
                match blocks.last_mut() {
                    Some(b) => b.insts.push(inst),
                    None => return Err(lx.err("instruction before first block label")),
                }
            }
            None => return Err(lx.err("unexpected end of input in function body")),
        }
    }
    if blocks.is_empty() {
        return Err(lx.err("function body has no blocks"));
    }
    Ok(blocks)
}

fn parse_label(lx: &mut Lexer) -> Result<String, ParseError> {
    lx.ident()
}

fn parse_pinst(lx: &mut Lexer) -> Result<PInst, ParseError> {
    let name = if let Some(Tok::Local(_)) = lx.peek() {
        if let Some(Tok::Local(n)) = lx.next() {
            lx.expect_punct('=')?;
            Some(n)
        } else {
            unreachable!()
        }
    } else {
        None
    };
    let op = lx.ident()?;
    let kind = match op.as_str() {
        "alloca" => {
            let ty = parse_type(lx)?;
            lx.expect_punct(',')?;
            let count = parse_pvalue(lx)?;
            PInstKind::Alloca(ty, count)
        }
        "load" => {
            let ty = parse_type(lx)?;
            lx.expect_punct(',')?;
            let ptr = parse_pvalue(lx)?;
            PInstKind::Load(ty, ptr)
        }
        "store" => {
            let ty = parse_type(lx)?;
            let val = parse_pvalue(lx)?;
            lx.expect_punct(',')?;
            let ptr = parse_pvalue(lx)?;
            PInstKind::Store(ty, val, ptr)
        }
        "gep" => {
            let ty = parse_type(lx)?;
            lx.expect_punct(',')?;
            let base = parse_pvalue(lx)?;
            let mut indices = Vec::new();
            while lx.eat_punct(',') {
                indices.push(parse_pvalue(lx)?);
            }
            if indices.is_empty() {
                return Err(lx.err("gep requires at least one index"));
            }
            PInstKind::Gep(ty, base, indices)
        }
        "icmp" => {
            let pred = parse_icmp_pred(lx)?;
            let ty = parse_type(lx)?;
            let lhs = parse_pvalue(lx)?;
            lx.expect_punct(',')?;
            let rhs = parse_pvalue(lx)?;
            PInstKind::Icmp(pred, ty, lhs, rhs)
        }
        "fcmp" => {
            let pred = parse_fcmp_pred(lx)?;
            let ty = parse_type(lx)?;
            let lhs = parse_pvalue(lx)?;
            lx.expect_punct(',')?;
            let rhs = parse_pvalue(lx)?;
            PInstKind::Fcmp(pred, ty, lhs, rhs)
        }
        "select" => {
            let ty = parse_type(lx)?;
            let cond = parse_pvalue(lx)?;
            lx.expect_punct(',')?;
            let t = parse_pvalue(lx)?;
            lx.expect_punct(',')?;
            let f = parse_pvalue(lx)?;
            PInstKind::Select(ty, cond, t, f)
        }
        "phi" => {
            let ty = parse_type(lx)?;
            let mut incomings = Vec::new();
            while lx.eat_punct('[') {
                let label = parse_label(lx)?;
                lx.expect_punct(':')?;
                let v = parse_pvalue(lx)?;
                lx.expect_punct(']')?;
                incomings.push((label, v));
            }
            PInstKind::Phi(ty, incomings)
        }
        "call" => {
            let ret = parse_type(lx)?;
            let callee = match lx.peek() {
                Some(Tok::Sym(_)) => {
                    if let Some(Tok::Sym(s)) = lx.next() {
                        PCallee::Sym(s)
                    } else {
                        unreachable!()
                    }
                }
                _ => PCallee::Value(parse_pvalue(lx)?),
            };
            lx.expect_punct('(')?;
            let mut args = Vec::new();
            if !lx.eat_punct(')') {
                loop {
                    args.push(parse_pvalue(lx)?);
                    if lx.eat_punct(')') {
                        break;
                    }
                    lx.expect_punct(',')?;
                }
            }
            PInstKind::Call(ret, callee, args)
        }
        "ret" => {
            if let Some(Tok::Ident(w)) = lx.peek() {
                if w == "void" {
                    lx.next();
                    PInstKind::RetVoid
                } else {
                    PInstKind::Ret(parse_pvalue(lx)?)
                }
            } else {
                PInstKind::Ret(parse_pvalue(lx)?)
            }
        }
        "br" => PInstKind::Br(parse_label(lx)?),
        "condbr" => {
            let c = parse_pvalue(lx)?;
            lx.expect_punct(',')?;
            let t = parse_label(lx)?;
            lx.expect_punct(',')?;
            let e = parse_label(lx)?;
            PInstKind::CondBr(c, t, e)
        }
        "switch" => {
            let v = parse_pvalue(lx)?;
            lx.expect_punct(',')?;
            let default = parse_label(lx)?;
            let mut cases = Vec::new();
            while lx.eat_punct('[') {
                let c = lx.int()?;
                lx.expect_punct(':')?;
                let l = parse_label(lx)?;
                lx.expect_punct(']')?;
                cases.push((c, l));
            }
            PInstKind::Switch(v, default, cases)
        }
        "unreachable" => PInstKind::Unreachable,
        mn => {
            // Binary operation or cast.
            if let Some(&binop) = BinOp::all().iter().find(|b| b.mnemonic() == mn) {
                let ty = parse_type(lx)?;
                let lhs = parse_pvalue(lx)?;
                lx.expect_punct(',')?;
                let rhs = parse_pvalue(lx)?;
                PInstKind::Bin(binop, ty, lhs, rhs)
            } else if let Some(castop) = cast_of(mn) {
                let from = parse_type(lx)?;
                let v = parse_pvalue(lx)?;
                lx.expect_ident("to")?;
                let to = parse_type(lx)?;
                PInstKind::Cast(castop, from, v, to)
            } else {
                return Err(lx.err(format!("unknown opcode '{mn}'")));
            }
        }
    };
    // Optional metadata suffix: !{"k"="v", ...}
    let mut meta = Vec::new();
    if lx.eat_punct('!') {
        lx.expect_punct('{')?;
        if !lx.eat_punct('}') {
            loop {
                let k = lx.string()?;
                lx.expect_punct('=')?;
                let v = lx.string()?;
                meta.push((k, v));
                if lx.eat_punct('}') {
                    break;
                }
                lx.expect_punct(',')?;
            }
        }
    }
    Ok(PInst { name, kind, meta })
}

fn cast_of(mn: &str) -> Option<CastOp> {
    Some(match mn {
        "zext" => CastOp::Zext,
        "sext" => CastOp::Sext,
        "trunc" => CastOp::Trunc,
        "bitcast" => CastOp::Bitcast,
        "ptrtoint" => CastOp::PtrToInt,
        "inttoptr" => CastOp::IntToPtr,
        "sitofp" => CastOp::SiToFp,
        "fptosi" => CastOp::FpToSi,
        "fpext" => CastOp::FpExt,
        "fptrunc" => CastOp::FpTrunc,
        _ => return None,
    })
}

fn parse_icmp_pred(lx: &mut Lexer) -> Result<IcmpPred, ParseError> {
    let w = lx.ident()?;
    Ok(match w.as_str() {
        "eq" => IcmpPred::Eq,
        "ne" => IcmpPred::Ne,
        "slt" => IcmpPred::Slt,
        "sle" => IcmpPred::Sle,
        "sgt" => IcmpPred::Sgt,
        "sge" => IcmpPred::Sge,
        "ult" => IcmpPred::Ult,
        "ule" => IcmpPred::Ule,
        "ugt" => IcmpPred::Ugt,
        "uge" => IcmpPred::Uge,
        other => return Err(lx.err(format!("unknown icmp predicate '{other}'"))),
    })
}

fn parse_fcmp_pred(lx: &mut Lexer) -> Result<FcmpPred, ParseError> {
    let w = lx.ident()?;
    Ok(match w.as_str() {
        "oeq" => FcmpPred::Oeq,
        "one" => FcmpPred::One,
        "olt" => FcmpPred::Olt,
        "ole" => FcmpPred::Ole,
        "ogt" => FcmpPred::Ogt,
        "oge" => FcmpPred::Oge,
        other => return Err(lx.err(format!("unknown fcmp predicate '{other}'"))),
    })
}

fn materialize_function(
    module: &Module,
    fname: &str,
    params: Vec<(String, Type)>,
    ret: Type,
    blocks: Vec<PBlock>,
    fmeta: Vec<(String, String)>,
) -> Result<Function, ParseError> {
    let mut f = Function::new(fname, params, ret);
    for (k, v) in fmeta {
        f.metadata.insert(k, v);
    }

    let perr = |msg: String| ParseError {
        message: msg,
        line: 0,
    };

    // Pass 1: labels and SSA names.
    let mut label_map: HashMap<String, BlockId> = HashMap::new();
    for pb in &blocks {
        let id = f.add_block(pb.label.clone());
        if label_map.insert(pb.label.clone(), id).is_some() {
            return Err(perr(format!("duplicate block label '{}'", pb.label)));
        }
    }
    let mut name_map: HashMap<String, Value> = HashMap::new();
    for (i, (pname, _)) in f.params.iter().enumerate() {
        name_map.insert(pname.clone(), Value::Arg(i as u32));
    }
    // Instruction ids are assigned in creation order, which will match
    // textual order, so they can be pre-computed for forward references.
    let mut next_id = 0u32;
    for pb in &blocks {
        for pi in &pb.insts {
            let id = InstId(next_id);
            next_id += 1;
            if let Some(n) = &pi.name {
                if name_map.insert(n.clone(), Value::Inst(id)).is_some() {
                    return Err(perr(format!("duplicate SSA name '%{n}' in @{fname}")));
                }
            }
        }
    }

    let resolve = |pv: &PValue| -> Result<Value, ParseError> {
        match pv {
            PValue::Const(c) => Ok(Value::Const(*c)),
            PValue::Local(n) => name_map
                .get(n)
                .copied()
                .ok_or_else(|| perr(format!("unknown value '%{n}' in @{fname}"))),
            PValue::Sym(n) => {
                if let Some(g) = module.global_id_by_name(n) {
                    Ok(Value::Global(g))
                } else if let Some(fid) = module.func_id_by_name(n) {
                    Ok(Value::Func(fid))
                } else {
                    Err(perr(format!("unknown symbol '@{n}'")))
                }
            }
        }
    };
    let resolve_label = |l: &String| -> Result<BlockId, ParseError> {
        label_map
            .get(l)
            .copied()
            .ok_or_else(|| perr(format!("unknown label '{l}' in @{fname}")))
    };

    // Pass 2: materialize.
    for (bi, pb) in blocks.iter().enumerate() {
        let bid = BlockId(bi as u32);
        for pi in &pb.insts {
            let inst = match &pi.kind {
                PInstKind::Alloca(ty, count) => Inst::Alloca {
                    ty: ty.clone(),
                    count: resolve(count)?,
                },
                PInstKind::Load(ty, ptr) => Inst::Load {
                    ty: ty.clone(),
                    ptr: resolve(ptr)?,
                },
                PInstKind::Store(ty, val, ptr) => Inst::Store {
                    ty: ty.clone(),
                    val: resolve(val)?,
                    ptr: resolve(ptr)?,
                },
                PInstKind::Gep(ty, base, idx) => Inst::Gep {
                    base: resolve(base)?,
                    base_ty: ty.clone(),
                    indices: idx.iter().map(&resolve).collect::<Result<_, _>>()?,
                },
                PInstKind::Bin(op, ty, l, r) => Inst::Bin {
                    op: *op,
                    ty: ty.clone(),
                    lhs: resolve(l)?,
                    rhs: resolve(r)?,
                },
                PInstKind::Icmp(p, ty, l, r) => Inst::Icmp {
                    pred: *p,
                    ty: ty.clone(),
                    lhs: resolve(l)?,
                    rhs: resolve(r)?,
                },
                PInstKind::Fcmp(p, ty, l, r) => Inst::Fcmp {
                    pred: *p,
                    ty: ty.clone(),
                    lhs: resolve(l)?,
                    rhs: resolve(r)?,
                },
                PInstKind::Cast(op, from, v, to) => Inst::Cast {
                    op: *op,
                    from: from.clone(),
                    to: to.clone(),
                    val: resolve(v)?,
                },
                PInstKind::Select(ty, c, t, e) => Inst::Select {
                    ty: ty.clone(),
                    cond: resolve(c)?,
                    tval: resolve(t)?,
                    fval: resolve(e)?,
                },
                PInstKind::Phi(ty, incs) => Inst::Phi {
                    ty: ty.clone(),
                    incomings: incs
                        .iter()
                        .map(|(l, v)| Ok((resolve_label(l)?, resolve(v)?)))
                        .collect::<Result<_, ParseError>>()?,
                },
                PInstKind::Call(ret_ty, callee, args) => {
                    let callee = match callee {
                        PCallee::Sym(s) => {
                            let fid = module
                                .func_id_by_name(s)
                                .ok_or_else(|| perr(format!("call to unknown function '@{s}'")))?;
                            Callee::Direct(fid)
                        }
                        PCallee::Value(v) => Callee::Indirect(resolve(v)?),
                    };
                    Inst::Call {
                        callee,
                        args: args.iter().map(&resolve).collect::<Result<_, _>>()?,
                        ret_ty: ret_ty.clone(),
                    }
                }
                PInstKind::RetVoid => Inst::Term(Terminator::Ret(None)),
                PInstKind::Ret(v) => Inst::Term(Terminator::Ret(Some(resolve(v)?))),
                PInstKind::Br(l) => Inst::Term(Terminator::Br(resolve_label(l)?)),
                PInstKind::CondBr(c, t, e) => Inst::Term(Terminator::CondBr {
                    cond: resolve(c)?,
                    then_bb: resolve_label(t)?,
                    else_bb: resolve_label(e)?,
                }),
                PInstKind::Switch(v, d, cases) => Inst::Term(Terminator::Switch {
                    value: resolve(v)?,
                    default: resolve_label(d)?,
                    cases: cases
                        .iter()
                        .map(|(c, l)| Ok((*c, resolve_label(l)?)))
                        .collect::<Result<_, ParseError>>()?,
                }),
                PInstKind::Unreachable => Inst::Term(Terminator::Unreachable),
            };
            let id = f.append_inst(bid, inst);
            if let Some(n) = &pi.name {
                f.set_inst_name(id, n.clone());
            }
            for (k, v) in &pi.meta {
                f.set_inst_metadata(id, k.clone(), v.clone());
            }
        }
    }
    Ok(f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::printer::print_module;

    const LOOP_SRC: &str = r#"
module "demo" {
meta "k" = "v"

global @counter : i64 = i64 0
const global @table : [4 x i64] = [i64 1, i64 2, i64 3, i64 4]

declare i8* @malloc(i64 %n)

define i64 @sum(i64 %n) {
entry:
  br header
header:
  %i = phi i64 [entry: i64 0] [body: %i2]
  %s = phi i64 [entry: i64 0] [body: %s2]
  %c = icmp slt i64 %i, %n
  condbr %c, body, exit
body:
  %s2 = add i64 %s, %i
  %i2 = add i64 %i, i64 1
  br header
exit:
  ret %s
}
}
"#;

    #[test]
    fn parses_loop_module() {
        let m = parse_module(LOOP_SRC).expect("parses");
        assert_eq!(m.metadata.get("k").map(String::as_str), Some("v"));
        assert_eq!(m.globals().len(), 2);
        assert!(m.globals()[1].is_const);
        let sum = m.func_by_name("sum").unwrap();
        assert_eq!(sum.num_insts(), 9);
        crate::verifier::verify_module(&m).expect("verifies");
    }

    #[test]
    fn round_trips_through_printer() {
        let m1 = parse_module(LOOP_SRC).unwrap();
        let text = print_module(&m1);
        let m2 = parse_module(&text).expect("reparses");
        assert_eq!(print_module(&m2), text);
    }

    #[test]
    fn parses_calls_direct_and_indirect() {
        let src = r#"
module "c" {
define i64 @id(i64 %x) {
entry:
  ret %x
}
define i64 @caller(i64 %x) {
entry:
  %a = call i64 @id(%x)
  %fp = bitcast fn i64(i64)* @id to fn i64(i64)*
  %b = call i64 %fp(%a)
  ret %b
}
}
"#;
        let m = parse_module(src).expect("parses");
        let caller = m.func_by_name("caller").unwrap();
        let calls: Vec<_> = caller
            .inst_ids()
            .into_iter()
            .filter(|&i| matches!(caller.inst(i), Inst::Call { .. }))
            .collect();
        assert_eq!(calls.len(), 2);
        assert!(matches!(
            caller.inst(calls[0]),
            Inst::Call {
                callee: Callee::Direct(_),
                ..
            }
        ));
        assert!(matches!(
            caller.inst(calls[1]),
            Inst::Call {
                callee: Callee::Indirect(_),
                ..
            }
        ));
    }

    #[test]
    fn parses_gep_store_switch_and_metadata() {
        let src = r#"
module "g" {
global @buf : [8 x i64] = zero
define void @f(i64 %i) {
entry:
  %p = gep [8 x i64], @buf, i64 0, %i !{"noelle.id"="3"}
  store i64 i64 7, %p
  switch %i, done [1: one] [2: two]
one:
  br done
two:
  br done
done:
  ret void
}
}
"#;
        let m = parse_module(src).expect("parses");
        let f = m.func_by_name("f").unwrap();
        let gep = f.inst_ids()[0];
        assert_eq!(f.inst_metadata(gep, "noelle.id"), Some("3"));
        assert!(matches!(f.inst(gep), Inst::Gep { indices, .. } if indices.len() == 2));
        crate::verifier::verify_module(&m).expect("verifies");
    }

    #[test]
    fn rejects_unknown_value() {
        let src = r#"
module "b" {
define i64 @f() {
entry:
  ret %nope
}
}
"#;
        let err = parse_module(src).unwrap_err();
        assert!(err.message.contains("unknown value"));
    }

    #[test]
    fn rejects_duplicate_labels() {
        let src = r#"
module "b" {
define void @f() {
entry:
  br entry
entry:
  ret void
}
}
"#;
        let err = parse_module(src).unwrap_err();
        assert!(err.message.contains("duplicate block label"));
    }

    #[test]
    fn rejects_unknown_opcode_with_line() {
        let src = "module \"b\" {\ndefine void @f() {\nentry:\n  frobnicate i64 %x\n}\n}\n";
        let err = parse_module(src).unwrap_err();
        assert!(err.message.contains("unknown opcode"));
        assert_eq!(err.line, 4);
    }

    #[test]
    fn spans_cover_each_define() {
        let (m, spans) = parse_module_spanned(LOOP_SRC).expect("parses");
        assert_eq!(spans.len(), 1);
        let s = &spans[0];
        assert_eq!(s.name, "sum");
        let lines: Vec<&str> = LOOP_SRC.split('\n').collect();
        assert!(lines[s.start_line - 1].starts_with("define i64 @sum"));
        assert_eq!(lines[s.end_line - 1].trim(), "}");
        assert!(s.start_line < s.end_line);
        // Re-parsing exactly the spanned lines yields the same function.
        let snippet = lines[s.start_line - 1..s.end_line].join("\n");
        let f = parse_function_text(&m, &snippet).expect("snippet parses");
        let fid = m.func_id_by_name("sum").unwrap();
        assert_eq!(
            f.content_fingerprint(),
            m.func(fid).content_fingerprint(),
            "snippet reparse is content-identical"
        );
    }

    #[test]
    fn function_text_resolves_module_symbols_and_rejects_trailing() {
        let m = parse_module(LOOP_SRC).unwrap();
        // References @counter (a module global) from a fresh snippet.
        let f = parse_function_text(
            &m,
            "define i64 @peek() {\nentry:\n  %v = load i64, @counter\n  ret %v\n}",
        )
        .expect("resolves global");
        assert_eq!(f.name, "peek");
        let err = parse_function_text(&m, "define void @f() {\nentry:\n  ret void\n}\ngarbage")
            .unwrap_err();
        assert!(err.message.contains("trailing input"));
        let err = parse_function_text(&m, "define i64 @f() {\nentry:\n  ret %gone\n}").unwrap_err();
        assert!(err.message.contains("unknown value"));
    }

    #[test]
    fn parses_float_specials() {
        let src = r#"
module "f" {
define f64 @f() {
entry:
  %a = fadd f64 f64 1.5, f64 -2.25
  %b = fmax f64 %a, f64 inf
  %c = fmin f64 %b, f64 -inf
  ret %c
}
}
"#;
        let m = parse_module(src).expect("parses");
        let text = print_module(&m);
        let m2 = parse_module(&text).expect("round trips");
        assert_eq!(print_module(&m2), text);
    }
}
