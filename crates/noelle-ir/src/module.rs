//! Modules, functions, blocks, and globals.

use crate::inst::{Inst, InstData, InstId, Terminator};
use crate::intern::Symbol;
use crate::types::{FuncType, Type};
use crate::value::{Constant, Value};
use std::collections::BTreeMap;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Module-level identifier of a function.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct FuncId(pub u32);

impl FuncId {
    /// Arena index of this function.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@f{}", self.0)
    }
}

/// Function-local identifier of a basic block.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct BlockId(pub u32);

impl BlockId {
    /// Arena index of this block.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// Module-level identifier of a global variable.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct GlobalId(pub u32);

impl GlobalId {
    /// Arena index of this global.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Initializer of a global variable.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum GlobalInit {
    /// Zero-initialized storage.
    Zero,
    /// A single scalar constant.
    Scalar(Constant),
    /// An array of scalar constants (for `[n x T]` globals).
    Array(Vec<Constant>),
}

/// A module-level global variable. Its [`Value::Global`] is a pointer to the
/// storage of type `ty`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Global {
    /// Symbol name.
    pub name: String,
    /// Value type of the storage (the global's address has type `ty*`).
    pub ty: Type,
    /// Initializer.
    pub init: GlobalInit,
    /// True if the global may be written at run time (used by alias analysis
    /// to treat read-only globals as loop invariant).
    pub is_const: bool,
}

/// A basic block: an ordered list of instructions ending in a terminator.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct BasicBlock {
    /// Label of the block for printing.
    pub name: String,
    /// Instructions in execution order; the last one must be a terminator
    /// once the function is complete.
    pub insts: Vec<InstId>,
}

/// A function: parameters, return type, and a CFG of basic blocks.
///
/// Instructions live in an arena indexed by [`InstId`]; blocks hold ordered
/// lists of instruction ids. Declarations (externally-defined functions such
/// as `malloc` or the NOELLE runtime intrinsics) have no blocks.
#[derive(Clone, PartialEq, Debug)]
pub struct Function {
    /// Symbol name.
    pub name: String,
    /// Formal parameters: `(name, type)`.
    pub params: Vec<(String, Type)>,
    /// Return type.
    pub ret_ty: Type,
    pub(crate) blocks: Vec<BasicBlock>,
    /// Block layout (printing and iteration order); `layout[0]` is the entry.
    pub(crate) layout: Vec<BlockId>,
    pub(crate) insts: Vec<InstData>,
    /// Function-level metadata (profiles, NOELLE annotations).
    pub metadata: BTreeMap<String, String>,
    /// Per-instruction metadata.
    pub inst_metadata: HashMap<InstId, BTreeMap<String, String>>,
    /// Interned symbol of `name`, cached at construction. Every constructor
    /// funnels through [`Function::new`] and nothing renames functions after
    /// the fact, so the cache cannot go stale.
    pub(crate) name_sym: Symbol,
}

impl Function {
    /// Create an empty function (a declaration until blocks are added).
    pub fn new(name: impl Into<String>, params: Vec<(String, Type)>, ret_ty: Type) -> Function {
        let name = name.into();
        let name_sym = Symbol::intern(&name);
        Function {
            name,
            params,
            ret_ty,
            blocks: Vec::new(),
            layout: Vec::new(),
            insts: Vec::new(),
            metadata: BTreeMap::new(),
            inst_metadata: HashMap::new(),
            name_sym,
        }
    }

    /// The function name as an interned symbol (`u32` comparisons).
    pub fn name_sym(&self) -> Symbol {
        self.name_sym
    }

    /// True if the function has no body.
    pub fn is_declaration(&self) -> bool {
        self.layout.is_empty()
    }

    /// The function's type.
    pub fn func_type(&self) -> FuncType {
        FuncType {
            params: self.params.iter().map(|(_, t)| t.clone()).collect(),
            ret: self.ret_ty.clone(),
        }
    }

    /// The entry block.
    ///
    /// # Panics
    /// Panics if the function is a declaration.
    pub fn entry(&self) -> BlockId {
        self.layout[0]
    }

    /// Append a new empty block named `name`.
    pub fn add_block(&mut self, name: impl Into<String>) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(BasicBlock {
            name: name.into(),
            insts: Vec::new(),
        });
        self.layout.push(id);
        id
    }

    /// Blocks in layout order.
    pub fn block_order(&self) -> &[BlockId] {
        &self.layout
    }

    /// Reorder blocks for printing; `order` must be a permutation of the
    /// current layout.
    pub fn set_block_order(&mut self, order: Vec<BlockId>) {
        debug_assert_eq!(order.len(), self.layout.len());
        self.layout = order;
    }

    /// Access a block.
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.index()]
    }

    /// Mutable access to a block.
    pub fn block_mut(&mut self, id: BlockId) -> &mut BasicBlock {
        &mut self.blocks[id.index()]
    }

    /// Number of blocks ever created (including detached ones).
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Access an instruction.
    pub fn inst(&self, id: InstId) -> &Inst {
        &self.insts[id.index()].inst
    }

    /// Mutable access to an instruction.
    pub fn inst_mut(&mut self, id: InstId) -> &mut Inst {
        &mut self.insts[id.index()].inst
    }

    /// Access an instruction's book-keeping data.
    pub fn inst_data(&self, id: InstId) -> &InstData {
        &self.insts[id.index()]
    }

    /// The block containing `id`.
    pub fn parent_block(&self, id: InstId) -> BlockId {
        self.insts[id.index()].block
    }

    /// Append `inst` to `block`, returning its id.
    pub fn append_inst(&mut self, block: BlockId, inst: Inst) -> InstId {
        let id = InstId(self.insts.len() as u32);
        self.insts.push(InstData {
            inst,
            block,
            name: None,
        });
        self.blocks[block.index()].insts.push(id);
        id
    }

    /// Insert `inst` into `block` at position `pos` (index into the block's
    /// instruction list), returning its id.
    ///
    /// # Panics
    /// Panics if `pos > block.insts.len()`.
    pub fn insert_inst(&mut self, block: BlockId, pos: usize, inst: Inst) -> InstId {
        let id = InstId(self.insts.len() as u32);
        self.insts.push(InstData {
            inst,
            block,
            name: None,
        });
        self.blocks[block.index()].insts.insert(pos, id);
        id
    }

    /// Remove `id` from its block (the arena slot is retired, not reused).
    pub fn remove_inst(&mut self, id: InstId) {
        let block = self.insts[id.index()].block;
        self.blocks[block.index()].insts.retain(|&i| i != id);
        self.inst_metadata.remove(&id);
    }

    /// Detach `id` from its current block and append it to `to`.
    pub fn move_inst_to_block_end(&mut self, id: InstId, to: BlockId) {
        let from = self.insts[id.index()].block;
        self.blocks[from.index()].insts.retain(|&i| i != id);
        self.blocks[to.index()].insts.push(id);
        self.insts[id.index()].block = to;
    }

    /// Detach `id` and insert it into `to` at position `pos`.
    pub fn move_inst(&mut self, id: InstId, to: BlockId, pos: usize) {
        let from = self.insts[id.index()].block;
        self.blocks[from.index()].insts.retain(|&i| i != id);
        self.blocks[to.index()].insts.insert(pos, id);
        self.insts[id.index()].block = to;
    }

    /// Position of `id` within its block, if attached.
    pub fn position_in_block(&self, id: InstId) -> Option<usize> {
        let block = self.insts[id.index()].block;
        self.blocks[block.index()]
            .insts
            .iter()
            .position(|&i| i == id)
    }

    /// The terminator of `block`, if present.
    pub fn terminator(&self, block: BlockId) -> Option<&Terminator> {
        let last = *self.blocks[block.index()].insts.last()?;
        match self.inst(last) {
            Inst::Term(t) => Some(t),
            _ => None,
        }
    }

    /// The terminator instruction id of `block`, if present.
    pub fn terminator_id(&self, block: BlockId) -> Option<InstId> {
        let last = *self.blocks[block.index()].insts.last()?;
        match self.inst(last) {
            Inst::Term(_) => Some(last),
            _ => None,
        }
    }

    /// Replace the terminator of `block` (appending one if missing).
    pub fn set_terminator(&mut self, block: BlockId, term: Terminator) {
        if let Some(id) = self.terminator_id(block) {
            self.insts[id.index()].inst = Inst::Term(term);
        } else {
            self.append_inst(block, Inst::Term(term));
        }
    }

    /// Successor blocks of `block`.
    pub fn successors(&self, block: BlockId) -> Vec<BlockId> {
        self.terminator(block)
            .map(|t| t.successors())
            .unwrap_or_default()
    }

    /// All attached instruction ids in layout order.
    pub fn inst_ids(&self) -> Vec<InstId> {
        self.layout
            .iter()
            .flat_map(|b| self.blocks[b.index()].insts.iter().copied())
            .collect()
    }

    /// Number of attached instructions.
    pub fn num_insts(&self) -> usize {
        self.layout
            .iter()
            .map(|b| self.blocks[b.index()].insts.len())
            .sum()
    }

    /// The phi instructions at the head of `block`.
    pub fn phis(&self, block: BlockId) -> Vec<InstId> {
        self.blocks[block.index()]
            .insts
            .iter()
            .copied()
            .take_while(|&i| matches!(self.inst(i), Inst::Phi { .. }))
            .collect()
    }

    /// Users of each instruction: map from defining instruction to the
    /// instructions that use its result.
    pub fn compute_uses(&self) -> HashMap<InstId, Vec<InstId>> {
        let mut uses: HashMap<InstId, Vec<InstId>> = HashMap::new();
        for id in self.inst_ids() {
            for op in self.inst(id).operands() {
                if let Value::Inst(def) = op {
                    uses.entry(def).or_default().push(id);
                }
            }
        }
        uses
    }

    /// Replace every use of `from` with `to` across the whole body.
    pub fn replace_all_uses(&mut self, from: Value, to: Value) {
        for id in self.inst_ids() {
            self.insts[id.index()]
                .inst
                .map_operands(|v| if v == from { to } else { v });
        }
    }

    /// Set the printed SSA name of an instruction.
    pub fn set_inst_name(&mut self, id: InstId, name: impl Into<String>) {
        self.insts[id.index()].name = Some(name.into());
    }

    /// Attach metadata `key = value` to instruction `id`.
    pub fn set_inst_metadata(
        &mut self,
        id: InstId,
        key: impl Into<String>,
        value: impl Into<String>,
    ) {
        self.inst_metadata
            .entry(id)
            .or_default()
            .insert(key.into(), value.into());
    }

    /// Metadata value attached to instruction `id` for `key`.
    pub fn inst_metadata(&self, id: InstId, key: &str) -> Option<&str> {
        self.inst_metadata
            .get(&id)
            .and_then(|m| m.get(key))
            .map(String::as_str)
    }

    /// A 64-bit fingerprint of everything that defines this function's
    /// behavior: name, signature, block structure and layout, every
    /// instruction, and all metadata. Two functions with equal content hash
    /// equal; analyses may treat an unchanged fingerprint across an edit as
    /// "this function did not change" (the hash is SipHash over the full
    /// content, so a collision that also survives the damage rule is
    /// vanishingly unlikely).
    pub fn content_fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.name.hash(&mut h);
        self.params.hash(&mut h);
        self.ret_ty.hash(&mut h);
        self.layout.hash(&mut h);
        self.blocks.hash(&mut h);
        self.insts.hash(&mut h);
        self.metadata.hash(&mut h);
        // `inst_metadata` is a HashMap; hash it in a stable order.
        let mut keys: Vec<InstId> = self.inst_metadata.keys().copied().collect();
        keys.sort_unstable();
        for id in keys {
            id.hash(&mut h);
            self.inst_metadata[&id].hash(&mut h);
        }
        h.finish()
    }

    /// Like [`Function::content_fingerprint`], but covering only what code
    /// analyses can observe: name, signature, block structure and layout,
    /// and every instruction — no metadata. A metadata-only edit leaves it
    /// unchanged, so whole-program results that read nothing but bodies
    /// (e.g. a points-to solution) may keep their cache across such edits.
    pub fn body_fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.name.hash(&mut h);
        self.params.hash(&mut h);
        self.ret_ty.hash(&mut h);
        self.layout.hash(&mut h);
        self.blocks.hash(&mut h);
        self.insts.hash(&mut h);
        h.finish()
    }

    /// The type of `v` in the context of this function and `module`.
    pub fn value_type(&self, module: &Module, v: Value) -> Type {
        match v {
            Value::Inst(id) => self.inst(id).result_type(),
            Value::Arg(i) => self.params[i as usize].1.clone(),
            Value::Const(c) => c.ty().unwrap_or_else(|| Type::I64.ptr_to()),
            Value::Global(g) => module.global(g).ty.ptr_to(),
            Value::Func(f) => Type::Func(Arc::new(module.func(f).func_type())).ptr_to(),
        }
    }
}

/// A whole-program module: functions, globals, and embedded metadata.
///
/// `noelle-whole-IR` links translation units into a single `Module` so that
/// whole-program analyses (PDG, call graph) can see all the code, exactly as
/// the paper's tool does for LLVM bitcode.
#[derive(Clone, PartialEq, Debug)]
pub struct Module {
    /// Module name (usually the program name).
    pub name: String,
    pub(crate) functions: Vec<Function>,
    pub(crate) globals: Vec<Global>,
    /// Module-level metadata (embedded profiles, PDG, compilation options).
    pub metadata: BTreeMap<String, String>,
}

impl Module {
    /// Create an empty module.
    pub fn new(name: impl Into<String>) -> Module {
        Module {
            name: name.into(),
            functions: Vec::new(),
            globals: Vec::new(),
            metadata: BTreeMap::new(),
        }
    }

    /// Add a function, returning its id.
    pub fn add_function(&mut self, f: Function) -> FuncId {
        let id = FuncId(self.functions.len() as u32);
        self.functions.push(f);
        id
    }

    /// Declare an external function (no body).
    pub fn declare_function(
        &mut self,
        name: impl Into<String>,
        params: Vec<Type>,
        ret_ty: Type,
    ) -> FuncId {
        let params = params
            .into_iter()
            .enumerate()
            .map(|(i, t)| (format!("a{i}"), t))
            .collect();
        self.add_function(Function::new(name, params, ret_ty))
    }

    /// Declare `name` if not already present; return its id either way.
    pub fn get_or_declare(&mut self, name: &str, params: Vec<Type>, ret_ty: Type) -> FuncId {
        if let Some(id) = self.func_id_by_name(name) {
            return id;
        }
        self.declare_function(name, params, ret_ty)
    }

    /// Add a global variable, returning its id.
    pub fn add_global(&mut self, g: Global) -> GlobalId {
        let id = GlobalId(self.globals.len() as u32);
        self.globals.push(g);
        id
    }

    /// Access a function.
    pub fn func(&self, id: FuncId) -> &Function {
        &self.functions[id.index()]
    }

    /// Mutable access to a function.
    pub fn func_mut(&mut self, id: FuncId) -> &mut Function {
        &mut self.functions[id.index()]
    }

    /// Access a global.
    pub fn global(&self, id: GlobalId) -> &Global {
        &self.globals[id.index()]
    }

    /// Mutable access to a global.
    pub fn global_mut(&mut self, id: GlobalId) -> &mut Global {
        &mut self.globals[id.index()]
    }

    /// All function ids.
    pub fn func_ids(&self) -> impl Iterator<Item = FuncId> + '_ {
        (0..self.functions.len() as u32).map(FuncId)
    }

    /// All global ids.
    pub fn global_ids(&self) -> impl Iterator<Item = GlobalId> + '_ {
        (0..self.globals.len() as u32).map(GlobalId)
    }

    /// Functions in definition order.
    pub fn functions(&self) -> &[Function] {
        &self.functions
    }

    /// Globals in definition order.
    pub fn globals(&self) -> &[Global] {
        &self.globals
    }

    /// Look up a function id by symbol name. Compares cached interned
    /// symbols — one hash of `name`, then `u32` equality per function —
    /// instead of a string comparison per function.
    pub fn func_id_by_name(&self, name: &str) -> Option<FuncId> {
        let sym = Symbol::intern(name);
        self.functions
            .iter()
            .position(|f| f.name_sym == sym)
            .map(|i| FuncId(i as u32))
    }

    /// Look up a function by symbol name.
    pub fn func_by_name(&self, name: &str) -> Option<&Function> {
        let sym = Symbol::intern(name);
        self.functions.iter().find(|f| f.name_sym == sym)
    }

    /// Look up a global id by symbol name.
    pub fn global_id_by_name(&self, name: &str) -> Option<GlobalId> {
        self.globals
            .iter()
            .position(|g| g.name == name)
            .map(|i| GlobalId(i as u32))
    }

    /// Total number of attached instructions across all functions (the
    /// "binary size" proxy used by the dead-function-elimination evaluation).
    pub fn total_insts(&self) -> usize {
        self.functions.iter().map(Function::num_insts).sum()
    }

    /// A 64-bit fingerprint of the module's globals (names, types,
    /// initializers, constness) and module-level metadata. Companion to
    /// [`Function::content_fingerprint`] for whole-module analyses whose
    /// inputs are "every function body plus the globals".
    pub fn globals_fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.globals.hash(&mut h);
        self.metadata.hash(&mut h);
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{BinOp, Terminator};

    fn simple_func() -> Function {
        let mut f = Function::new("f", vec![("x".into(), Type::I64)], Type::I64);
        let entry = f.add_block("entry");
        let add = f.append_inst(
            entry,
            Inst::Bin {
                op: BinOp::Add,
                ty: Type::I64,
                lhs: Value::Arg(0),
                rhs: Value::const_i64(1),
            },
        );
        f.set_terminator(entry, Terminator::Ret(Some(Value::Inst(add))));
        f
    }

    #[test]
    fn function_construction() {
        let f = simple_func();
        assert!(!f.is_declaration());
        assert_eq!(f.num_insts(), 2);
        assert_eq!(f.entry(), BlockId(0));
        assert!(matches!(
            f.terminator(f.entry()),
            Some(Terminator::Ret(Some(_)))
        ));
    }

    #[test]
    fn uses_and_rauw() {
        let mut f = simple_func();
        let add = f.block(f.entry()).insts[0];
        let uses = f.compute_uses();
        assert_eq!(uses[&add].len(), 1);
        f.replace_all_uses(Value::Inst(add), Value::const_i64(9));
        assert!(matches!(
            f.terminator(f.entry()),
            Some(Terminator::Ret(Some(Value::Const(_))))
        ));
    }

    #[test]
    fn remove_and_move_inst() {
        let mut f = simple_func();
        let entry = f.entry();
        let other = f.add_block("other");
        let add = f.block(entry).insts[0];
        f.move_inst_to_block_end(add, other);
        assert_eq!(f.parent_block(add), other);
        assert_eq!(f.block(entry).insts.len(), 1); // only the ret remains
        f.remove_inst(add);
        assert!(f.block(other).insts.is_empty());
    }

    #[test]
    fn module_lookup() {
        let mut m = Module::new("m");
        let f = m.add_function(simple_func());
        assert_eq!(m.func_id_by_name("f"), Some(f));
        assert_eq!(m.func_id_by_name("g"), None);
        let malloc = m.get_or_declare("malloc", vec![Type::I64], Type::I8.ptr_to());
        assert_eq!(
            m.get_or_declare("malloc", vec![Type::I64], Type::I8.ptr_to()),
            malloc
        );
        assert!(m.func(malloc).is_declaration());
        assert_eq!(m.total_insts(), 2);
    }

    #[test]
    fn value_types_resolve() {
        let mut m = Module::new("m");
        let g = m.add_global(Global {
            name: "g".into(),
            ty: Type::I64,
            init: GlobalInit::Zero,
            is_const: false,
        });
        let fid = m.add_function(simple_func());
        let f = m.func(fid);
        assert_eq!(f.value_type(&m, Value::Arg(0)), Type::I64);
        assert_eq!(f.value_type(&m, Value::Global(g)), Type::I64.ptr_to());
        assert_eq!(f.value_type(&m, Value::const_f64(1.0)), Type::F64);
    }

    #[test]
    fn inst_metadata_round_trip() {
        let mut f = simple_func();
        let add = f.block(f.entry()).insts[0];
        f.set_inst_metadata(add, "noelle.id", "42");
        assert_eq!(f.inst_metadata(add, "noelle.id"), Some("42"));
        assert_eq!(f.inst_metadata(add, "missing"), None);
        f.remove_inst(add);
        assert_eq!(f.inst_metadata(add, "noelle.id"), None);
    }
}
