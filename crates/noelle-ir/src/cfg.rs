//! Control-flow-graph utilities: predecessor maps, traversal orders,
//! reachability.

use crate::module::{BlockId, Function};
use std::collections::{HashMap, HashSet};

/// Predecessor/successor maps of a function's CFG, computed once.
#[derive(Clone, Debug)]
pub struct Cfg {
    /// Successors of each block, in terminator order.
    pub succs: HashMap<BlockId, Vec<BlockId>>,
    /// Predecessors of each block, in layout order.
    pub preds: HashMap<BlockId, Vec<BlockId>>,
    /// Blocks reachable from the entry, in reverse postorder.
    pub rpo: Vec<BlockId>,
}

impl Cfg {
    /// Compute the CFG of `f`.
    ///
    /// # Panics
    /// Panics if `f` is a declaration.
    pub fn new(f: &Function) -> Cfg {
        assert!(!f.is_declaration(), "cannot build a CFG for a declaration");
        let mut succs: HashMap<BlockId, Vec<BlockId>> = HashMap::new();
        let mut preds: HashMap<BlockId, Vec<BlockId>> = HashMap::new();
        for &b in f.block_order() {
            preds.entry(b).or_default();
        }
        for &b in f.block_order() {
            let ss = f.successors(b);
            for &s in &ss {
                preds.entry(s).or_default().push(b);
            }
            succs.insert(b, ss);
        }
        let rpo = reverse_postorder(f);
        Cfg { succs, preds, rpo }
    }

    /// Predecessors of `b`.
    pub fn preds(&self, b: BlockId) -> &[BlockId] {
        self.preds.get(&b).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Successors of `b`.
    pub fn succs(&self, b: BlockId) -> &[BlockId] {
        self.succs.get(&b).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Blocks with no successors (function exits).
    pub fn exit_blocks(&self) -> Vec<BlockId> {
        self.rpo
            .iter()
            .copied()
            .filter(|b| self.succs(*b).is_empty())
            .collect()
    }

    /// True if `b` is reachable from the entry.
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.rpo.contains(&b)
    }

    /// Position of each block in the reverse postorder (for priority-ordered
    /// data-flow work lists).
    pub fn rpo_index(&self) -> HashMap<BlockId, usize> {
        self.rpo.iter().enumerate().map(|(i, &b)| (b, i)).collect()
    }
}

/// Blocks reachable from the entry of `f`, in reverse postorder.
pub fn reverse_postorder(f: &Function) -> Vec<BlockId> {
    let mut post = Vec::new();
    let mut visited = HashSet::new();
    // Iterative DFS with an explicit stack of (block, next-successor-index).
    let entry = f.entry();
    let mut stack: Vec<(BlockId, usize)> = vec![(entry, 0)];
    visited.insert(entry);
    while let Some(&mut (b, ref mut next)) = stack.last_mut() {
        let succs = f.successors(b);
        if *next < succs.len() {
            let s = succs[*next];
            *next += 1;
            if visited.insert(s) {
                stack.push((s, 0));
            }
        } else {
            post.push(b);
            stack.pop();
        }
    }
    post.reverse();
    post
}

/// Blocks reachable from the entry of `f` (unordered set).
pub fn reachable_blocks(f: &Function) -> HashSet<BlockId> {
    reverse_postorder(f).into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::types::Type;
    use crate::value::Value;

    /// Build a diamond CFG: entry -> (left | right) -> join.
    fn diamond() -> Function {
        let mut b = FunctionBuilder::new("diamond", vec![("c", Type::I1)], Type::Void);
        let entry = b.entry_block();
        let left = b.block("left");
        let right = b.block("right");
        let join = b.block("join");
        b.switch_to(entry);
        b.cond_br(b.arg(0), left, right);
        b.switch_to(left);
        b.br(join);
        b.switch_to(right);
        b.br(join);
        b.switch_to(join);
        b.ret(None);
        b.finish()
    }

    #[test]
    fn diamond_cfg_shape() {
        let f = diamond();
        let cfg = Cfg::new(&f);
        let entry = f.entry();
        assert_eq!(cfg.succs(entry).len(), 2);
        assert!(cfg.preds(entry).is_empty());
        let join = f.block_order()[3];
        assert_eq!(cfg.preds(join).len(), 2);
        assert_eq!(cfg.exit_blocks(), vec![join]);
    }

    #[test]
    fn rpo_starts_at_entry_and_covers_reachable() {
        let f = diamond();
        let cfg = Cfg::new(&f);
        assert_eq!(cfg.rpo[0], f.entry());
        assert_eq!(cfg.rpo.len(), 4);
        // RPO property: every block appears after at least one predecessor
        // (except the entry and loop headers; the diamond has no loops).
        let idx = cfg.rpo_index();
        for &b in &cfg.rpo {
            if b == f.entry() {
                continue;
            }
            assert!(cfg.preds(b).iter().any(|p| idx[p] < idx[&b]));
        }
    }

    #[test]
    fn unreachable_blocks_excluded() {
        let mut b = FunctionBuilder::new("f", vec![], Type::Void);
        let entry = b.entry_block();
        let dead = b.block("dead");
        b.switch_to(entry);
        b.ret(None);
        b.switch_to(dead);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::new(&f);
        assert!(cfg.is_reachable(entry));
        assert!(!cfg.is_reachable(dead));
        assert_eq!(reachable_blocks(&f).len(), 1);
    }

    #[test]
    fn self_loop_is_handled() {
        let mut b = FunctionBuilder::new("f", vec![("c", Type::I1)], Type::Void);
        let entry = b.entry_block();
        let looping = b.block("loop");
        let exit = b.block("exit");
        b.switch_to(entry);
        b.br(looping);
        b.switch_to(looping);
        b.cond_br(b.arg(0), looping, exit);
        b.switch_to(exit);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::new(&f);
        assert!(cfg.preds(looping).contains(&looping));
        assert_eq!(cfg.rpo.len(), 3);
        let _ = Value::const_i64(0);
    }
}
