//! Instructions: the nodes of the IR and, later, of the PDG.

use crate::module::{BlockId, FuncId};
use crate::types::Type;
use crate::value::Value;
use std::fmt;

/// Function-local identifier of an instruction (index into the function's
/// instruction arena).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct InstId(pub u32);

impl InstId {
    /// Arena index of this instruction.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for InstId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

/// Integer and floating-point binary operations.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BinOp {
    /// Integer addition (wrapping).
    Add,
    /// Integer subtraction (wrapping).
    Sub,
    /// Integer multiplication (wrapping).
    Mul,
    /// Signed integer division.
    Div,
    /// Signed integer remainder.
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Shift left.
    Shl,
    /// Arithmetic (sign-preserving) shift right.
    AShr,
    /// Logical shift right.
    LShr,
    /// Signed maximum.
    SMax,
    /// Signed minimum.
    SMin,
    /// Floating-point addition.
    FAdd,
    /// Floating-point subtraction.
    FSub,
    /// Floating-point multiplication.
    FMul,
    /// Floating-point division.
    FDiv,
    /// Floating-point maximum.
    FMax,
    /// Floating-point minimum.
    FMin,
}

impl BinOp {
    /// True for the floating-point operations.
    pub fn is_float_op(self) -> bool {
        matches!(
            self,
            BinOp::FAdd | BinOp::FSub | BinOp::FMul | BinOp::FDiv | BinOp::FMax | BinOp::FMin
        )
    }

    /// True if the operation is commutative and associative, i.e. usable as a
    /// reduction operator by the RD abstraction (the paper treats FP
    /// reductions as reducible, accepting reassociation).
    pub fn is_reduction_op(self) -> bool {
        matches!(
            self,
            BinOp::Add
                | BinOp::Mul
                | BinOp::And
                | BinOp::Or
                | BinOp::Xor
                | BinOp::SMax
                | BinOp::SMin
                | BinOp::FAdd
                | BinOp::FMul
                | BinOp::FMax
                | BinOp::FMin
        )
    }

    /// The identity element of a reduction operator, if it has one.
    pub fn reduction_identity(self) -> Option<crate::value::Constant> {
        use crate::value::Constant;
        match self {
            BinOp::Add => Some(Constant::Int(0, crate::types::IntWidth::I64)),
            BinOp::Mul => Some(Constant::Int(1, crate::types::IntWidth::I64)),
            BinOp::And => Some(Constant::Int(-1, crate::types::IntWidth::I64)),
            BinOp::Or | BinOp::Xor => Some(Constant::Int(0, crate::types::IntWidth::I64)),
            BinOp::SMax => Some(Constant::Int(i64::MIN, crate::types::IntWidth::I64)),
            BinOp::SMin => Some(Constant::Int(i64::MAX, crate::types::IntWidth::I64)),
            BinOp::FAdd => Some(Constant::f64(0.0)),
            BinOp::FMul => Some(Constant::f64(1.0)),
            BinOp::FMax => Some(Constant::f64(f64::NEG_INFINITY)),
            BinOp::FMin => Some(Constant::f64(f64::INFINITY)),
            _ => None,
        }
    }

    /// Textual mnemonic used by the printer/parser.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Div => "div",
            BinOp::Rem => "rem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::AShr => "ashr",
            BinOp::LShr => "lshr",
            BinOp::SMax => "smax",
            BinOp::SMin => "smin",
            BinOp::FAdd => "fadd",
            BinOp::FSub => "fsub",
            BinOp::FMul => "fmul",
            BinOp::FDiv => "fdiv",
            BinOp::FMax => "fmax",
            BinOp::FMin => "fmin",
        }
    }

    /// All binary operations (for fuzzing and the parser's mnemonic table).
    pub fn all() -> &'static [BinOp] {
        &[
            BinOp::Add,
            BinOp::Sub,
            BinOp::Mul,
            BinOp::Div,
            BinOp::Rem,
            BinOp::And,
            BinOp::Or,
            BinOp::Xor,
            BinOp::Shl,
            BinOp::AShr,
            BinOp::LShr,
            BinOp::SMax,
            BinOp::SMin,
            BinOp::FAdd,
            BinOp::FSub,
            BinOp::FMul,
            BinOp::FDiv,
            BinOp::FMax,
            BinOp::FMin,
        ]
    }
}

/// Integer comparison predicates (signed and unsigned).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[allow(missing_docs)]
pub enum IcmpPred {
    Eq,
    Ne,
    Slt,
    Sle,
    Sgt,
    Sge,
    Ult,
    Ule,
    Ugt,
    Uge,
}

impl IcmpPred {
    /// Textual mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            IcmpPred::Eq => "eq",
            IcmpPred::Ne => "ne",
            IcmpPred::Slt => "slt",
            IcmpPred::Sle => "sle",
            IcmpPred::Sgt => "sgt",
            IcmpPred::Sge => "sge",
            IcmpPred::Ult => "ult",
            IcmpPred::Ule => "ule",
            IcmpPred::Ugt => "ugt",
            IcmpPred::Uge => "uge",
        }
    }

    /// The predicate with operands swapped (`a < b` becomes `b > a`).
    ///
    /// Used by the Time-Squeezer custom tool, which rewrites compare
    /// instructions for timing-speculative micro-architectures.
    pub fn swapped(self) -> IcmpPred {
        match self {
            IcmpPred::Eq => IcmpPred::Eq,
            IcmpPred::Ne => IcmpPred::Ne,
            IcmpPred::Slt => IcmpPred::Sgt,
            IcmpPred::Sle => IcmpPred::Sge,
            IcmpPred::Sgt => IcmpPred::Slt,
            IcmpPred::Sge => IcmpPred::Sle,
            IcmpPred::Ult => IcmpPred::Ugt,
            IcmpPred::Ule => IcmpPred::Uge,
            IcmpPred::Ugt => IcmpPred::Ult,
            IcmpPred::Uge => IcmpPred::Ule,
        }
    }
}

/// Ordered floating-point comparison predicates.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[allow(missing_docs)]
pub enum FcmpPred {
    Oeq,
    One,
    Olt,
    Ole,
    Ogt,
    Oge,
}

impl FcmpPred {
    /// Textual mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            FcmpPred::Oeq => "oeq",
            FcmpPred::One => "one",
            FcmpPred::Olt => "olt",
            FcmpPred::Ole => "ole",
            FcmpPred::Ogt => "ogt",
            FcmpPred::Oge => "oge",
        }
    }
}

/// Conversion operations.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[allow(missing_docs)]
pub enum CastOp {
    Zext,
    Sext,
    Trunc,
    Bitcast,
    PtrToInt,
    IntToPtr,
    SiToFp,
    FpToSi,
    FpExt,
    FpTrunc,
}

impl CastOp {
    /// Textual mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CastOp::Zext => "zext",
            CastOp::Sext => "sext",
            CastOp::Trunc => "trunc",
            CastOp::Bitcast => "bitcast",
            CastOp::PtrToInt => "ptrtoint",
            CastOp::IntToPtr => "inttoptr",
            CastOp::SiToFp => "sitofp",
            CastOp::FpToSi => "fptosi",
            CastOp::FpExt => "fpext",
            CastOp::FpTrunc => "fptrunc",
        }
    }
}

/// The target of a call.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Callee {
    /// Call to a known function.
    Direct(FuncId),
    /// Call through a function-pointer value. The complete call graph (CG
    /// abstraction) resolves the possible callees of these using the PDG.
    Indirect(Value),
}

/// Block terminators.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Terminator {
    /// Return from the function, with an optional value.
    Ret(Option<Value>),
    /// Unconditional branch.
    Br(BlockId),
    /// Two-way conditional branch on an `i1` value.
    CondBr {
        /// Branch condition.
        cond: Value,
        /// Successor when the condition is true.
        then_bb: BlockId,
        /// Successor when the condition is false.
        else_bb: BlockId,
    },
    /// Multi-way branch on an integer value.
    Switch {
        /// Scrutinee.
        value: Value,
        /// Successor when no case matches.
        default: BlockId,
        /// `(case constant, successor)` pairs.
        cases: Vec<(i64, BlockId)>,
    },
    /// Control never reaches here.
    Unreachable,
}

impl Terminator {
    /// Successor blocks in order.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Ret(_) | Terminator::Unreachable => vec![],
            Terminator::Br(b) => vec![*b],
            Terminator::CondBr {
                then_bb, else_bb, ..
            } => vec![*then_bb, *else_bb],
            Terminator::Switch { default, cases, .. } => {
                let mut out = vec![*default];
                out.extend(cases.iter().map(|(_, b)| *b));
                out
            }
        }
    }

    /// Replace every successor equal to `from` with `to`.
    pub fn replace_successor(&mut self, from: BlockId, to: BlockId) {
        match self {
            Terminator::Ret(_) | Terminator::Unreachable => {}
            Terminator::Br(b) => {
                if *b == from {
                    *b = to;
                }
            }
            Terminator::CondBr {
                then_bb, else_bb, ..
            } => {
                if *then_bb == from {
                    *then_bb = to;
                }
                if *else_bb == from {
                    *else_bb = to;
                }
            }
            Terminator::Switch { default, cases, .. } => {
                if *default == from {
                    *default = to;
                }
                for (_, b) in cases {
                    if *b == from {
                        *b = to;
                    }
                }
            }
        }
    }
}

/// An instruction.
///
/// Terminators are instructions too (as in LLVM): they appear as the final
/// instruction of each block and participate in the PDG as sources of control
/// dependences.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Inst {
    /// Stack allocation of `count` elements of `ty`; yields `ty*`.
    Alloca {
        /// Element type allocated.
        ty: Type,
        /// Number of elements (usually constant 1).
        count: Value,
    },
    /// Load a scalar of type `ty` from `ptr`.
    Load {
        /// Loaded type.
        ty: Type,
        /// Address operand (type `ty*`).
        ptr: Value,
    },
    /// Store scalar `val` of type `ty` to `ptr`.
    Store {
        /// Stored value.
        val: Value,
        /// Address operand (type `ty*`).
        ptr: Value,
        /// Stored type.
        ty: Type,
    },
    /// Address arithmetic, LLVM `getelementptr` style: the first index scales
    /// by `size_of(base_ty)`, later indices step into arrays/structs.
    Gep {
        /// Base address (type `base_ty*`).
        base: Value,
        /// Pointee type of the base address.
        base_ty: Type,
        /// Indices; struct indices must be integer constants.
        indices: Vec<Value>,
    },
    /// Binary arithmetic/logic.
    Bin {
        /// Operation.
        op: BinOp,
        /// Operand (and result) type.
        ty: Type,
        /// Left operand.
        lhs: Value,
        /// Right operand.
        rhs: Value,
    },
    /// Integer comparison; yields `i1`.
    Icmp {
        /// Predicate.
        pred: IcmpPred,
        /// Operand type.
        ty: Type,
        /// Left operand.
        lhs: Value,
        /// Right operand.
        rhs: Value,
    },
    /// Floating-point comparison; yields `i1`.
    Fcmp {
        /// Predicate.
        pred: FcmpPred,
        /// Operand type.
        ty: Type,
        /// Left operand.
        lhs: Value,
        /// Right operand.
        rhs: Value,
    },
    /// Type conversion.
    Cast {
        /// Conversion operation.
        op: CastOp,
        /// Source type.
        from: Type,
        /// Destination type.
        to: Type,
        /// Converted value.
        val: Value,
    },
    /// Ternary select on an `i1` condition.
    Select {
        /// Result type.
        ty: Type,
        /// Condition.
        cond: Value,
        /// Value when true.
        tval: Value,
        /// Value when false.
        fval: Value,
    },
    /// SSA phi node.
    Phi {
        /// Result type.
        ty: Type,
        /// `(predecessor block, incoming value)` pairs.
        incomings: Vec<(BlockId, Value)>,
    },
    /// Function call.
    Call {
        /// Called function or function pointer.
        callee: Callee,
        /// Actual arguments.
        args: Vec<Value>,
        /// Return type.
        ret_ty: Type,
    },
    /// Block terminator.
    Term(Terminator),
}

impl Inst {
    /// The type of the value this instruction produces (`Void` if none).
    pub fn result_type(&self) -> Type {
        match self {
            Inst::Alloca { ty, .. } => ty.ptr_to(),
            Inst::Load { ty, .. } => ty.clone(),
            Inst::Store { .. } => Type::Void,
            Inst::Gep {
                base_ty, indices, ..
            } => gep_result_type(base_ty, indices).ptr_to(),
            Inst::Bin { ty, .. } => ty.clone(),
            Inst::Icmp { .. } | Inst::Fcmp { .. } => Type::I1,
            Inst::Cast { to, .. } => to.clone(),
            Inst::Select { ty, .. } => ty.clone(),
            Inst::Phi { ty, .. } => ty.clone(),
            Inst::Call { ret_ty, .. } => ret_ty.clone(),
            Inst::Term(_) => Type::Void,
        }
    }

    /// All value operands of the instruction, in a fixed order.
    pub fn operands(&self) -> Vec<Value> {
        match self {
            Inst::Alloca { count, .. } => vec![*count],
            Inst::Load { ptr, .. } => vec![*ptr],
            Inst::Store { val, ptr, .. } => vec![*val, *ptr],
            Inst::Gep { base, indices, .. } => {
                let mut out = vec![*base];
                out.extend(indices.iter().copied());
                out
            }
            Inst::Bin { lhs, rhs, .. } => vec![*lhs, *rhs],
            Inst::Icmp { lhs, rhs, .. } | Inst::Fcmp { lhs, rhs, .. } => vec![*lhs, *rhs],
            Inst::Cast { val, .. } => vec![*val],
            Inst::Select {
                cond, tval, fval, ..
            } => vec![*cond, *tval, *fval],
            Inst::Phi { incomings, .. } => incomings.iter().map(|(_, v)| *v).collect(),
            Inst::Call { callee, args, .. } => {
                let mut out = Vec::with_capacity(args.len() + 1);
                if let Callee::Indirect(v) = callee {
                    out.push(*v);
                }
                out.extend(args.iter().copied());
                out
            }
            Inst::Term(t) => match t {
                Terminator::Ret(Some(v)) => vec![*v],
                Terminator::Ret(None) | Terminator::Br(_) | Terminator::Unreachable => vec![],
                Terminator::CondBr { cond, .. } => vec![*cond],
                Terminator::Switch { value, .. } => vec![*value],
            },
        }
    }

    /// Visit every value operand in the same fixed order as [`Inst::operands`]
    /// without materializing a `Vec` — the per-instruction allocation in
    /// `operands` dominates whole-module scans on large modules.
    pub fn for_each_operand(&self, mut f: impl FnMut(Value)) {
        match self {
            Inst::Alloca { count, .. } => f(*count),
            Inst::Load { ptr, .. } => f(*ptr),
            Inst::Store { val, ptr, .. } => {
                f(*val);
                f(*ptr);
            }
            Inst::Gep { base, indices, .. } => {
                f(*base);
                for i in indices {
                    f(*i);
                }
            }
            Inst::Bin { lhs, rhs, .. }
            | Inst::Icmp { lhs, rhs, .. }
            | Inst::Fcmp { lhs, rhs, .. } => {
                f(*lhs);
                f(*rhs);
            }
            Inst::Cast { val, .. } => f(*val),
            Inst::Select {
                cond, tval, fval, ..
            } => {
                f(*cond);
                f(*tval);
                f(*fval);
            }
            Inst::Phi { incomings, .. } => {
                for (_, v) in incomings {
                    f(*v);
                }
            }
            Inst::Call { callee, args, .. } => {
                if let Callee::Indirect(v) = callee {
                    f(*v);
                }
                for a in args {
                    f(*a);
                }
            }
            Inst::Term(t) => match t {
                Terminator::Ret(Some(v)) => f(*v),
                Terminator::Ret(None) | Terminator::Br(_) | Terminator::Unreachable => {}
                Terminator::CondBr { cond, .. } => f(*cond),
                Terminator::Switch { value, .. } => f(*value),
            },
        }
    }

    /// Apply `f` to every value operand in place (replace-all-uses support).
    pub fn map_operands(&mut self, mut f: impl FnMut(Value) -> Value) {
        match self {
            Inst::Alloca { count, .. } => *count = f(*count),
            Inst::Load { ptr, .. } => *ptr = f(*ptr),
            Inst::Store { val, ptr, .. } => {
                *val = f(*val);
                *ptr = f(*ptr);
            }
            Inst::Gep { base, indices, .. } => {
                *base = f(*base);
                for i in indices {
                    *i = f(*i);
                }
            }
            Inst::Bin { lhs, rhs, .. }
            | Inst::Icmp { lhs, rhs, .. }
            | Inst::Fcmp { lhs, rhs, .. } => {
                *lhs = f(*lhs);
                *rhs = f(*rhs);
            }
            Inst::Cast { val, .. } => *val = f(*val),
            Inst::Select {
                cond, tval, fval, ..
            } => {
                *cond = f(*cond);
                *tval = f(*tval);
                *fval = f(*fval);
            }
            Inst::Phi { incomings, .. } => {
                for (_, v) in incomings {
                    *v = f(*v);
                }
            }
            Inst::Call { callee, args, .. } => {
                if let Callee::Indirect(v) = callee {
                    *v = f(*v);
                }
                for a in args {
                    *a = f(*a);
                }
            }
            Inst::Term(t) => match t {
                Terminator::Ret(Some(v)) => *v = f(*v),
                Terminator::Ret(None) | Terminator::Br(_) | Terminator::Unreachable => {}
                Terminator::CondBr { cond, .. } => *cond = f(*cond),
                Terminator::Switch { value, .. } => *value = f(*value),
            },
        }
    }

    /// True if this instruction is a terminator.
    pub fn is_terminator(&self) -> bool {
        matches!(self, Inst::Term(_))
    }

    /// True if this instruction may read from memory.
    pub fn may_read_memory(&self) -> bool {
        matches!(self, Inst::Load { .. } | Inst::Call { .. })
    }

    /// True if this instruction may write to memory.
    pub fn may_write_memory(&self) -> bool {
        matches!(self, Inst::Store { .. } | Inst::Call { .. })
    }

    /// True if the instruction has side effects beyond producing its value
    /// (memory writes, calls, control flow).
    pub fn has_side_effects(&self) -> bool {
        matches!(
            self,
            Inst::Store { .. } | Inst::Call { .. } | Inst::Term(_) | Inst::Alloca { .. }
        )
    }

    /// Short opcode name for diagnostics and profiles.
    pub fn opcode_name(&self) -> &'static str {
        match self {
            Inst::Alloca { .. } => "alloca",
            Inst::Load { .. } => "load",
            Inst::Store { .. } => "store",
            Inst::Gep { .. } => "gep",
            Inst::Bin { op, .. } => op.mnemonic(),
            Inst::Icmp { .. } => "icmp",
            Inst::Fcmp { .. } => "fcmp",
            Inst::Cast { op, .. } => op.mnemonic(),
            Inst::Select { .. } => "select",
            Inst::Phi { .. } => "phi",
            Inst::Call { .. } => "call",
            Inst::Term(Terminator::Ret(_)) => "ret",
            Inst::Term(Terminator::Br(_)) => "br",
            Inst::Term(Terminator::CondBr { .. }) => "condbr",
            Inst::Term(Terminator::Switch { .. }) => "switch",
            Inst::Term(Terminator::Unreachable) => "unreachable",
        }
    }
}

/// Result *pointee* type of a GEP with the given base pointee type and
/// indices (the returned type is what the resulting pointer points to).
pub fn gep_result_type(base_ty: &Type, indices: &[Value]) -> Type {
    let mut ty = base_ty.clone();
    // The first index only scales the base pointer; it does not change type.
    for idx in indices.iter().skip(1) {
        ty = match &ty {
            Type::Array(elem, _) => (**elem).clone(),
            Type::Struct(fields) => {
                let i = match idx {
                    Value::Const(crate::value::Constant::Int(v, _)) => *v as usize,
                    _ => 0,
                };
                fields.get(i).cloned().unwrap_or(Type::Void)
            }
            other => other.clone(),
        };
    }
    ty
}

/// An instruction with its book-keeping: parent block and SSA name.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct InstData {
    /// The instruction itself.
    pub inst: Inst,
    /// Parent block (maintained by [`Function`](crate::Function)).
    pub block: BlockId,
    /// Optional SSA name used by the printer; `%<id>` otherwise.
    pub name: Option<String>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Constant;

    #[test]
    fn terminator_successors() {
        let b0 = BlockId(0);
        let b1 = BlockId(1);
        let b2 = BlockId(2);
        assert!(Terminator::Ret(None).successors().is_empty());
        assert_eq!(Terminator::Br(b1).successors(), vec![b1]);
        let cb = Terminator::CondBr {
            cond: Value::const_bool(true),
            then_bb: b1,
            else_bb: b2,
        };
        assert_eq!(cb.successors(), vec![b1, b2]);
        let sw = Terminator::Switch {
            value: Value::const_i64(0),
            default: b0,
            cases: vec![(1, b1), (2, b2)],
        };
        assert_eq!(sw.successors(), vec![b0, b1, b2]);
    }

    #[test]
    fn replace_successor_rewrites_all_matches() {
        let mut t = Terminator::CondBr {
            cond: Value::const_bool(true),
            then_bb: BlockId(1),
            else_bb: BlockId(1),
        };
        t.replace_successor(BlockId(1), BlockId(5));
        assert_eq!(t.successors(), vec![BlockId(5), BlockId(5)]);
    }

    #[test]
    fn result_types() {
        let alloca = Inst::Alloca {
            ty: Type::I64,
            count: Value::const_i64(1),
        };
        assert_eq!(alloca.result_type(), Type::I64.ptr_to());
        let icmp = Inst::Icmp {
            pred: IcmpPred::Slt,
            ty: Type::I64,
            lhs: Value::const_i64(0),
            rhs: Value::const_i64(1),
        };
        assert_eq!(icmp.result_type(), Type::I1);
        let store = Inst::Store {
            val: Value::const_i64(0),
            ptr: Value::Arg(0),
            ty: Type::I64,
        };
        assert_eq!(store.result_type(), Type::Void);
    }

    #[test]
    fn gep_result_types() {
        // gep [10 x i32]* with indices [0, i] -> i32*
        let arr = Type::I32.array_of(10);
        let ty = gep_result_type(&arr, &[Value::const_i64(0), Value::const_i64(3)]);
        assert_eq!(ty, Type::I32);
        // single-index gep does not change type
        let ty = gep_result_type(&Type::I32, &[Value::const_i64(5)]);
        assert_eq!(ty, Type::I32);
        // struct navigation
        let st = Type::Struct(std::sync::Arc::new(vec![Type::I32, Type::F64]));
        let ty = gep_result_type(
            &st,
            &[
                Value::const_i64(0),
                Value::Const(Constant::Int(1, crate::types::IntWidth::I32)),
            ],
        );
        assert_eq!(ty, Type::F64);
    }

    #[test]
    fn operand_mapping_round_trip() {
        let mut i = Inst::Bin {
            op: BinOp::Add,
            ty: Type::I64,
            lhs: Value::Arg(0),
            rhs: Value::Arg(1),
        };
        i.map_operands(|v| match v {
            Value::Arg(0) => Value::const_i64(7),
            other => other,
        });
        assert_eq!(i.operands(), vec![Value::const_i64(7), Value::Arg(1)]);
    }

    #[test]
    fn reduction_ops_have_identities() {
        for op in BinOp::all() {
            assert_eq!(op.is_reduction_op(), op.reduction_identity().is_some());
        }
    }

    #[test]
    fn icmp_swap_is_involutive() {
        for p in [
            IcmpPred::Eq,
            IcmpPred::Ne,
            IcmpPred::Slt,
            IcmpPred::Sle,
            IcmpPred::Sgt,
            IcmpPred::Sge,
            IcmpPred::Ult,
            IcmpPred::Ule,
            IcmpPred::Ugt,
            IcmpPred::Uge,
        ] {
            assert_eq!(p.swapped().swapped(), p);
        }
    }

    #[test]
    fn memory_effect_predicates() {
        let load = Inst::Load {
            ty: Type::I64,
            ptr: Value::Arg(0),
        };
        assert!(load.may_read_memory());
        assert!(!load.may_write_memory());
        let store = Inst::Store {
            val: Value::const_i64(0),
            ptr: Value::Arg(0),
            ty: Type::I64,
        };
        assert!(store.may_write_memory());
        assert!(!store.may_read_memory());
        let call = Inst::Call {
            callee: Callee::Indirect(Value::Arg(1)),
            args: vec![],
            ret_ty: Type::Void,
        };
        assert!(call.may_read_memory() && call.may_write_memory());
    }
}
