//! # noelle-ir
//!
//! A from-scratch SSA intermediate representation that plays the role LLVM IR
//! plays in the NOELLE paper (CGO 2022). The crates layered above
//! (`noelle-analysis`, `noelle-pdg`, `noelle-core`) provide the NOELLE
//! abstractions; this crate provides the low-level substrate they consume:
//!
//! - a typed, SSA-form IR with phi nodes, memory operations, `getelementptr`
//!   address arithmetic, direct and indirect calls ([`Module`], [`Function`],
//!   [`BasicBlock`], [`Inst`]);
//! - a [`FunctionBuilder`](builder::FunctionBuilder) for programmatic construction;
//! - a textual format with a [`printer`](mod@printer) and a [`parser`](mod@parser) that
//!   round-trip;
//! - a [`verifier`] enforcing SSA and type invariants;
//! - CFG utilities ([`mod@cfg`]), dominator and post-dominator trees ([`dom`]),
//!   and a natural-loop forest ([`loops`] — the paper's "loop structure", LS);
//! - deterministic IDs ([`ids`]) and extendible metadata ([`Module::metadata`])
//!   mirroring `noelle-meta-*` tooling.
//!
//! ## Example
//!
//! ```
//! use noelle_ir::builder::FunctionBuilder;
//! use noelle_ir::{Module, Type, BinOp, Value};
//!
//! let mut module = Module::new("example");
//! let mut b = FunctionBuilder::new("add1", vec![("x", Type::I64)], Type::I64);
//! let entry = b.entry_block();
//! b.switch_to(entry);
//! let x = b.arg(0);
//! let one = Value::const_i64(1);
//! let sum = b.binop(BinOp::Add, Type::I64, x, one);
//! b.ret(Some(sum));
//! module.add_function(b.finish());
//! assert!(noelle_ir::verifier::verify_module(&module).is_ok());
//! ```

pub mod builder;
pub mod bytes;
pub mod cfg;
pub mod dom;
pub mod ids;
pub mod inst;
pub mod intern;
pub mod loops;
pub mod module;
pub mod parser;
pub mod printer;
pub mod types;
pub mod value;
pub mod verifier;

pub use inst::{BinOp, Callee, CastOp, FcmpPred, IcmpPred, Inst, InstData, InstId, Terminator};
pub use module::{BasicBlock, BlockId, FuncId, Function, Global, GlobalId, GlobalInit, Module};
pub use types::{FloatWidth, IntWidth, Type};
pub use value::{Constant, Value};
