//! Programmatic IR construction.
//!
//! [`FunctionBuilder`] is the IR-level analogue of LLVM's `IRBuilder` (the
//! loop-level analogue, the paper's Loop Builder (LB) abstraction, lives in
//! `noelle-core`).

use crate::inst::{BinOp, Callee, CastOp, FcmpPred, IcmpPred, Inst, InstId, Terminator};
use crate::module::{BlockId, FuncId, Function};
use crate::types::Type;
use crate::value::Value;

/// Builds a [`Function`] by appending instructions at an insertion point.
///
/// # Example
///
/// ```
/// use noelle_ir::builder::FunctionBuilder;
/// use noelle_ir::{Type, BinOp, Value};
///
/// let mut b = FunctionBuilder::new("double", vec![("x", Type::I64)], Type::I64);
/// let entry = b.entry_block();
/// b.switch_to(entry);
/// let two = Value::const_i64(2);
/// let d = b.binop(BinOp::Mul, Type::I64, b.arg(0), two);
/// b.ret(Some(d));
/// let f = b.finish();
/// assert_eq!(f.num_insts(), 2);
/// ```
#[derive(Debug)]
pub struct FunctionBuilder {
    func: Function,
    entry: BlockId,
    current: BlockId,
}

impl FunctionBuilder {
    /// Start building a function with the given signature. An entry block is
    /// created and selected automatically.
    pub fn new(name: &str, params: Vec<(&str, Type)>, ret_ty: Type) -> FunctionBuilder {
        let params = params
            .into_iter()
            .map(|(n, t)| (n.to_string(), t))
            .collect();
        let mut func = Function::new(name, params, ret_ty);
        let entry = func.add_block("entry");
        FunctionBuilder {
            func,
            entry,
            current: entry,
        }
    }

    /// The automatically-created entry block.
    pub fn entry_block(&self) -> BlockId {
        self.entry
    }

    /// Create a new (empty) block.
    pub fn block(&mut self, name: &str) -> BlockId {
        self.func.add_block(name)
    }

    /// Move the insertion point to the end of `block`.
    pub fn switch_to(&mut self, block: BlockId) {
        self.current = block;
    }

    /// The block currently being appended to.
    pub fn current_block(&self) -> BlockId {
        self.current
    }

    /// The `i`-th formal argument as a value.
    pub fn arg(&self, i: u32) -> Value {
        debug_assert!((i as usize) < self.func.params.len());
        Value::Arg(i)
    }

    /// Read access to the function under construction.
    pub fn func(&self) -> &Function {
        &self.func
    }

    /// Mutable access to the function under construction (escape hatch for
    /// phi patching and metadata).
    pub fn func_mut(&mut self) -> &mut Function {
        &mut self.func
    }

    fn push(&mut self, inst: Inst) -> Value {
        let id = self.func.append_inst(self.current, inst);
        Value::Inst(id)
    }

    fn push_id(&mut self, inst: Inst) -> InstId {
        self.func.append_inst(self.current, inst)
    }

    /// `alloca ty` — one element.
    pub fn alloca(&mut self, ty: Type) -> Value {
        self.push(Inst::Alloca {
            ty,
            count: Value::const_i64(1),
        })
    }

    /// `alloca ty, count`.
    pub fn alloca_n(&mut self, ty: Type, count: Value) -> Value {
        self.push(Inst::Alloca { ty, count })
    }

    /// `load ty, ptr`.
    pub fn load(&mut self, ty: Type, ptr: Value) -> Value {
        self.push(Inst::Load { ty, ptr })
    }

    /// `store val, ptr`.
    pub fn store(&mut self, ty: Type, val: Value, ptr: Value) {
        self.push(Inst::Store { val, ptr, ty });
    }

    /// `gep base_ty, base, indices`.
    pub fn gep(&mut self, base_ty: Type, base: Value, indices: Vec<Value>) -> Value {
        self.push(Inst::Gep {
            base,
            base_ty,
            indices,
        })
    }

    /// Pointer to element `idx` of an array pointed to by `base`.
    pub fn index_ptr(&mut self, elem_ty: Type, base: Value, idx: Value) -> Value {
        self.push(Inst::Gep {
            base,
            base_ty: elem_ty,
            indices: vec![idx],
        })
    }

    /// Binary operation.
    pub fn binop(&mut self, op: BinOp, ty: Type, lhs: Value, rhs: Value) -> Value {
        self.push(Inst::Bin { op, ty, lhs, rhs })
    }

    /// Integer comparison.
    pub fn icmp(&mut self, pred: IcmpPred, ty: Type, lhs: Value, rhs: Value) -> Value {
        self.push(Inst::Icmp { pred, ty, lhs, rhs })
    }

    /// Floating-point comparison.
    pub fn fcmp(&mut self, pred: FcmpPred, ty: Type, lhs: Value, rhs: Value) -> Value {
        self.push(Inst::Fcmp { pred, ty, lhs, rhs })
    }

    /// Type conversion.
    pub fn cast(&mut self, op: CastOp, from: Type, to: Type, val: Value) -> Value {
        self.push(Inst::Cast { op, from, to, val })
    }

    /// Ternary select.
    pub fn select(&mut self, ty: Type, cond: Value, tval: Value, fval: Value) -> Value {
        self.push(Inst::Select {
            ty,
            cond,
            tval,
            fval,
        })
    }

    /// Phi node with initial incomings (more can be patched in later via
    /// [`FunctionBuilder::add_incoming`]).
    pub fn phi(&mut self, ty: Type, incomings: Vec<(BlockId, Value)>) -> Value {
        self.push(Inst::Phi { ty, incomings })
    }

    /// Add an incoming edge to an existing phi.
    ///
    /// # Panics
    /// Panics if `phi` is not a phi instruction.
    pub fn add_incoming(&mut self, phi: Value, block: BlockId, value: Value) {
        let id = phi.as_inst().expect("phi must be an instruction");
        match self.func.inst_mut(id) {
            Inst::Phi { incomings, .. } => incomings.push((block, value)),
            _ => panic!("add_incoming on non-phi"),
        }
    }

    /// Direct call.
    pub fn call(&mut self, callee: FuncId, args: Vec<Value>, ret_ty: Type) -> Value {
        self.push(Inst::Call {
            callee: Callee::Direct(callee),
            args,
            ret_ty,
        })
    }

    /// Indirect call through a function pointer.
    pub fn call_indirect(&mut self, fptr: Value, args: Vec<Value>, ret_ty: Type) -> Value {
        self.push(Inst::Call {
            callee: Callee::Indirect(fptr),
            args,
            ret_ty,
        })
    }

    /// `ret` terminator.
    pub fn ret(&mut self, value: Option<Value>) -> InstId {
        self.push_id(Inst::Term(Terminator::Ret(value)))
    }

    /// Unconditional branch terminator.
    pub fn br(&mut self, target: BlockId) -> InstId {
        self.push_id(Inst::Term(Terminator::Br(target)))
    }

    /// Conditional branch terminator.
    pub fn cond_br(&mut self, cond: Value, then_bb: BlockId, else_bb: BlockId) -> InstId {
        self.push_id(Inst::Term(Terminator::CondBr {
            cond,
            then_bb,
            else_bb,
        }))
    }

    /// Switch terminator.
    pub fn switch(&mut self, value: Value, default: BlockId, cases: Vec<(i64, BlockId)>) -> InstId {
        self.push_id(Inst::Term(Terminator::Switch {
            value,
            default,
            cases,
        }))
    }

    /// `unreachable` terminator.
    pub fn unreachable(&mut self) -> InstId {
        self.push_id(Inst::Term(Terminator::Unreachable))
    }

    /// Finish and return the function.
    pub fn finish(self) -> Function {
        self.func
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::Module;

    #[test]
    fn build_loop_function() {
        // sum = 0; for (i = 0; i < n; i++) sum += i; return sum;
        let mut b = FunctionBuilder::new("sum_to_n", vec![("n", Type::I64)], Type::I64);
        let entry = b.entry_block();
        let header = b.block("header");
        let body = b.block("body");
        let exit = b.block("exit");

        b.switch_to(entry);
        b.br(header);

        b.switch_to(header);
        let i = b.phi(Type::I64, vec![(entry, Value::const_i64(0))]);
        let sum = b.phi(Type::I64, vec![(entry, Value::const_i64(0))]);
        let cond = b.icmp(IcmpPred::Slt, Type::I64, i, b.arg(0));
        b.cond_br(cond, body, exit);

        b.switch_to(body);
        let sum2 = b.binop(BinOp::Add, Type::I64, sum, i);
        let i2 = b.binop(BinOp::Add, Type::I64, i, Value::const_i64(1));
        b.br(header);
        b.add_incoming(i, body, i2);
        b.add_incoming(sum, body, sum2);

        b.switch_to(exit);
        b.ret(Some(sum));

        let f = b.finish();
        assert_eq!(f.num_insts(), 9);
        let mut m = Module::new("t");
        m.add_function(f);
        crate::verifier::verify_module(&m).expect("verifies");
    }

    #[test]
    #[should_panic(expected = "add_incoming on non-phi")]
    fn add_incoming_rejects_non_phi() {
        let mut b = FunctionBuilder::new("f", vec![], Type::I64);
        let entry = b.entry_block();
        b.switch_to(entry);
        let v = b.binop(
            BinOp::Add,
            Type::I64,
            Value::const_i64(1),
            Value::const_i64(2),
        );
        b.add_incoming(v, entry, Value::const_i64(0));
    }
}
