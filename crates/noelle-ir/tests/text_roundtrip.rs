//! Textual-format integration tests: tricky constructs must survive
//! print → parse → print exactly.

use noelle_ir::parser::parse_module;
use noelle_ir::printer::print_module;

fn roundtrip(src: &str) -> String {
    let m1 = parse_module(src).expect("parses");
    noelle_ir::verifier::verify_module(&m1).expect("verifies");
    let t1 = print_module(&m1);
    let m2 = parse_module(&t1).expect("reparses");
    let t2 = print_module(&m2);
    assert_eq!(t1, t2, "print/parse must reach a fixed point");
    t1
}

#[test]
fn switch_and_struct_types() {
    roundtrip(
        r#"
module "t" {
global @pair : {i64, f64} = zero
define i64 @f(i64 %x) {
entry:
  %p = gep {i64, f64}, @pair, i64 0, i32 0
  store i64 %x, %p
  switch %x, dflt [1: one] [2: two]
one:
  ret i64 1
two:
  ret i64 2
dflt:
  %v = load i64, %p
  ret %v
}
}
"#,
    );
}

#[test]
fn metadata_with_escapes() {
    let text = roundtrip(
        r#"
module "t" {
meta "quote" = "a \"quoted\" value"
meta "backslash" = "a\\b"
define void @f() {
entry:
  ret void !{"key"="line1\nline2"}
}
}
"#,
    );
    assert!(text.contains("\\\"quoted\\\""));
    assert!(text.contains("a\\\\b"));
}

#[test]
fn comments_are_ignored() {
    let m = parse_module(
        r#"
; leading comment
module "t" {
; a comment inside
define i64 @f() { ; trailing
entry:
  ret i64 1 ; after an instruction
}
}
"#,
    )
    .expect("parses with comments");
    assert_eq!(m.functions().len(), 1);
}

#[test]
fn deeply_nested_types() {
    roundtrip(
        r#"
module "t" {
global @grid : [4 x [4 x {i32, i32}]] = zero
define i32 @f(i64 %i, i64 %j) {
entry:
  %p = gep [4 x [4 x {i32, i32}]], @grid, i64 0, %i, %j, i32 1
  %v = load i32, %p
  ret %v
}
}
"#,
    );
}

#[test]
fn all_cast_ops_round_trip() {
    roundtrip(
        r#"
module "t" {
define i64 @f(f64 %x) {
entry:
  %a = fptosi f64 %x to i64
  %b = sitofp i64 %a to f64
  %c = fptrunc f64 %b to f32
  %d = fpext f32 %c to f64
  %e = bitcast f64 %d to i64
  %g = trunc i64 %e to i32
  %h = zext i32 %g to i64
  %i = sext i32 %g to i64
  %p = inttoptr i64 %h to i64*
  %q = ptrtoint i64* %p to i64
  %r = add i64 %i, %q
  ret %r
}
}
"#,
    );
}

#[test]
fn float_literal_precision_preserved() {
    let src = r#"
module "t" {
define f64 @f() {
entry:
  %a = fadd f64 f64 0.1, f64 0.2
  %b = fmul f64 %a, f64 1e-9
  %c = fadd f64 %b, f64 123456789.123456
  ret %c
}
}
"#;
    let m1 = parse_module(src).unwrap();
    let m2 = parse_module(&print_module(&m1)).unwrap();
    // Semantic equality: both modules compute bit-identical results.
    use noelle_ir::inst::Inst;
    let f1 = m1.func_by_name("f").unwrap();
    let f2 = m2.func_by_name("f").unwrap();
    for (a, b) in f1.inst_ids().into_iter().zip(f2.inst_ids()) {
        if let (
            Inst::Bin {
                lhs: l1, rhs: r1, ..
            },
            Inst::Bin {
                lhs: l2, rhs: r2, ..
            },
        ) = (f1.inst(a), f2.inst(b))
        {
            assert_eq!((l1, r1), (l2, r2));
        }
    }
}

#[test]
fn error_positions_are_reported() {
    let err = parse_module("module \"t\" {\n  garbage here\n}\n").unwrap_err();
    assert_eq!(err.line, 2);
    let err = parse_module("module \"t\" {\ndefine void @f() {\nentry:\n  store i64 i64 1\n}\n}\n")
        .unwrap_err();
    assert!(err.line >= 4, "line = {}", err.line);
}
