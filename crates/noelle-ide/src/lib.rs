//! # noelle-ide
//!
//! LSP-style incremental analysis frontend over textual `.nir` documents.
//!
//! The paper's abstractions are demand-driven and (since the incremental
//! engine landed) cheap to *repair*; this crate closes the last gap to an
//! editor session pushing analysis on every keystroke: a versioned
//! **document session** that accepts textual edits, re-parses only the
//! damaged region, maps changed functions onto the manager's edit
//! transactions, and re-lints only the damaged partitions.
//!
//! The pipeline per change:
//!
//! 1. **Line diff.** The new text is diffed against the current text by
//!    common prefix/suffix, yielding one changed line window.
//! 2. **Diff-parse.** If the window falls inside exactly one function's
//!    [`FuncSpan`] (and the document currently parses), only that snippet is
//!    re-lexed with [`parse_function_text`]; otherwise the whole text is
//!    re-parsed, and if the module *shape* (name, metadata, globals,
//!    function list) is unchanged the result is applied as an in-place
//!    multi-function edit instead of a cold reload.
//! 3. **Fingerprint gate.** Functions whose
//!    [`content_fingerprint`](noelle_ir::module::Function::content_fingerprint)
//!    is unchanged are not edits at all (comment/whitespace changes); the
//!    session just shifts its spans.
//! 4. **Damage-scoped re-lint.** Real edits go through
//!    [`Noelle::edit_with_damage`]; exactly the damage set's function-local
//!    findings are re-derived ([`run_local_checks`]) and the whole-module
//!    passes re-run ([`run_global_checks`], O(functions) without task
//!    dispatch sites). Untouched functions keep their cached findings.
//! 5. **Graceful degradation.** A parse error (snippet or whole-text)
//!    *keeps* the last-good analysis and its diagnostics; the session
//!    reports the syntax error alongside them and recovers in place once a
//!    later change parses again.
//!
//! The merged findings are byte-identical (via `render_json`) to a cold
//! parse + lint of the current document text — the property the test suite
//! checks across the whole workload corpus.

use noelle_core::json::{envelope, Json};
use noelle_core::noelle::{AliasTier, Noelle};
use noelle_ir::module::{FuncId, Module};
use noelle_ir::parser::{parse_function_text, parse_module_spanned, FuncSpan, ParseError};
use noelle_lint::{
    audit_findings, render_json, run_audit_scoped, run_global_checks, run_local_checks,
    sort_findings, Finding,
};
use noelle_plan::{plan_from_audit, PlanOptions};
use std::collections::{BTreeMap, BTreeSet};

/// One edit to a document, as carried by `ide/change`.
#[derive(Debug, Clone)]
pub enum Change {
    /// Replace the whole text.
    Full(String),
    /// Replace lines `[start_line, end_line)` (1-based, end exclusive) with
    /// `lines`. `start_line == end_line` inserts before `start_line`.
    Splice {
        start_line: usize,
        end_line: usize,
        lines: Vec<String>,
    },
}

/// Counters a session keeps about its own behavior (surfaced in the
/// daemon's `stats`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DocCounters {
    /// Changes accepted (version bumps).
    pub changes: u64,
    /// Changes served by the single-function diff-parser.
    pub incremental_reparses: u64,
    /// Changes that re-parsed the whole text.
    pub full_reparses: u64,
    /// Changes whose text failed to parse (session degraded to last-good).
    pub parse_failures: u64,
    /// Function-local re-lints performed (damage set sizes, summed).
    pub relinted_functions: u64,
    /// Functions whose parallelism audit was re-derived (damage set sizes,
    /// summed — equals `relinted_functions` since audit rides the same
    /// damage path).
    pub reaudited_functions: u64,
}

/// What one accepted change did.
#[derive(Debug, Clone)]
pub struct ChangeOutcome {
    /// Document version after the change.
    pub version: u64,
    /// True when the single-function diff-parse path served the change.
    pub incremental: bool,
    /// Names of functions whose analysis results were re-derived.
    pub changed_functions: Vec<String>,
    /// Functions re-linted (the damage set size).
    pub relinted: usize,
    /// The syntax error the text now carries, if it failed to parse.
    pub syntax_error: Option<ParseError>,
}

/// The last successfully analyzed state of a document.
struct GoodState {
    noelle: Noelle,
    /// Source spans of every `define`, in definition order, valid for the
    /// text this state was parsed from.
    spans: Vec<FuncSpan>,
    /// Function-local findings, bucketed by function name. Only buckets in
    /// the damage set of an edit are recomputed.
    local: BTreeMap<String, Vec<Finding>>,
    /// Whole-module findings (races, env-slots), recomputed per edit.
    global: Vec<Finding>,
    /// Parallelism-audit findings (NL01xx), bucketed by the loop-owning
    /// function. Re-derived for exactly the damage set of an edit — the
    /// incremental engine's damage already includes the interprocedural
    /// dependents whose loop verdicts an edit can flip.
    audit_local: BTreeMap<String, Vec<Finding>>,
    /// Body fingerprints from the last audit. The audit reads nothing but
    /// function bodies (loop structure, dependences, points-to rows,
    /// callee summaries), so a damage set whose bodies all hash unchanged
    /// — a metadata-only edit — provably cannot move any audit verdict,
    /// and `relint` skips the re-audit outright.
    body_fps: BTreeMap<FuncId, u64>,
    /// The audit buckets the *last* relint re-derived (empty when the edit
    /// was metadata-only). `ide/change` replies push exactly this delta —
    /// serializing the whole module's hints on every keystroke would make
    /// the reply O(module); pulls (`ide/diagnostics`) still get everything.
    audit_fresh: BTreeMap<String, Vec<Finding>>,
    /// Planner hints, bucketed by loop-owning function: for every loop the
    /// audit marks clean for at least one technique, the per-candidate
    /// predicted-speedup table ([`noelle_plan::LoopPlan::to_json`]). Derived
    /// from the same scoped audit `audit_local` comes from, so the planner
    /// rides the damage path for free (no second audit).
    plan_hints: BTreeMap<String, Json>,
    /// The plan buckets the *last* relint re-derived (the push delta,
    /// mirroring `audit_fresh`).
    plan_fresh: BTreeMap<String, Json>,
}

impl GoodState {
    /// Cold-start a state from a freshly parsed module: full lint, all
    /// buckets.
    fn cold(module: Module, spans: Vec<FuncSpan>, tier: AliasTier) -> GoodState {
        let mut noelle = Noelle::new(module, tier);
        let all: BTreeSet<FuncId> = noelle.module().func_ids().collect();
        let local = bucket_local(&mut noelle, &all);
        let global = run_global_checks(&mut noelle);
        let (audit_local, plan_hints) = bucket_audit(&mut noelle, &all);
        let body_fps = all
            .iter()
            .map(|&fid| (fid, noelle.module().func(fid).body_fingerprint()))
            .collect();
        let audit_fresh = audit_local.clone();
        let plan_fresh = plan_hints.clone();
        GoodState {
            noelle,
            spans,
            local,
            global,
            audit_local,
            body_fps,
            audit_fresh,
            plan_hints,
            plan_fresh,
        }
    }

    /// Re-derive the buckets of `damage` and the whole-module findings.
    /// Returns how many functions were re-audited.
    fn relint(&mut self, damage: &BTreeSet<FuncId>) -> usize {
        let fresh = bucket_local(&mut self.noelle, damage);
        // A bucket keyed by a name no longer in the module (replaced
        // function sets keep their names here, but shape changes go through
        // `cold`) would leak; damage buckets overwrite by name.
        self.local.extend(fresh);
        self.global = run_global_checks(&mut self.noelle);
        // The audit reads only function bodies; if every damaged body
        // hashes unchanged (a metadata-only edit), no verdict can move and
        // the cached hints stand as-is.
        let mut body_changed = false;
        for &fid in damage {
            let fp = self.noelle.module().func(fid).body_fingerprint();
            if self.body_fps.insert(fid, fp) != Some(fp) {
                body_changed = true;
            }
        }
        if !body_changed {
            self.audit_fresh.clear();
            self.plan_fresh.clear();
            return 0;
        }
        // Audit attribution reaches one call-graph hop beyond a function's
        // body (call sites of its direct callers, store sites of its direct
        // callees), so the audit re-derives the damage set plus that one-hop
        // closure — still proportional to the edit, never the module.
        let audit_damage = audit_closure(self.noelle.module(), damage);
        let (fresh_audit, fresh_plan) = bucket_audit(&mut self.noelle, &audit_damage);
        self.audit_fresh = fresh_audit.clone();
        self.audit_local.extend(fresh_audit);
        self.plan_fresh = fresh_plan.clone();
        self.plan_hints.extend(fresh_plan);
        audit_damage.len()
    }
}

/// `damage` plus its direct callees and direct callers: every function whose
/// audit attribution an edit inside `damage` can move.
fn audit_closure(m: &Module, damage: &BTreeSet<FuncId>) -> BTreeSet<FuncId> {
    use noelle_ir::inst::{Callee, Inst};
    let mut out = damage.clone();
    for fid in m.func_ids() {
        let f = m.func(fid);
        for &b in f.block_order() {
            for &i in &f.block(b).insts {
                if let Inst::Call {
                    callee: Callee::Direct(cid),
                    ..
                } = f.inst(i)
                {
                    // Caller damaged: its callees' cross lists move.
                    if damage.contains(&fid) {
                        out.insert(*cid);
                    }
                    // Callee damaged: its callers' impure-call evidence
                    // moves.
                    if damage.contains(cid) {
                        out.insert(fid);
                    }
                }
            }
        }
    }
    out
}

/// Run the function-local passes over `funcs` and bucket the findings by
/// function name, with an explicit empty bucket for every quiet function
/// (so stale findings are cleared, not kept).
fn bucket_local(n: &mut Noelle, funcs: &BTreeSet<FuncId>) -> BTreeMap<String, Vec<Finding>> {
    let findings = run_local_checks(n, funcs);
    let mut buckets: BTreeMap<String, Vec<Finding>> = funcs
        .iter()
        .map(|&fid| (n.module().func(fid).name.clone(), Vec::new()))
        .collect();
    for f in findings {
        buckets
            .get_mut(&f.loc.function)
            .expect("scoped finding anchors in its scope")
            .push(f);
    }
    buckets
}

/// Run the parallelism auditor over `funcs` only and bucket the NL01xx
/// findings by loop-owning function, with explicit empty buckets so a loop
/// whose blockers were just resolved drops its stale hints. The same scoped
/// audit also feeds the planner: the second map holds, per function, the
/// per-candidate predicted-speedup rows of every loop with at least one
/// clean technique (again with explicit empty buckets, so a loop that just
/// lost its last clean verdict drops its stale plan hint).
fn bucket_audit(
    n: &mut Noelle,
    funcs: &BTreeSet<FuncId>,
) -> (BTreeMap<String, Vec<Finding>>, BTreeMap<String, Json>) {
    let audit = run_audit_scoped(n, Some(funcs));
    let findings = audit_findings(n.module(), &audit);
    let mut buckets: BTreeMap<String, Vec<Finding>> = funcs
        .iter()
        .map(|&fid| (n.module().func(fid).name.clone(), Vec::new()))
        .collect();
    for f in findings {
        buckets
            .get_mut(&f.loc.function)
            .expect("audit finding anchors in an audited function")
            .push(f);
    }
    let plan = plan_from_audit(n, &audit, &PlanOptions::default());
    let mut plan_rows: BTreeMap<String, Vec<Json>> = funcs
        .iter()
        .map(|&fid| (n.module().func(fid).name.clone(), Vec::new()))
        .collect();
    for l in plan.loops.iter().filter(|l| l.any_clean()) {
        plan_rows
            .get_mut(&l.function)
            .expect("planned loop anchors in an audited function")
            .push(l.to_json());
    }
    let plan_buckets = plan_rows
        .into_iter()
        .map(|(name, rows)| (name, Json::Array(rows)))
        .collect();
    (buckets, plan_buckets)
}

/// True when `new` has the same *shape* as `old`: same module name and
/// metadata, same globals (by fingerprint), and the same function list
/// (names, order, declaration-ness). Shape-preserving re-parses can be
/// applied as in-place function swaps, keeping every undamaged cache slot.
fn same_shape(old: &Module, new: &Module) -> bool {
    old.name == new.name
        && old.metadata == new.metadata
        && old.globals_fingerprint() == new.globals_fingerprint()
        && old.functions().len() == new.functions().len()
        && old
            .functions()
            .iter()
            .zip(new.functions())
            .all(|(a, b)| a.name == b.name && a.is_declaration() == b.is_declaration())
}

fn split_lines(text: &str) -> Vec<String> {
    text.split('\n').map(str::to_string).collect()
}

/// One open document: current text (always, even when it does not parse),
/// version, and the last-good analysis state.
pub struct DocSession {
    name: String,
    lines: Vec<String>,
    version: u64,
    tier: AliasTier,
    good: Option<GoodState>,
    syntax_error: Option<ParseError>,
    counters: DocCounters,
}

impl DocSession {
    /// Open a document at version 1. A text that fails to parse still opens
    /// (there is just no analysis yet, only the syntax error).
    pub fn open(name: impl Into<String>, text: &str, tier: AliasTier) -> DocSession {
        let mut s = DocSession {
            name: name.into(),
            lines: split_lines(text),
            version: 1,
            tier,
            good: None,
            syntax_error: None,
            counters: DocCounters::default(),
        };
        match parse_module_spanned(text) {
            Ok((m, spans)) => s.good = Some(GoodState::cold(m, spans, tier)),
            Err(e) => {
                s.syntax_error = Some(e);
                s.counters.parse_failures += 1;
            }
        }
        s
    }

    /// Document name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Current version (starts at 1, bumped by every accepted change).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Current text (which may not parse; see [`DocSession::syntax_error`]).
    pub fn text(&self) -> String {
        self.lines.join("\n")
    }

    /// The alias tier the session analyzes under.
    pub fn tier(&self) -> AliasTier {
        self.tier
    }

    /// The syntax error the current text carries, if any.
    pub fn syntax_error(&self) -> Option<&ParseError> {
        self.syntax_error.as_ref()
    }

    /// Session behavior counters.
    pub fn counters(&self) -> DocCounters {
        self.counters
    }

    /// The last-good analysis manager, if the document ever parsed.
    pub fn noelle(&self) -> Option<&Noelle> {
        self.good.as_ref().map(|g| &g.noelle)
    }

    /// Spans of the last-good parse (valid for the last-good text, which is
    /// the current text exactly when [`DocSession::syntax_error`] is none).
    pub fn spans(&self) -> &[FuncSpan] {
        self.good.as_ref().map_or(&[], |g| &g.spans)
    }

    /// The merged lint findings of the last-good analysis, in canonical
    /// order — byte-identical (rendered) to a cold parse + lint of the
    /// last-good text.
    pub fn findings(&self) -> Vec<Finding> {
        let Some(g) = &self.good else {
            return Vec::new();
        };
        let mut out = g.global.clone();
        for bucket in g.local.values() {
            out.extend(bucket.iter().cloned());
        }
        sort_findings(&mut out);
        out
    }

    /// The parallelism-audit findings (NL01xx hint-severity diagnostics) of
    /// the last-good analysis, in canonical order. Kept separate from
    /// [`DocSession::findings`] so the lint report stays byte-identical to a
    /// cold `run_checks`.
    pub fn audit_findings(&self) -> Vec<Finding> {
        let Some(g) = &self.good else {
            return Vec::new();
        };
        let mut out: Vec<Finding> = g
            .audit_local
            .values()
            .flat_map(|b| b.iter().cloned())
            .collect();
        sort_findings(&mut out);
        out
    }

    /// Planner hints of the last-good analysis: `{function: [loop rows]}`,
    /// one row per loop with at least one clean technique (the per-candidate
    /// predicted-speedup table and the chosen winner).
    pub fn plan_hints(&self) -> Json {
        let Some(g) = &self.good else {
            return Json::object([]);
        };
        Json::object(g.plan_hints.iter().map(|(k, v)| (k.clone(), v.clone())))
    }

    /// The `ide/diagnostics` payload: version, syntax status, the full lint
    /// report of the last-good analysis, the live parallelism-audit hints,
    /// and the planner hints — in the versioned reply envelope.
    pub fn diagnostics_json(&self) -> Json {
        let syntax = match &self.syntax_error {
            None => Json::Null,
            Some(e) => Json::object([
                ("line".to_string(), Json::Int(e.line as i64)),
                ("message".to_string(), Json::Str(e.message.clone())),
            ]),
        };
        envelope(
            "diagnostics",
            Json::object([
                ("version".to_string(), Json::Int(self.version as i64)),
                ("syntax".to_string(), syntax),
                ("report".to_string(), render_json(&self.findings())),
                ("audit".to_string(), render_json(&self.audit_findings())),
                ("plan".to_string(), self.plan_hints()),
            ]),
        )
    }

    /// The push-style diagnostics carried by an `ide/change` reply: like
    /// [`DocSession::diagnostics_json`], but the audit section holds only
    /// the hints the *last* change re-derived (its audit closure; empty for
    /// a metadata-only edit). The editor already holds everything older, so
    /// pushing the whole module's hints per keystroke would make the reply
    /// O(module); [`DocSession::diagnostics_json`] remains the full pull.
    pub fn push_diagnostics_json(&self) -> Json {
        let syntax = match &self.syntax_error {
            None => Json::Null,
            Some(e) => Json::object([
                ("line".to_string(), Json::Int(e.line as i64)),
                ("message".to_string(), Json::Str(e.message.clone())),
            ]),
        };
        let mut fresh: Vec<Finding> = self.good.as_ref().map_or_else(Vec::new, |g| {
            g.audit_fresh
                .values()
                .flat_map(|b| b.iter().cloned())
                .collect()
        });
        sort_findings(&mut fresh);
        let fresh_plan = self.good.as_ref().map_or_else(
            || Json::object([]),
            |g| Json::object(g.plan_fresh.iter().map(|(k, v)| (k.clone(), v.clone()))),
        );
        envelope(
            "diagnostics",
            Json::object([
                ("version".to_string(), Json::Int(self.version as i64)),
                ("syntax".to_string(), syntax),
                ("report".to_string(), render_json(&self.findings())),
                ("audit".to_string(), render_json(&fresh)),
                ("plan".to_string(), fresh_plan),
            ]),
        )
    }

    /// Apply one versioned change. `version` must be strictly greater than
    /// the current version (the LSP rule: the client owns the version
    /// counter, the server detects lost or reordered edits).
    ///
    /// # Errors
    /// Returns a message when the version does not advance or a splice is
    /// out of range. The document is unchanged on error. A change whose
    /// *text* fails to parse is NOT an error: it is accepted (the document
    /// tracks what the editor holds) and the session degrades to last-good
    /// analysis plus the syntax error.
    pub fn change(&mut self, version: u64, change: Change) -> Result<ChangeOutcome, String> {
        if version <= self.version {
            return Err(format!(
                "version must advance (document at {}, change carries {version})",
                self.version
            ));
        }
        match change {
            Change::Full(text) => {
                self.counters.changes += 1;
                let new_lines = split_lines(&text);
                // Whole-text changes are diffed down to one changed window,
                // so an editor that resends the document still repairs
                // minimally.
                let Some((a, b)) = changed_window(&self.lines, &new_lines) else {
                    self.version = version; // identical text: version only
                    return Ok(self.noop_outcome(version));
                };
                let delta = new_lines.len() as isize - self.lines.len() as isize;
                self.lines = new_lines;
                Ok(self.repair(version, a, b, delta))
            }
            Change::Splice {
                start_line,
                end_line,
                lines,
            } => {
                if start_line < 1 || start_line > end_line || end_line > self.lines.len() + 1 {
                    return Err(format!(
                        "splice [{start_line},{end_line}) out of range for {} lines",
                        self.lines.len()
                    ));
                }
                self.counters.changes += 1;
                // Trim the splice to the lines that actually differ (a
                // sloppy client window still repairs minimally), then apply
                // it in place: the tail of the document *moves*, it is
                // never copied — the document costs O(edit), not O(text).
                let (mut s, mut e, mut repl) = (start_line, end_line, lines);
                let mut p = 0;
                while s < e && p < repl.len() && self.lines[s - 1] == repl[p] {
                    s += 1;
                    p += 1;
                }
                repl.drain(..p);
                while e > s && !repl.is_empty() && self.lines[e - 2] == repl[repl.len() - 1] {
                    e -= 1;
                    repl.pop();
                }
                if s == e && repl.is_empty() {
                    self.version = version; // no-op edit: version only
                    return Ok(self.noop_outcome(version));
                }
                let delta = repl.len() as isize - (e - s) as isize;
                // Inclusive old-line window; `b < a` encodes pure insertion.
                let (a, b) = (s, e - 1);
                self.lines.splice(s - 1..e - 1, repl);
                Ok(self.repair(version, a, b, delta))
            }
        }
    }

    /// The outcome of a change that did not alter the text.
    fn noop_outcome(&self, version: u64) -> ChangeOutcome {
        ChangeOutcome {
            version,
            incremental: true,
            changed_functions: Vec::new(),
            relinted: 0,
            syntax_error: self.syntax_error.clone(),
        }
    }

    /// Repair the analysis after `self.lines` took an edit whose changed
    /// old-line window was `[a, b]` (inclusive; `b < a` is an insertion)
    /// with line-count `delta`.
    fn repair(&mut self, version: u64, a: usize, b: usize, delta: isize) -> ChangeOutcome {
        // The single-function path needs a good state whose spans describe
        // the pre-edit lines — i.e. the document parsed before this edit.
        if self.good.is_some() && self.syntax_error.is_none() {
            if let Some(outcome) = self.try_incremental(version, a, b, delta) {
                self.version = version;
                return outcome;
            }
        }
        let outcome = self.full_reparse(version);
        self.version = version;
        outcome
    }

    /// The diff-parse fast path: if the changed line window is confined to
    /// one function's span, re-parse just that snippet. `None` means "take
    /// the full-reparse path" (window not confined, snippet failed, or the
    /// function was renamed). `self.lines` already holds the new text.
    fn try_incremental(
        &mut self,
        version: u64,
        a: usize,
        b: usize,
        delta: isize,
    ) -> Option<ChangeOutcome> {
        // An empty window (pure insertion between old lines a-1 and a) must
        // sit strictly inside a span; a non-empty window must be covered.
        let (lo, hi) = if b < a { (a - 1, a) } else { (a, b) };
        let g = self.good.as_mut().expect("checked by caller");
        let idx = g
            .spans
            .iter()
            .position(|s| s.start_line <= lo && hi <= s.end_line)?;
        let span = &g.spans[idx];
        let new_end = (span.end_line as isize + delta) as usize;
        let snippet = self.lines[span.start_line - 1..new_end].join("\n");
        let f = parse_function_text(g.noelle.module(), &snippet).ok()?;
        if f.name != span.name {
            return None; // rename changes the symbol table: full reparse
        }
        let fid = g
            .noelle
            .module()
            .func_id_by_name(&span.name)
            .expect("span names a module function");
        self.counters.incremental_reparses += 1;
        // Shift every span at or after the edit by the line delta.
        for s in g.spans.iter_mut().skip(idx) {
            if s.start_line > hi {
                s.start_line = (s.start_line as isize + delta) as usize;
            }
            if s.end_line >= hi {
                s.end_line = (s.end_line as isize + delta) as usize;
            }
        }
        if f.content_fingerprint() == g.noelle.module().func(fid).content_fingerprint() {
            // Comment/whitespace-only: no semantic change, nothing to
            // re-lint.
            return Some(ChangeOutcome {
                version,
                incremental: true,
                changed_functions: Vec::new(),
                relinted: 0,
                syntax_error: None,
            });
        }
        let ((), damage) = g.noelle.edit_with_damage(|tx| {
            *tx.func_mut(fid) = f;
        });
        let reaudited = g.relint(&damage);
        self.counters.relinted_functions += damage.len() as u64;
        self.counters.reaudited_functions += reaudited as u64;
        let changed_functions = damage
            .iter()
            .map(|&d| g.noelle.module().func(d).name.clone())
            .collect();
        Some(ChangeOutcome {
            version,
            incremental: true,
            changed_functions,
            relinted: damage.len(),
            syntax_error: None,
        })
    }

    /// The whole-text path: re-parse everything; apply shape-preserving
    /// results as in-place function swaps, rebuild from cold otherwise, and
    /// degrade to last-good on a parse error.
    fn full_reparse(&mut self, version: u64) -> ChangeOutcome {
        let text = self.lines.join("\n");
        match parse_module_spanned(&text) {
            Err(e) => {
                self.counters.parse_failures += 1;
                self.syntax_error = Some(e.clone());
                ChangeOutcome {
                    version,
                    incremental: false,
                    changed_functions: Vec::new(),
                    relinted: 0,
                    syntax_error: Some(e),
                }
            }
            Ok((mut m, spans)) => {
                self.counters.full_reparses += 1;
                self.syntax_error = None;
                let reusable = self
                    .good
                    .as_ref()
                    .is_some_and(|g| same_shape(g.noelle.module(), &m));
                if reusable {
                    let g = self.good.as_mut().expect("checked");
                    let swap: Vec<FuncId> = g
                        .noelle
                        .module()
                        .func_ids()
                        .filter(|&fid| {
                            g.noelle.module().func(fid).content_fingerprint()
                                != m.func(fid).content_fingerprint()
                        })
                        .collect();
                    g.spans = spans;
                    if swap.is_empty() {
                        return ChangeOutcome {
                            version,
                            incremental: false,
                            changed_functions: Vec::new(),
                            relinted: 0,
                            syntax_error: None,
                        };
                    }
                    let ((), damage) = g.noelle.edit_with_damage(|tx| {
                        for &fid in &swap {
                            std::mem::swap(tx.func_mut(fid), m.func_mut(fid));
                        }
                    });
                    let reaudited = g.relint(&damage);
                    self.counters.relinted_functions += damage.len() as u64;
                    self.counters.reaudited_functions += reaudited as u64;
                    let changed_functions = damage
                        .iter()
                        .map(|&d| g.noelle.module().func(d).name.clone())
                        .collect();
                    ChangeOutcome {
                        version,
                        incremental: false,
                        changed_functions,
                        relinted: damage.len(),
                        syntax_error: None,
                    }
                } else {
                    let changed_functions = m.functions().iter().map(|f| f.name.clone()).collect();
                    let relinted = m.functions().len();
                    self.good = Some(GoodState::cold(m, spans, self.tier));
                    self.counters.relinted_functions += relinted as u64;
                    self.counters.reaudited_functions += relinted as u64;
                    ChangeOutcome {
                        version,
                        incremental: false,
                        changed_functions,
                        relinted,
                        syntax_error: None,
                    }
                }
            }
        }
    }
}

/// The changed line window between two texts, as 1-based inclusive old-line
/// bounds `(a, b)`; `b == a - 1` encodes a pure insertion between old lines
/// `a-1` and `a`. `None` when the texts are identical.
fn changed_window(old: &[String], new: &[String]) -> Option<(usize, usize)> {
    let mut p = 0;
    while p < old.len() && p < new.len() && old[p] == new[p] {
        p += 1;
    }
    if p == old.len() && p == new.len() {
        return None;
    }
    let mut s = 0;
    while s < old.len() - p && s < new.len() - p && old[old.len() - 1 - s] == new[new.len() - 1 - s]
    {
        s += 1;
    }
    Some((p + 1, old.len() - s))
}

#[cfg(test)]
mod tests {
    use super::*;
    use noelle_ir::parser::parse_module;
    use noelle_lint::run_checks;

    const SRC: &str = "module \"demo\" {\n\
global @g : i64 = i64 0\n\
define i64 @id(i64 %x) {\n\
entry:\n\
  ret %x\n\
}\n\
define i64 @twice(i64 %x) {\n\
entry:\n\
  %a = call i64 @id(%x)\n\
  %b = add i64 %a, %a\n\
  %dead = add i64 %x, i64 1\n\
  ret %b\n\
}\n\
}";

    fn cold_findings(text: &str) -> Vec<Finding> {
        let m = parse_module(text).expect("final text parses");
        let mut n = Noelle::new(m, AliasTier::Basic);
        run_checks(&mut n, "all").expect("all is a known check")
    }

    fn assert_matches_cold(s: &DocSession) {
        let session = render_json(&s.findings()).to_string_compact();
        let cold = render_json(&cold_findings(&s.text())).to_string_compact();
        assert_eq!(session, cold, "session diagnostics == cold parse+lint");
    }

    #[test]
    fn open_lints_and_matches_cold_run() {
        let s = DocSession::open("d", SRC, AliasTier::Basic);
        assert_eq!(s.version(), 1);
        assert!(s.syntax_error().is_none());
        // @twice has a dead pure instruction (NL0006).
        assert!(s.findings().iter().any(|f| f.code == "NL0006"));
        assert_matches_cold(&s);
    }

    #[test]
    fn single_function_edit_is_incremental() {
        let mut s = DocSession::open("d", SRC, AliasTier::Basic);
        // Fix the dead instruction in @twice (line 11, 1-based).
        let out = s
            .change(
                2,
                Change::Splice {
                    start_line: 11,
                    end_line: 12,
                    lines: vec!["  %dead = add i64 %b, i64 1".into(), "  ret %dead".into()],
                },
            )
            .expect("valid change");
        assert!(out.incremental, "confined edit takes the snippet path");
        assert!(out.changed_functions.contains(&"twice".to_string()));
        assert_eq!(s.version(), 2);
        assert_eq!(s.counters().incremental_reparses, 1);
        assert_matches_cold(&s);
        // There are now two rets; make the text valid by removing the old
        // one (still incremental).
        let out = s
            .change(
                3,
                Change::Splice {
                    start_line: 12,
                    end_line: 13,
                    lines: vec![],
                },
            )
            .expect("valid change");
        assert!(out.incremental);
        assert_matches_cold(&s);
    }

    #[test]
    fn comment_only_edit_relints_nothing() {
        let mut s = DocSession::open("d", SRC, AliasTier::Basic);
        let out = s
            .change(
                2,
                Change::Splice {
                    start_line: 4,
                    end_line: 4,
                    lines: vec!["; a comment".into()],
                },
            )
            .expect("valid change");
        assert!(out.incremental);
        assert_eq!(out.relinted, 0, "same fingerprint, no re-lint");
        assert_eq!(s.counters().relinted_functions, 0);
        assert_matches_cold(&s);
    }

    #[test]
    fn parse_error_degrades_to_last_good_and_recovers() {
        let mut s = DocSession::open("d", SRC, AliasTier::Basic);
        let before = render_json(&s.findings()).to_string_compact();
        let out = s
            .change(
                2,
                Change::Splice {
                    start_line: 5,
                    end_line: 6,
                    lines: vec!["  ret %nope".into()],
                },
            )
            .expect("broken text is still accepted");
        assert!(out.syntax_error.is_some());
        assert!(s.syntax_error().is_some());
        // Last-good diagnostics survive the broken edit.
        assert_eq!(render_json(&s.findings()).to_string_compact(), before);
        assert_eq!(s.counters().parse_failures, 1);
        // A later change fixing the text recovers in place.
        let out = s
            .change(
                3,
                Change::Splice {
                    start_line: 5,
                    end_line: 6,
                    lines: vec!["  ret %x".into()],
                },
            )
            .expect("fixed text accepted");
        assert!(out.syntax_error.is_none());
        assert!(s.syntax_error().is_none());
        assert_matches_cold(&s);
    }

    #[test]
    fn module_level_edit_falls_back_to_full_reparse() {
        let mut s = DocSession::open("d", SRC, AliasTier::Basic);
        // Change the global initializer: outside every span, and a new
        // globals fingerprint, so the cold path runs.
        let out = s
            .change(
                2,
                Change::Splice {
                    start_line: 2,
                    end_line: 3,
                    lines: vec!["global @g : i64 = i64 7".into()],
                },
            )
            .expect("valid change");
        assert!(!out.incremental);
        assert_eq!(s.counters().full_reparses, 1);
        assert_matches_cold(&s);
    }

    #[test]
    fn full_text_change_with_same_shape_swaps_in_place() {
        let mut s = DocSession::open("d", SRC, AliasTier::Basic);
        let new_text = s.text().replace("%a, %a", "%a, %x");
        let out = s.change(2, Change::Full(new_text)).expect("valid change");
        // Whole-text changes skip the window diff only when asked to; this
        // one is still confined to @twice, so the window diff catches it.
        assert!(out.incremental);
        assert_matches_cold(&s);
    }

    #[test]
    fn version_must_advance() {
        let mut s = DocSession::open("d", SRC, AliasTier::Basic);
        assert!(s.change(1, Change::Full(SRC.into())).is_err());
        assert!(s.change(0, Change::Full(SRC.into())).is_err());
        assert_eq!(s.version(), 1);
    }

    #[test]
    fn open_with_broken_text_then_fix() {
        let mut s = DocSession::open("d", "module \"x\" {", AliasTier::Basic);
        assert!(s.syntax_error().is_some());
        assert!(s.findings().is_empty());
        let out = s.change(2, Change::Full(SRC.into())).expect("accepted");
        assert!(out.syntax_error.is_none());
        assert_matches_cold(&s);
    }

    const LOOP_SRC: &str = "module \"aud\" {\n\
define i64 @kernel(i64* %a, i64 %n) {\n\
entry:\n\
  br header\n\
header:\n\
  %i = phi i64 [entry: i64 0] [body: %i2]\n\
  %s = phi i64 [entry: i64 0] [body: %s2]\n\
  %c = icmp slt i64 %i, %n\n\
  condbr %c, body, exit\n\
body:\n\
  %p = gep i64, %a, %i\n\
  %v = load i64, %p\n\
  %s2 = add i64 %s, %v\n\
  %i2 = add i64 %i, i64 1\n\
  br header\n\
exit:\n\
  ret %s\n\
}\n\
define i64 @main() {\n\
entry:\n\
  %buf = alloca i64, i64 8\n\
  %r = call i64 @kernel(%buf, i64 8)\n\
  ret %r\n\
}\n\
}";

    fn assert_audit_matches_cold(s: &DocSession) {
        let m = parse_module(&s.text()).expect("final text parses");
        let mut n = Noelle::new(m, s.tier());
        let audit = noelle_lint::run_audit(&mut n);
        let cold =
            render_json(&noelle_lint::audit_findings(n.module(), &audit)).to_string_compact();
        let live = render_json(&s.audit_findings()).to_string_compact();
        assert_eq!(live, cold, "live audit == cold audit of current text");
    }

    #[test]
    fn audit_hints_flow_incrementally() {
        let mut s = DocSession::open("d", LOOP_SRC, AliasTier::Full);
        assert!(s.syntax_error().is_none());
        assert_audit_matches_cold(&s);
        // Introduce a loop-carried memory recurrence through %a: the edit
        // is confined to @kernel, and the audit hints must move with it.
        let out = s
            .change(
                2,
                Change::Splice {
                    start_line: 13,
                    end_line: 13,
                    lines: vec!["  store i64 %s2, %p".into()],
                },
            )
            .expect("valid change");
        assert!(out.incremental, "confined edit takes the snippet path");
        assert!(s.counters().reaudited_functions > 0);
        assert_audit_matches_cold(&s);
        let hints = s.audit_findings();
        assert!(
            hints.iter().any(|f| f.code.starts_with("NL01")),
            "the recurrence surfaces as a live NL01xx hint: {hints:?}"
        );
        assert!(
            hints
                .iter()
                .all(|f| f.severity == noelle_lint::Severity::Hint),
            "audit diagnostics are hint-severity"
        );
        // Revert: the hint disappears again, still incrementally.
        let out = s
            .change(
                3,
                Change::Splice {
                    start_line: 13,
                    end_line: 14,
                    lines: vec![],
                },
            )
            .expect("valid change");
        assert!(out.incremental);
        assert_audit_matches_cold(&s);
    }

    #[test]
    fn diagnostics_payload_carries_audit_section() {
        let s = DocSession::open("d", LOOP_SRC, AliasTier::Full);
        let doc = s.diagnostics_json().to_string_compact();
        assert!(doc.contains("\"audit\""), "{doc}");
        assert!(doc.contains("\"kind\":\"diagnostics\""), "{doc}");
    }

    #[test]
    fn plan_hints_track_edits() {
        let mut s = DocSession::open("d", LOOP_SRC, AliasTier::Full);
        // The reduction loop in @kernel is clean for DOALL, so the cold
        // open already carries a plan hint with a predicted speedup.
        let doc = s.diagnostics_json().to_string_compact();
        assert!(doc.contains("\"plan\""), "{doc}");
        let hints = s.plan_hints();
        let kernel = hints.get("kernel").expect("kernel bucket");
        assert!(
            kernel.to_string_compact().contains("predicted_speedup"),
            "{hints:?}"
        );
        // Introduce a loop-carried memory recurrence: the loop loses its
        // clean verdicts and the hint disappears from the same bucket.
        s.change(
            2,
            Change::Splice {
                start_line: 13,
                end_line: 13,
                lines: vec!["  store i64 %s2, %p".into()],
            },
        )
        .expect("valid change");
        let kernel = s.plan_hints().get("kernel").cloned().expect("bucket kept");
        assert_eq!(
            kernel.to_string_compact(),
            "[]",
            "blocked loop drops its plan hint"
        );
    }

    #[test]
    fn rename_falls_back_and_stays_correct() {
        let mut s = DocSession::open("d", SRC, AliasTier::Basic);
        let renamed = s.text().replace("@id", "@ident");
        let out = s.change(2, Change::Full(renamed)).expect("accepted");
        assert!(!out.incremental, "rename rewrites the symbol table");
        assert_matches_cold(&s);
    }
}
