//! The Reduction (RD) abstraction: identification of reducible variables of
//! a loop and support for parallelizing them by accumulator cloning
//! (`s += work(d)` becomes per-task partial sums combined after the join).

use noelle_ir::inst::{BinOp, Inst, InstId};
use noelle_ir::loops::LoopInfo;
use noelle_ir::module::Function;
use noelle_ir::types::Type;
use noelle_ir::value::{Constant, Value};
use noelle_pdg::sccdag::{SccDag, SccKind};

/// A reducible variable of a loop.
#[derive(Clone, Debug)]
pub struct Reduction {
    /// The accumulator phi in the loop header.
    pub phi: InstId,
    /// The commutative/associative operator.
    pub op: BinOp,
    /// The accumulator's type.
    pub ty: Type,
    /// The initial value flowing into the phi from outside the loop.
    pub initial: Value,
}

impl Reduction {
    /// The identity constant for this reduction at its type.
    pub fn identity(&self) -> Constant {
        identity_for(self.op, &self.ty)
    }
}

/// Identity element of `op` at type `ty`.
pub fn identity_for(op: BinOp, ty: &Type) -> Constant {
    use noelle_ir::types::{FloatWidth, IntWidth};
    match ty {
        Type::Float(w) => {
            let v = match op {
                BinOp::FAdd => 0.0,
                BinOp::FMul => 1.0,
                BinOp::FMax => f64::NEG_INFINITY,
                BinOp::FMin => f64::INFINITY,
                _ => 0.0,
            };
            match w {
                FloatWidth::F64 => Constant::f64(v),
                FloatWidth::F32 => Constant::f32(v as f32),
            }
        }
        Type::Int(w) => {
            let v = match op {
                BinOp::Add | BinOp::Or | BinOp::Xor => 0,
                BinOp::Mul => 1,
                BinOp::And => -1,
                BinOp::SMax => match w {
                    IntWidth::I64 => i64::MIN,
                    IntWidth::I32 => i32::MIN as i64,
                    IntWidth::I16 => i16::MIN as i64,
                    IntWidth::I8 => i8::MIN as i64,
                    IntWidth::I1 => 0,
                },
                BinOp::SMin => match w {
                    IntWidth::I64 => i64::MAX,
                    IntWidth::I32 => i32::MAX as i64,
                    IntWidth::I16 => i16::MAX as i64,
                    IntWidth::I8 => i8::MAX as i64,
                    IntWidth::I1 => 1,
                },
                _ => 0,
            };
            Constant::Int(v, *w)
        }
        _ => Constant::Int(0, IntWidth::I64),
    }
}

/// Identify the reducible variables of `l` from its aSCCDAG: every
/// [`SccKind::Reducible`] node yields one [`Reduction`].
pub fn reductions(f: &Function, l: &LoopInfo, dag: &SccDag) -> Vec<Reduction> {
    let mut out = Vec::new();
    for node in dag.nodes() {
        if node.kind != SccKind::Reducible {
            continue;
        }
        let (Some(phi), Some(op)) = (node.reduction_phi, node.reduction_op) else {
            continue;
        };
        let Inst::Phi { ty, incomings } = f.inst(phi) else {
            continue;
        };
        let initial = incomings
            .iter()
            .find(|(b, _)| !l.contains(*b))
            .map(|(_, v)| *v)
            .unwrap_or(Value::Const(identity_for(op, ty)));
        out.push(Reduction {
            phi,
            op,
            ty: ty.clone(),
            initial,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use noelle_analysis::alias::BasicAlias;
    use noelle_ir::builder::FunctionBuilder;
    use noelle_ir::cfg::Cfg;
    use noelle_ir::dom::DomTree;
    use noelle_ir::inst::IcmpPred;
    use noelle_ir::loops::LoopForest;
    use noelle_ir::module::Module;
    use noelle_pdg::pdg::PdgBuilder;

    #[test]
    fn identities() {
        assert_eq!(
            identity_for(BinOp::Add, &Type::I64),
            Constant::Int(0, noelle_ir::types::IntWidth::I64)
        );
        assert_eq!(
            identity_for(BinOp::Mul, &Type::I32),
            Constant::Int(1, noelle_ir::types::IntWidth::I32)
        );
        assert_eq!(identity_for(BinOp::FAdd, &Type::F64), Constant::f64(0.0));
        assert_eq!(
            identity_for(BinOp::SMax, &Type::I64),
            Constant::Int(i64::MIN, noelle_ir::types::IntWidth::I64)
        );
        assert_eq!(
            identity_for(BinOp::FMin, &Type::F64),
            Constant::f64(f64::INFINITY)
        );
    }

    #[test]
    fn finds_max_reduction() {
        // for (i...) best = max(best, a[i])
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(
            "k",
            vec![("a", Type::I64.ptr_to()), ("n", Type::I64)],
            Type::I64,
        );
        let entry = b.entry_block();
        let header = b.block("header");
        let body = b.block("body");
        let exit = b.block("exit");
        b.switch_to(entry);
        b.br(header);
        b.switch_to(header);
        let i = b.phi(Type::I64, vec![(entry, Value::const_i64(0))]);
        let best = b.phi(Type::I64, vec![(entry, Value::const_i64(i64::MIN))]);
        let c = b.icmp(IcmpPred::Slt, Type::I64, i, b.arg(1));
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let p = b.index_ptr(Type::I64, b.arg(0), i);
        let v = b.load(Type::I64, p);
        let best2 = b.binop(BinOp::SMax, Type::I64, best, v);
        let i2 = b.binop(BinOp::Add, Type::I64, i, Value::const_i64(1));
        b.br(header);
        b.add_incoming(i, body, i2);
        b.add_incoming(best, body, best2);
        b.switch_to(exit);
        b.ret(Some(best));
        let fid = m.add_function(b.finish());
        let f = m.func(fid);
        let cfg = Cfg::new(f);
        let dt = DomTree::new(f, &cfg);
        let forest = LoopForest::new(f, &cfg, &dt);
        let l = forest.loops()[0].clone();
        let basic = BasicAlias::new(&m);
        let builder = PdgBuilder::new(&m, &basic);
        let g = builder.loop_pdg(fid, &l);
        let dag = SccDag::new(f, &l, &g);
        let rds = reductions(f, &l, &dag);
        assert_eq!(rds.len(), 1);
        assert_eq!(rds[0].op, BinOp::SMax);
        assert_eq!(rds[0].phi, best.as_inst().unwrap());
        assert_eq!(rds[0].initial, Value::const_i64(i64::MIN));
        assert_eq!(
            rds[0].identity(),
            Constant::Int(i64::MIN, noelle_ir::types::IntWidth::I64)
        );
    }
}
