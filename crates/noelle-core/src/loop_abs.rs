//! The Loop (L) abstraction: the canonical loop bundle.
//!
//! "This abstraction includes a representation of the loop structure (LS)
//! [...] The abstraction L adds to LS the loop dependence graph (computed
//! from the PDG) and the loop-specific instances of the abstractions IV and
//! INV" — plus, per Table 1, its SCCDAG, reductions, and exits.

use crate::env::Environment;
use crate::induction::{ivs_noelle, InductionVariables};
use crate::invariants::{invariants_noelle, InvariantSet};
use crate::reduction::{reductions, Reduction};
use noelle_analysis::scev::const_trip_count;
use noelle_ir::inst::InstId;
use noelle_ir::loops::LoopInfo;
use noelle_ir::module::FuncId;
use noelle_pdg::depgraph::DepGraph;
use noelle_pdg::pdg::PdgBuilder;
use noelle_pdg::sccdag::{SccDag, SccKind};
use std::collections::BTreeSet;

/// The canonical loop: structure + dependences + semantic views.
#[derive(Debug)]
pub struct LoopAbstraction {
    /// Owning function.
    pub fid: FuncId,
    /// The loop structure (LS).
    pub structure: LoopInfo,
    /// The loop dependence graph (from the PDG, loop-refined).
    pub pdg: DepGraph<InstId>,
    /// The augmented SCCDAG.
    pub sccdag: SccDag,
    /// Induction variables (NOELLE detection).
    pub ivs: InductionVariables,
    /// Loop invariants (Algorithm 2).
    pub invariants: InvariantSet,
    /// Reducible variables.
    pub reductions: Vec<Reduction>,
    /// Constant trip count, when statically known.
    pub trip_count: Option<i64>,
    /// Live-ins/live-outs of the loop.
    pub env: Environment,
}

impl LoopAbstraction {
    /// Build the full bundle for loop `l` of `fid` using `builder`'s alias
    /// stack. This is the expensive, on-demand computation the `Noelle`
    /// manager caches.
    pub fn build(builder: &PdgBuilder<'_>, fid: FuncId, l: LoopInfo) -> LoopAbstraction {
        let function_graph = builder.function_pdg(fid);
        LoopAbstraction::build_with(builder, fid, l, &function_graph)
    }

    /// [`LoopAbstraction::build`] carving from an already-built function
    /// PDG — the `Noelle` manager passes its cached whole-program graph so
    /// requesting several loop abstractions of one function analyzes the
    /// function once.
    pub fn build_with(
        builder: &PdgBuilder<'_>,
        fid: FuncId,
        l: LoopInfo,
        function_graph: &DepGraph<InstId>,
    ) -> LoopAbstraction {
        let m = builder.module();
        let f = m.func(fid);
        let pdg = builder.loop_pdg_with(fid, &l, function_graph);
        let sccdag = SccDag::new(f, &l, &pdg);
        let ivs = ivs_noelle(f, &l);
        let invariants = invariants_noelle(f, &l, &pdg);
        let reds = reductions(f, &l, &sccdag);
        let trip_count = const_trip_count(f, &l);
        let env = Environment::for_loop(m, f, &l);
        LoopAbstraction {
            fid,
            structure: l,
            pdg,
            sccdag,
            ivs,
            invariants,
            reductions: reds,
            trip_count,
            env,
        }
    }

    /// Instructions that belong to IV recurrences or reducible SCCs — the
    /// loop-carried cycles a parallelizer knows how to handle specially.
    pub fn handled_recurrence_insts(&self) -> BTreeSet<InstId> {
        let mut out = self.ivs.recurrence_insts();
        for node in self.sccdag.nodes() {
            if node.kind == SccKind::Reducible {
                out.extend(node.insts.iter().copied());
            }
        }
        out
    }

    /// DOALL legality: every loop-carried data dependence is confined to IV
    /// recurrences or reducible SCCs, and the loop has a governing IV with a
    /// single exit.
    pub fn is_doall(&self) -> bool {
        if self.ivs.governing().is_none() {
            return false;
        }
        if self.structure.exit_blocks().len() != 1 {
            return false;
        }
        let handled = self.handled_recurrence_insts();
        !self.pdg.edges().iter().any(|e| {
            e.attrs.loop_carried
                && e.attrs.is_data()
                && self.pdg.is_internal(e.src)
                && self.pdg.is_internal(e.dst)
                && !(handled.contains(&e.src) && handled.contains(&e.dst))
        })
    }

    /// The sequential SCC ids of this loop (HELIX's sequential segments).
    /// Induction-variable SCCs are excluded: each core recomputes its own IV
    /// instead of serializing on it.
    pub fn sequential_sccs(&self) -> Vec<usize> {
        self.sccdag
            .sequential_sccs()
            .into_iter()
            .filter(|&s| !self.sccdag.nodes()[s].is_induction)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noelle_analysis::alias::BasicAlias;
    use noelle_ir::builder::FunctionBuilder;
    use noelle_ir::cfg::Cfg;
    use noelle_ir::dom::DomTree;
    use noelle_ir::inst::{BinOp, IcmpPred};
    use noelle_ir::loops::LoopForest;
    use noelle_ir::module::Module;
    use noelle_ir::types::Type;
    use noelle_ir::value::Value;

    fn sum_loop() -> (Module, FuncId, LoopInfo) {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(
            "k",
            vec![("a", Type::I64.ptr_to()), ("n", Type::I64)],
            Type::I64,
        );
        let entry = b.entry_block();
        let header = b.block("header");
        let body = b.block("body");
        let exit = b.block("exit");
        b.switch_to(entry);
        b.br(header);
        b.switch_to(header);
        let i = b.phi(Type::I64, vec![(entry, Value::const_i64(0))]);
        let sum = b.phi(Type::I64, vec![(entry, Value::const_i64(0))]);
        let c = b.icmp(IcmpPred::Slt, Type::I64, i, b.arg(1));
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let p = b.index_ptr(Type::I64, b.arg(0), i);
        let v = b.load(Type::I64, p);
        let sum2 = b.binop(BinOp::Add, Type::I64, sum, v);
        let i2 = b.binop(BinOp::Add, Type::I64, i, Value::const_i64(1));
        b.br(header);
        b.add_incoming(i, body, i2);
        b.add_incoming(sum, body, sum2);
        b.switch_to(exit);
        b.ret(Some(sum));
        let fid = m.add_function(b.finish());
        let f = m.func(fid);
        let cfg = Cfg::new(f);
        let dt = DomTree::new(f, &cfg);
        let forest = LoopForest::new(f, &cfg, &dt);
        let l = forest.loops()[0].clone();
        (m, fid, l)
    }

    #[test]
    fn bundle_contains_all_views() {
        let (m, fid, l) = sum_loop();
        let basic = BasicAlias::new(&m);
        let builder = PdgBuilder::new(&m, &basic);
        let la = LoopAbstraction::build(&builder, fid, l);
        assert_eq!(la.ivs.len(), 1);
        assert!(la.ivs.governing().is_some());
        assert_eq!(la.reductions.len(), 1);
        assert!(la.trip_count.is_none()); // bound is an argument
        assert_eq!(la.env.live_ins.len(), 2);
        assert_eq!(la.env.live_outs.len(), 1);
        assert!(!la.invariants.is_empty() || la.invariants.is_empty()); // computed
        assert!(la.sccdag.nodes().len() >= 3);
    }

    #[test]
    fn sum_loop_is_doall_with_reduction() {
        let (m, fid, l) = sum_loop();
        let basic = BasicAlias::new(&m);
        let builder = PdgBuilder::new(&m, &basic);
        let la = LoopAbstraction::build(&builder, fid, l);
        // The only carried cycles are the IV and the reducible sum.
        assert!(la.is_doall());
        assert!(la.sequential_sccs().is_empty());
    }

    #[test]
    fn pointer_chase_is_not_doall() {
        // while (p) { count++; p = p->next }
        let mut m = Module::new("t");
        let node_ty = Type::I64.ptr_to(); // next pointer only
        let mut b = FunctionBuilder::new("k", vec![("head", node_ty.ptr_to())], Type::I64);
        let entry = b.entry_block();
        let header = b.block("header");
        let body = b.block("body");
        let exit = b.block("exit");
        b.switch_to(entry);
        b.br(header);
        b.switch_to(header);
        let p = b.phi(node_ty.clone().ptr_to(), vec![(entry, Value::Arg(0))]);
        let cnt = b.phi(Type::I64, vec![(entry, Value::const_i64(0))]);
        let c = b.icmp(
            IcmpPred::Ne,
            node_ty.clone().ptr_to(),
            p,
            Value::Const(noelle_ir::value::Constant::Null),
        );
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let cnt2 = b.binop(BinOp::Add, Type::I64, cnt, Value::const_i64(1));
        let next = b.load(node_ty.clone(), p);
        let next_cast = b.cast(
            noelle_ir::inst::CastOp::Bitcast,
            node_ty.clone(),
            node_ty.ptr_to(),
            next,
        );
        b.br(header);
        b.add_incoming(p, body, next_cast);
        b.add_incoming(cnt, body, cnt2);
        b.switch_to(exit);
        b.ret(Some(cnt));
        let fid = m.add_function(b.finish());
        let f = m.func(fid);
        let cfg = Cfg::new(f);
        let dt = DomTree::new(f, &cfg);
        let forest = LoopForest::new(f, &cfg, &dt);
        let l = forest.loops()[0].clone();
        let basic = BasicAlias::new(&m);
        let builder = PdgBuilder::new(&m, &basic);
        let la = LoopAbstraction::build(&builder, fid, l);
        // The pointer chase is a sequential recurrence: no governing IV.
        assert!(!la.is_doall());
    }
}
