//! The AUDIT abstraction: per-loop parallelism blocker attribution.
//!
//! For every loop, the auditor answers *why* a parallelization technique
//! (DOALL, HELIX, DSWP) does not apply, naming the exact instructions and
//! dependences at fault and a resolution hint for each. This is the static
//! half of a parallelization planner: the paper's abstractions (PDG,
//! aSCCDAG, IV, RD, mod/ref) already carry everything needed to explain a
//! refusal, not just to issue one.
//!
//! This module owns the *data model* and the dependence-level classifier,
//! which only needs the loop abstraction and the mod/ref summaries. The
//! technique verdicts themselves (does DOALL/HELIX/DSWP actually apply?)
//! are computed by `noelle-lint`'s audit driver against the transforms'
//! own gate prechecks, so a "clean" verdict is the transform's judgment,
//! not a re-implementation of it.

use crate::json::Json;
use crate::loop_abs::LoopAbstraction;
use noelle_analysis::modref::ModRefSummaries;
use noelle_ir::inst::{Inst, InstId};
use noelle_ir::module::{BlockId, FuncId, Module};
use noelle_pdg::depgraph::{DataDepKind, DepKind};
use noelle_pdg::sccdag::SccKind;
use std::collections::BTreeSet;

/// A parallelization technique the auditor issues a verdict for.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Technique {
    /// Iteration distribution with no cross-iteration ordering.
    Doall,
    /// Iteration distribution with ordered sequential segments.
    Helix,
    /// SCC distribution into pipeline stages.
    Dswp,
}

impl Technique {
    /// Stable lowercase name used in reports and JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            Technique::Doall => "doall",
            Technique::Helix => "helix",
            Technique::Dswp => "dswp",
        }
    }

    /// All techniques, in report order.
    pub fn all() -> [Technique; 3] {
        [Technique::Doall, Technique::Helix, Technique::Dswp]
    }
}

/// What kind of obstacle blocks a technique on a loop.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum BlockerKind {
    /// A proven loop-carried dependence through memory.
    CarriedMemoryDep,
    /// A *may* memory dependence: the alias query could not prove the pair
    /// disjoint, so the dependence is assumed.
    UnprovenAlias,
    /// A loop-carried register recurrence that is neither an induction
    /// variable nor a recognized reduction.
    EscapingInduction,
    /// A call with side effects (memory writes or I/O) pinned in the body.
    ImpureCall,
    /// A HELIX sequential segment that serializes too much of the body.
    SequentialSegment,
    /// A DSWP obstacle at the SCC level: the body collapses into one cyclic
    /// SCC (or a backward cross-stage dependence ties stages together).
    CyclicSccSpan,
    /// A live-out that is not a recognized reduction accumulator.
    UnsupportedLiveOut,
    /// Structural problems: multiple exits, no governing IV, unprofitable
    /// shape — anything the technique's gates reject before dependences.
    LoopShape,
}

impl BlockerKind {
    /// Stable kebab-case name used in reports and JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            BlockerKind::CarriedMemoryDep => "carried-memory-dep",
            BlockerKind::UnprovenAlias => "unproven-alias",
            BlockerKind::EscapingInduction => "escaping-induction",
            BlockerKind::ImpureCall => "impure-call",
            BlockerKind::SequentialSegment => "sequential-segment",
            BlockerKind::CyclicSccSpan => "cyclic-scc-span",
            BlockerKind::UnsupportedLiveOut => "unsupported-live-out",
            BlockerKind::LoopShape => "loop-shape",
        }
    }
}

/// The resolution the auditor suggests for one blocker.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Hint {
    /// The conflicting object is only written (or written-then-read within
    /// one iteration): give each task a private copy per mod/ref.
    Privatize,
    /// The recurrence applies an associative operator: clone the accumulator
    /// and combine partials (RD).
    Reduction,
    /// The dependence is apparent, not proven: speculate it away and guard
    /// with runtime evidence (DepTracer-style misspeculation checks).
    Speculate,
    /// Forward the value/ordering through an inter-core queue (DSWP-style
    /// decoupling) instead of sharing memory.
    QueueMediate,
    /// Restructure the loop (single exit, governing IV, heavier body) —
    /// nothing dependence-level unblocks it.
    Restructure,
}

impl Hint {
    /// Stable kebab-case name used in reports and JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            Hint::Privatize => "privatize",
            Hint::Reduction => "reduction",
            Hint::Speculate => "speculate",
            Hint::QueueMediate => "queue-mediate",
            Hint::Restructure => "restructure",
        }
    }
}

/// One attributed obstacle: the instruction(s) at fault, the alias evidence,
/// and a resolution hint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Blocker {
    /// Classification of the obstacle.
    pub kind: BlockerKind,
    /// Primary anchor instruction (in the loop's function).
    pub inst: InstId,
    /// Other instructions of the same function involved (the second half of
    /// a dependence pair, the rest of a segment...).
    pub related: Vec<InstId>,
    /// Interprocedural attribution: instructions in *other* functions the
    /// obstacle flows through (call-site actuals, callee accesses).
    pub cross: Vec<(FuncId, InstId)>,
    /// Rendered alias evidence: the abstract memory objects of the failing
    /// alias query, from the points-to rows (empty when not memory-related).
    pub objects: Vec<String>,
    /// Human-readable specifics.
    pub detail: String,
    /// Suggested resolution.
    pub hint: Hint,
}

/// The verdict of one technique on one loop.
#[derive(Clone, Debug)]
pub struct TechniqueAudit {
    /// Which technique.
    pub technique: Technique,
    /// True when the technique's own gates accept the loop: the transform
    /// is expected to apply *and* preserve behavior (the fuzz oracle holds
    /// the auditor to exactly this reading).
    pub clean: bool,
    /// The gate's refusal reason, verbatim, when blocked.
    pub reason: Option<String>,
    /// Attributed blockers (non-empty whenever `clean` is false).
    pub blockers: Vec<Blocker>,
}

/// The audit of one loop: one verdict per technique.
#[derive(Clone, Debug)]
pub struct LoopAudit {
    /// Owning function.
    pub fid: FuncId,
    /// Owning function's name (reports are name-keyed, not id-keyed).
    pub function: String,
    /// Loop header block.
    pub header: BlockId,
    /// Header block's name.
    pub header_name: String,
    /// Header block's layout index (deterministic ordering key).
    pub header_index: usize,
    /// Per-technique verdicts, in [`Technique::all`] order.
    pub verdicts: Vec<TechniqueAudit>,
}

impl LoopAudit {
    /// The verdict for `t`.
    pub fn verdict(&self, t: Technique) -> &TechniqueAudit {
        self.verdicts
            .iter()
            .find(|v| v.technique == t)
            .expect("all techniques audited")
    }

    /// True when every technique is blocked.
    pub fn fully_blocked(&self) -> bool {
        self.verdicts.iter().all(|v| !v.clean)
    }
}

/// The whole-module audit, loops ordered by (function name, header index).
#[derive(Clone, Debug, Default)]
pub struct ModuleAudit {
    /// All audited loops, in canonical order.
    pub loops: Vec<LoopAudit>,
}

impl ModuleAudit {
    /// Loops with at least one clean technique.
    pub fn parallelizable(&self) -> usize {
        self.loops.iter().filter(|l| !l.fully_blocked()).count()
    }

    /// Total blockers across all loops and techniques.
    pub fn num_blockers(&self) -> usize {
        self.loops
            .iter()
            .flat_map(|l| &l.verdicts)
            .map(|v| v.blockers.len())
            .sum()
    }

    /// Deterministic JSON form: loops in canonical order, every list sorted
    /// at construction. Byte-identical across runs over the same module.
    pub fn to_json(&self) -> Json {
        let loops = self
            .loops
            .iter()
            .map(|l| {
                let verdicts = l
                    .verdicts
                    .iter()
                    .map(|v| {
                        let blockers = v
                            .blockers
                            .iter()
                            .map(|b| {
                                Json::object(vec![
                                    ("kind".to_string(), Json::Str(b.kind.as_str().to_string())),
                                    ("inst".to_string(), Json::Int(i64::from(b.inst.0))),
                                    (
                                        "related".to_string(),
                                        Json::Array(
                                            b.related
                                                .iter()
                                                .map(|i| Json::Int(i64::from(i.0)))
                                                .collect(),
                                        ),
                                    ),
                                    (
                                        "cross".to_string(),
                                        Json::Array(
                                            b.cross
                                                .iter()
                                                .map(|(f, i)| {
                                                    Json::object(vec![
                                                        (
                                                            "func".to_string(),
                                                            Json::Int(i64::from(f.0)),
                                                        ),
                                                        (
                                                            "inst".to_string(),
                                                            Json::Int(i64::from(i.0)),
                                                        ),
                                                    ])
                                                })
                                                .collect(),
                                        ),
                                    ),
                                    (
                                        "objects".to_string(),
                                        Json::Array(
                                            b.objects
                                                .iter()
                                                .map(|o| Json::Str(o.clone()))
                                                .collect(),
                                        ),
                                    ),
                                    ("detail".to_string(), Json::Str(b.detail.clone())),
                                    ("hint".to_string(), Json::Str(b.hint.as_str().to_string())),
                                ])
                            })
                            .collect();
                        Json::object(vec![
                            (
                                "technique".to_string(),
                                Json::Str(v.technique.as_str().to_string()),
                            ),
                            ("clean".to_string(), Json::Bool(v.clean)),
                            (
                                "reason".to_string(),
                                match &v.reason {
                                    Some(r) => Json::Str(r.clone()),
                                    None => Json::Null,
                                },
                            ),
                            ("blockers".to_string(), Json::Array(blockers)),
                        ])
                    })
                    .collect();
                Json::object(vec![
                    ("function".to_string(), Json::Str(l.function.clone())),
                    ("header".to_string(), Json::Str(l.header_name.clone())),
                    ("header_index".to_string(), Json::Int(l.header_index as i64)),
                    ("verdicts".to_string(), Json::Array(verdicts)),
                ])
            })
            .collect();
        Json::object(vec![
            ("loops".to_string(), Json::Array(loops)),
            (
                "summary".to_string(),
                Json::object(vec![
                    ("loops".to_string(), Json::Int(self.loops.len() as i64)),
                    (
                        "parallelizable".to_string(),
                        Json::Int(self.parallelizable() as i64),
                    ),
                    (
                        "blockers".to_string(),
                        Json::Int(self.num_blockers() as i64),
                    ),
                ]),
            ),
        ])
    }

    /// Deterministic text form, one block per loop.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for l in &self.loops {
            out.push_str(&format!("loop @{}:{}\n", l.function, l.header_name));
            for v in &l.verdicts {
                if v.clean {
                    out.push_str(&format!("  {}: clean\n", v.technique.as_str()));
                    continue;
                }
                out.push_str(&format!(
                    "  {}: blocked ({})\n",
                    v.technique.as_str(),
                    v.reason.as_deref().unwrap_or("unspecified")
                ));
                for b in &v.blockers {
                    out.push_str(&format!(
                        "    [{}] %v{}: {} -> hint: {}\n",
                        b.kind.as_str(),
                        b.inst.0,
                        b.detail,
                        b.hint.as_str()
                    ));
                }
            }
        }
        out.push_str(&format!(
            "{} loop(s), {} parallelizable, {} blocker(s)\n",
            self.loops.len(),
            self.parallelizable(),
            self.num_blockers()
        ));
        out
    }
}

/// Canonicalize a blocker list: deterministic order, exact duplicates
/// dropped. Ordering is total over every field that renders.
pub fn sort_blockers(blockers: &mut Vec<Blocker>) {
    blockers.sort_by(|a, b| {
        (a.inst, a.kind, &a.detail, a.hint, &a.related, &a.cross)
            .cmp(&(b.inst, b.kind, &b.detail, b.hint, &b.related, &b.cross))
    });
    blockers.dedup();
}

/// Classify every unhandled loop-carried dependence of `la` into attributed
/// blockers — the DOALL-level obstacles. Interprocedural enrichment (call
/// chains, points-to rows) is layered on by the lint driver; this classifier
/// is purely structural so it stays cheap and dependency-free.
pub fn carried_dep_blockers(
    m: &Module,
    la: &LoopAbstraction,
    modref: &ModRefSummaries,
) -> Vec<Blocker> {
    let f = m.func(la.fid);
    let handled = la.handled_recurrence_insts();
    // One blocker per unordered instruction pair: the PDG usually holds
    // several facets (RAW + WAR + WAW) of one conflicting access pair, and
    // the strongest facet decides the classification — a pair with a RAW
    // component is a recurrence, not just an overwrite.
    let mut pairs: std::collections::BTreeMap<
        (InstId, InstId),
        Vec<&noelle_pdg::depgraph::DepEdge<InstId>>,
    > = std::collections::BTreeMap::new();
    for e in la.pdg.edges() {
        if !(e.attrs.loop_carried
            && e.attrs.is_data()
            && la.pdg.is_internal(e.src)
            && la.pdg.is_internal(e.dst))
        {
            continue;
        }
        if handled.contains(&e.src) && handled.contains(&e.dst) {
            continue;
        }
        let key = if e.src <= e.dst {
            (e.src, e.dst)
        } else {
            (e.dst, e.src)
        };
        pairs.entry(key).or_default().push(e);
    }
    let mut out = Vec::new();
    for ((anchor, other), edges) in &pairs {
        let (anchor, other) = (*anchor, *other);
        let anchor_call = matches!(f.inst(anchor), Inst::Call { .. });
        let other_call = matches!(f.inst(other), Inst::Call { .. });
        let any_memory = edges.iter().any(|e| e.attrs.memory);
        let any_must = edges.iter().any(|e| e.attrs.must);
        let has_raw = edges
            .iter()
            .any(|e| e.attrs.kind == DepKind::Data(DataDepKind::Raw));
        let kinds = facet_names(edges);
        let blocker = if anchor_call || other_call {
            let call = if anchor_call { anchor } else { other };
            let hint = call_hint(m, la.fid, call, modref);
            Blocker {
                kind: BlockerKind::ImpureCall,
                inst: anchor,
                related: vec![other],
                cross: Vec::new(),
                objects: Vec::new(),
                detail: format!(
                    "loop-carried {kinds} dependence pinned by a side-effecting call (%v{})",
                    call.0
                ),
                hint,
            }
        } else if any_memory {
            let reduction_like = has_raw
                && matches!(
                    (la.sccdag.scc_of(anchor), la.sccdag.scc_of(other)),
                    (Some(a), Some(b))
                        if a == b && scc_is_reduction_like(f, &la.sccdag.nodes()[a].insts)
                );
            if any_must {
                let hint = if reduction_like {
                    Hint::Reduction
                } else if !has_raw {
                    Hint::Privatize
                } else {
                    Hint::QueueMediate
                };
                Blocker {
                    kind: BlockerKind::CarriedMemoryDep,
                    inst: anchor,
                    related: vec![other],
                    cross: Vec::new(),
                    objects: Vec::new(),
                    detail: format!(
                        "proven loop-carried {kinds} dependence through memory \
                         (%v{} <-> %v{})",
                        anchor.0, other.0
                    ),
                    hint,
                }
            } else {
                Blocker {
                    kind: BlockerKind::UnprovenAlias,
                    inst: anchor,
                    related: vec![other],
                    cross: Vec::new(),
                    objects: Vec::new(),
                    detail: format!(
                        "apparent loop-carried {kinds} dependence: the alias query \
                         could not prove %v{} and %v{} disjoint",
                        anchor.0, other.0
                    ),
                    hint: if reduction_like {
                        Hint::Reduction
                    } else {
                        Hint::Speculate
                    },
                }
            }
        } else {
            // Register recurrence outside IV/reduction handling.
            Blocker {
                kind: BlockerKind::EscapingInduction,
                inst: anchor,
                related: vec![other],
                cross: Vec::new(),
                objects: Vec::new(),
                detail: format!(
                    "loop-carried register recurrence (%v{} <-> %v{}) is neither an \
                     induction variable nor a recognized reduction",
                    anchor.0, other.0
                ),
                hint: register_recurrence_hint(la, anchor),
            }
        };
        out.push(blocker);
    }
    sort_blockers(&mut out);
    out
}

/// Deterministic "RAW+WAR"-style rendering of the dependence facets a pair
/// of instructions carries.
fn facet_names(edges: &[&noelle_pdg::depgraph::DepEdge<InstId>]) -> String {
    let mut names: BTreeSet<&'static str> = BTreeSet::new();
    for e in edges {
        names.insert(match e.attrs.kind {
            DepKind::Data(DataDepKind::Raw) => "RAW",
            DepKind::Data(DataDepKind::War) => "WAR",
            DepKind::Data(DataDepKind::Waw) => "WAW",
            DepKind::Control => "control",
        });
    }
    let order = ["RAW", "WAR", "WAW", "control"];
    order
        .iter()
        .filter(|n| names.contains(*n))
        .copied()
        .collect::<Vec<_>>()
        .join("+")
}

/// Hint for a side-effecting call inside the loop body, per its mod/ref
/// summary: pure-write callees can be privatized, I/O must be decoupled
/// through a queue, everything else needs runtime evidence.
fn call_hint(m: &Module, fid: FuncId, call: InstId, modref: &ModRefSummaries) -> Hint {
    if modref.call_has_io(m, fid, call) {
        Hint::QueueMediate
    } else if modref.call_may_write(m, fid, call) && !modref.call_may_read(m, fid, call) {
        Hint::Privatize
    } else {
        Hint::Speculate
    }
}

/// Hint for an escaping register recurrence: reduction when its SCC looks
/// like one associative update, restructure otherwise.
fn register_recurrence_hint(la: &LoopAbstraction, inst: InstId) -> Hint {
    if let Some(s) = la.sccdag.scc_of(inst) {
        let node = &la.sccdag.nodes()[s];
        if node.kind == SccKind::Sequential {
            // Would it reduce if the operator were recognized?
            return Hint::Restructure;
        }
    }
    Hint::Reduction
}

/// True when the SCC's arithmetic is a single associative binary operator
/// applied along the cycle (add/mul/and/or/xor/min-max style updates).
fn scc_is_reduction_like(f: &noelle_ir::module::Function, insts: &BTreeSet<InstId>) -> bool {
    use noelle_ir::inst::BinOp;
    let mut op: Option<BinOp> = None;
    for &i in insts {
        match f.inst(i) {
            Inst::Bin { op: o, .. } => match o {
                BinOp::Add
                | BinOp::Mul
                | BinOp::And
                | BinOp::Or
                | BinOp::Xor
                | BinOp::FAdd
                | BinOp::FMul => {
                    if op.is_some_and(|p| p != *o) {
                        return false;
                    }
                    op = Some(*o);
                }
                _ => return false,
            },
            Inst::Load { .. }
            | Inst::Store { .. }
            | Inst::Phi { .. }
            | Inst::Gep { .. }
            | Inst::Cast { .. } => {}
            _ => return false,
        }
    }
    op.is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use noelle_analysis::alias::BasicAlias;
    use noelle_ir::parser::parse_module;
    use noelle_pdg::pdg::PdgBuilder;

    fn audit_of(src: &str, func: &str) -> (Module, Vec<Blocker>) {
        let m = parse_module(src).unwrap();
        let fid = m.func_id_by_name(func).unwrap();
        let f = m.func(fid);
        let cfg = noelle_ir::cfg::Cfg::new(f);
        let dt = noelle_ir::dom::DomTree::new(f, &cfg);
        let forest = noelle_ir::loops::LoopForest::new(f, &cfg, &dt);
        let l = forest.loops()[0].clone();
        let basic = BasicAlias::new(&m);
        let builder = PdgBuilder::new(&m, &basic);
        let la = LoopAbstraction::build(&builder, fid, l);
        let modref = ModRefSummaries::compute(&m);
        let blockers = carried_dep_blockers(&m, &la, &modref);
        (m, blockers)
    }

    #[test]
    fn doall_clean_loop_has_no_blockers() {
        let (_, blockers) = audit_of(
            r#"
module "t" {
define i64 @k(i64* %a, i64 %n) {
entry:
  br header
header:
  %i = phi i64 [entry: i64 0] [body: %i2]
  %s = phi i64 [entry: i64 0] [body: %s2]
  %c = icmp slt i64 %i, %n
  condbr %c, body, exit
body:
  %p = gep i64, %a, %i
  %v = load i64, %p
  %s2 = add i64 %s, %v
  %i2 = add i64 %i, i64 1
  br header
exit:
  ret %s
}
}
"#,
            "k",
        );
        assert!(blockers.is_empty(), "{blockers:?}");
    }

    #[test]
    fn memory_recurrence_is_attributed_with_reduction_hint() {
        let (_, blockers) = audit_of(
            r#"
module "t" {
define i64 @k(i64* %acc, i64 %n) {
entry:
  br header
header:
  %i = phi i64 [entry: i64 0] [body: %i2]
  %c = icmp slt i64 %i, %n
  condbr %c, body, exit
body:
  %v = load i64, %acc
  %v2 = add i64 %v, i64 3
  store i64 %v2, %acc
  %i2 = add i64 %i, i64 1
  br header
exit:
  %r = load i64, %acc
  ret %r
}
}
"#,
            "k",
        );
        assert!(!blockers.is_empty());
        assert!(
            blockers.iter().any(|b| matches!(
                b.kind,
                BlockerKind::CarriedMemoryDep | BlockerKind::UnprovenAlias
            )),
            "{blockers:?}"
        );
        // The load-add-store cycle must carry a reduction hint on at least
        // one attributed dependence.
        assert!(
            blockers.iter().any(|b| b.hint == Hint::Reduction),
            "{blockers:?}"
        );
    }

    #[test]
    fn blockers_render_deterministically() {
        let (_, mut a) = audit_of(
            r#"
module "t" {
define i64 @k(i64* %acc, i64 %n) {
entry:
  br header
header:
  %i = phi i64 [entry: i64 0] [body: %i2]
  %c = icmp slt i64 %i, %n
  condbr %c, body, exit
body:
  %v = load i64, %acc
  %v2 = add i64 %v, i64 3
  store i64 %v2, %acc
  %i2 = add i64 %i, i64 1
  br header
exit:
  ret i64 0
}
}
"#,
            "k",
        );
        let mut b = a.clone();
        b.reverse();
        sort_blockers(&mut a);
        sort_blockers(&mut b);
        assert_eq!(a, b);
    }
}
