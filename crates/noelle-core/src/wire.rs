//! Deterministic `Json` views of the Table 1 abstractions.
//!
//! The `noelle-server` daemon replies to PDG/SCCDAG/loop/call-graph queries
//! with these encodings. Two properties matter on the wire:
//!
//! 1. **Determinism** — the same module must serialize to the same bytes no
//!    matter which thread built the abstraction, so edge lists are sorted
//!    and objects go through `BTreeMap`. The protocol test compares a
//!    daemon reply byte-for-byte against a direct in-process build.
//! 2. **Self-containment** — ids are plain integers (arena indices) plus
//!    function names, so a client needs no access to the `Module` arena to
//!    interpret a reply.

use crate::induction::InductionVariables;
use crate::invariants::InvariantSet;
use crate::json::Json;
use crate::noelle::{BuildStat, Noelle};
use noelle_ir::inst::InstId;
use noelle_ir::loops::LoopInfo;
use noelle_ir::module::Module;
use noelle_pdg::callgraph::CallGraph;
use noelle_pdg::depgraph::{DepGraph, DepKind};
use noelle_pdg::pdg::ProgramPdg;
use noelle_pdg::sccdag::{SccDag, SccKind};

fn dep_kind_name(k: DepKind) -> &'static str {
    match k {
        DepKind::Control => "control",
        DepKind::Data(d) => match d {
            noelle_pdg::depgraph::DataDepKind::Raw => "raw",
            noelle_pdg::depgraph::DataDepKind::War => "war",
            noelle_pdg::depgraph::DataDepKind::Waw => "waw",
        },
    }
}

/// One dependence graph over instruction ids as a sorted edge list.
pub fn depgraph_to_json(g: &DepGraph<InstId>) -> Json {
    let mut edges: Vec<(u32, u32, String)> = g
        .edges()
        .iter()
        .map(|e| {
            let mut tag = String::from(dep_kind_name(e.attrs.kind));
            if e.attrs.memory {
                tag.push_str(":mem");
            }
            if e.attrs.must {
                tag.push_str(":must");
            }
            if e.attrs.loop_carried {
                tag.push_str(":carried");
            }
            if let Some(d) = e.attrs.distance {
                tag.push_str(&format!(":d{d}"));
            }
            (e.src.0, e.dst.0, tag)
        })
        .collect();
    edges.sort();
    Json::object([
        ("internal".to_string(), Json::Int(g.num_internal() as i64)),
        (
            "externals".to_string(),
            Json::Int(g.external_nodes().count() as i64),
        ),
        (
            "edges".to_string(),
            Json::Array(
                edges
                    .into_iter()
                    .map(|(s, d, t)| {
                        Json::Array(vec![Json::Int(s as i64), Json::Int(d as i64), Json::Str(t)])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// The whole-program PDG, keyed by function name.
pub fn pdg_to_json(m: &Module, pdg: &ProgramPdg) -> Json {
    let mut per_fn = Vec::new();
    for (fid, g) in &pdg.per_function {
        per_fn.push((m.func(*fid).name.clone(), depgraph_to_json(g)));
    }
    Json::object([
        ("num_edges".to_string(), Json::Int(pdg.num_edges() as i64)),
        ("functions".to_string(), Json::object(per_fn)),
    ])
}

fn scc_kind_name(k: SccKind) -> &'static str {
    match k {
        SccKind::Independent => "independent",
        SccKind::Reducible => "reducible",
        SccKind::Sequential => "sequential",
    }
}

/// An aSCCDAG: nodes with their member instructions plus the DAG edges.
pub fn sccdag_to_json(dag: &SccDag) -> Json {
    let nodes = dag
        .nodes()
        .iter()
        .map(|n| {
            Json::object([
                ("id".to_string(), Json::Int(n.id as i64)),
                (
                    "insts".to_string(),
                    Json::Array(n.insts.iter().map(|i| Json::Int(i.0 as i64)).collect()),
                ),
                ("kind".to_string(), Json::Str(scc_kind_name(n.kind).into())),
                ("is_induction".to_string(), Json::Bool(n.is_induction)),
            ])
        })
        .collect();
    let mut edges: Vec<(usize, usize)> = dag.edges().collect();
    edges.sort_unstable();
    Json::object([
        ("nodes".to_string(), Json::Array(nodes)),
        (
            "edges".to_string(),
            Json::Array(
                edges
                    .into_iter()
                    .map(|(a, b)| Json::Array(vec![Json::Int(a as i64), Json::Int(b as i64)]))
                    .collect(),
            ),
        ),
        (
            "fully_parallelizable".to_string(),
            Json::Bool(dag.is_fully_parallelizable()),
        ),
    ])
}

/// One loop's structural summary.
pub fn loop_to_json(l: &LoopInfo) -> Json {
    Json::object([
        ("id".to_string(), Json::Int(l.id.index() as i64)),
        ("header".to_string(), Json::Int(l.header.index() as i64)),
        ("depth".to_string(), Json::Int(l.depth as i64)),
        ("blocks".to_string(), Json::Int(l.blocks.len() as i64)),
        (
            "latches".to_string(),
            Json::Array(
                l.latches
                    .iter()
                    .map(|b| Json::Int(b.index() as i64))
                    .collect(),
            ),
        ),
        (
            "preheader".to_string(),
            match l.preheader {
                Some(b) => Json::Int(b.index() as i64),
                None => Json::Null,
            },
        ),
        ("exits".to_string(), Json::Int(l.exit_edges.len() as i64)),
    ])
}

/// Induction variables of one loop.
pub fn ivs_to_json(ivs: &InductionVariables) -> Json {
    Json::Array(
        ivs.ivs
            .iter()
            .map(|iv| {
                Json::object([
                    ("phi".to_string(), Json::Int(iv.rec.phi.0 as i64)),
                    (
                        "start".to_string(),
                        Json::Str(format!("{:?}", iv.rec.start)),
                    ),
                    ("step".to_string(), Json::Str(format!("{:?}", iv.rec.step))),
                    ("governing".to_string(), Json::Bool(iv.governing)),
                    ("derived".to_string(), Json::Int(iv.derived.len() as i64)),
                ])
            })
            .collect(),
    )
}

/// Invariant instructions of one loop (sorted ids).
pub fn invariants_to_json(inv: &InvariantSet) -> Json {
    let mut ids: Vec<u32> = inv.iter().map(|i| i.0).collect();
    ids.sort_unstable();
    Json::Array(ids.into_iter().map(|i| Json::Int(i as i64)).collect())
}

/// The complete call graph as name-resolved edges.
pub fn callgraph_to_json(m: &Module, cg: &CallGraph) -> Json {
    let mut edges: Vec<(String, String, bool, usize)> = cg
        .edges()
        .iter()
        .map(|e| {
            (
                m.func(e.caller).name.clone(),
                m.func(e.callee).name.clone(),
                e.is_must,
                e.sites.len(),
            )
        })
        .collect();
    edges.sort();
    Json::object([
        (
            "edges".to_string(),
            Json::Array(
                edges
                    .into_iter()
                    .map(|(c, t, must, sites)| {
                        Json::object([
                            ("caller".to_string(), Json::Str(c)),
                            ("callee".to_string(), Json::Str(t)),
                            ("must".to_string(), Json::Bool(must)),
                            ("sites".to_string(), Json::Int(sites as i64)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "unresolved_sites".to_string(),
            Json::Int(cg.unresolved_sites().len() as i64),
        ),
    ])
}

fn build_stat_to_json(s: &BuildStat) -> Json {
    Json::object([
        ("builds".to_string(), Json::Int(s.builds as i64)),
        (
            "nanos".to_string(),
            Json::Int(s.nanos.min(i64::MAX as u128) as i64),
        ),
    ])
}

/// One manager's cache-health report: per-abstraction build counts/time,
/// the alias-query cache counters, and the approximate heap held by the
/// cached analysis state. This is what lets a client verify that a repeated
/// query did *not* rebuild.
pub fn manager_stats_to_json(n: &Noelle) -> Json {
    let builds = n
        .build_stats()
        .iter()
        .map(|(a, s)| (a.short_name().to_string(), build_stat_to_json(s)))
        .collect::<Vec<_>>();
    let (hits, misses) = n.alias_cache().stats();
    let c = n.func_cache_counters();
    let mem = n.memory_stats();
    Json::object([
        ("builds".to_string(), Json::object(builds)),
        (
            "memory".to_string(),
            Json::object([
                ("pdg_bytes".to_string(), Json::Int(mem.pdg_bytes as i64)),
                (
                    "andersen_bytes".to_string(),
                    Json::Int(mem.andersen_bytes as i64),
                ),
                ("functions".to_string(), Json::Int(mem.functions as i64)),
                (
                    "bytes_per_function".to_string(),
                    Json::Int(mem.bytes_per_function as i64),
                ),
            ]),
        ),
        (
            "alias_cache".to_string(),
            Json::object([
                ("hits".to_string(), Json::Int(hits as i64)),
                ("misses".to_string(), Json::Int(misses as i64)),
            ]),
        ),
        (
            "func_cache".to_string(),
            Json::object([
                ("pdg_hits".to_string(), Json::Int(c.pdg_hits as i64)),
                ("pdg_misses".to_string(), Json::Int(c.pdg_misses as i64)),
                ("struct_hits".to_string(), Json::Int(c.struct_hits as i64)),
                (
                    "struct_misses".to_string(),
                    Json::Int(c.struct_misses as i64),
                ),
                (
                    "invalidations".to_string(),
                    Json::Int(c.invalidations as i64),
                ),
                (
                    "andersen_reuses".to_string(),
                    Json::Int(c.andersen_reuses as i64),
                ),
            ]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noelle::AliasTier;
    use noelle_ir::builder::FunctionBuilder;
    use noelle_ir::inst::{BinOp, IcmpPred};
    use noelle_ir::types::Type;
    use noelle_ir::value::Value;

    fn loop_module() -> Module {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(
            "k",
            vec![("a", Type::I64.ptr_to()), ("n", Type::I64)],
            Type::I64,
        );
        let entry = b.entry_block();
        let header = b.block("header");
        let body = b.block("body");
        let exit = b.block("exit");
        b.switch_to(entry);
        b.br(header);
        b.switch_to(header);
        let i = b.phi(Type::I64, vec![(entry, Value::const_i64(0))]);
        let c = b.icmp(IcmpPred::Slt, Type::I64, i, b.arg(1));
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let p = b.index_ptr(Type::I64, b.arg(0), i);
        let v = b.load(Type::I64, p);
        let v2 = b.binop(BinOp::Add, Type::I64, v, Value::const_i64(1));
        b.store(Type::I64, v2, p);
        let i2 = b.binop(BinOp::Add, Type::I64, i, Value::const_i64(1));
        b.br(header);
        b.add_incoming(i, body, i2);
        b.switch_to(exit);
        b.ret(Some(Value::const_i64(0)));
        m.add_function(b.finish());
        m
    }

    #[test]
    fn pdg_encoding_is_deterministic_and_round_trips() {
        let mut n1 = Noelle::new(loop_module(), AliasTier::Full);
        let mut n2 = Noelle::new(loop_module(), AliasTier::Full);
        let j1 = pdg_to_json(&n1.module().clone(), &n1.pdg());
        let j2 = pdg_to_json(&n2.module().clone(), &n2.pdg());
        let text = j1.to_string_compact();
        assert_eq!(text, j2.to_string_compact());
        assert_eq!(Json::parse(&text), Some(j1.clone()));
        let funcs = j1.get("functions").and_then(Json::as_object).unwrap();
        assert!(funcs.contains_key("k"));
        assert!(j1.get("num_edges").and_then(Json::as_i64).unwrap() > 0);
    }

    #[test]
    fn manager_stats_expose_build_counts() {
        let mut n = Noelle::new(loop_module(), AliasTier::Full);
        let _ = n.pdg();
        let _ = n.pdg();
        let s = manager_stats_to_json(&n);
        let pdg = s.get("builds").and_then(|b| b.get("PDG")).unwrap();
        assert_eq!(pdg.get("builds").and_then(Json::as_i64), Some(1));
    }

    #[test]
    fn loop_and_callgraph_encodings() {
        let mut n = Noelle::new(loop_module(), AliasTier::Full);
        let fid = n.module().func_ids().next().unwrap();
        let loops = n.loops_of(fid);
        assert_eq!(loops.len(), 1);
        let lj = loop_to_json(&loops[0]);
        assert_eq!(lj.get("depth").and_then(Json::as_i64), Some(1));
        let cg = callgraph_to_json(&n.module().clone(), n.call_graph());
        assert!(cg.get("edges").and_then(Json::as_array).is_some());
    }
}
