//! The Environment (ENV) abstraction.
//!
//! "An array of pointers of variables. Variables within an Environment
//! represent the incoming and outgoing values from and to a set of
//! instructions." Parallelization techniques use environments to propagate
//! values explicitly between cores: live-ins are stored into the array by
//! the dispatcher and loaded by tasks; live-outs flow the other way.
//!
//! Every slot is 64 bits; values of other types are converted with explicit
//! casts by the [`EnvironmentBuilder`] helpers.

use noelle_ir::inst::{CastOp, Inst, InstId};
use noelle_ir::loops::LoopInfo;
use noelle_ir::module::{BlockId, Function};
use noelle_ir::types::Type;
use noelle_ir::value::Value;

/// Live-in and live-out variables of a code region.
#[derive(Clone, Debug, Default)]
pub struct Environment {
    /// Values defined outside the region and used inside, in slot order.
    pub live_ins: Vec<(Value, Type)>,
    /// Values defined inside the region and used outside, in slot order.
    pub live_outs: Vec<(Value, Type)>,
}

impl Environment {
    /// Compute the environment of loop `l` in `f`: live-ins are the values
    /// defined outside the loop (arguments included) used by loop
    /// instructions; live-outs are loop-defined values used beyond the loop.
    pub fn for_loop(m: &noelle_ir::Module, f: &Function, l: &LoopInfo) -> Environment {
        let mut live_ins: Vec<(Value, Type)> = Vec::new();
        let mut live_outs: Vec<(Value, Type)> = Vec::new();
        let mut seen_in = std::collections::HashSet::new();
        let mut seen_out = std::collections::HashSet::new();
        let in_loop = |id: InstId| l.contains(f.parent_block(id));
        for id in f.inst_ids() {
            if in_loop(id) {
                // Operands defined outside are live-ins. Phi incomings from
                // outside blocks count too.
                for op in f.inst(id).operands() {
                    let is_livein = match op {
                        Value::Arg(_) => true,
                        Value::Inst(d) => !in_loop(d),
                        _ => false, // constants/globals need no slot
                    };
                    if is_livein && seen_in.insert(op) {
                        live_ins.push((op, f.value_type(m, op)));
                    }
                }
            } else {
                // Uses outside the loop of loop-defined values are live-outs.
                for op in f.inst(id).operands() {
                    if let Value::Inst(d) = op {
                        if in_loop(d) && seen_out.insert(op) {
                            live_outs.push((op, f.value_type(m, op)));
                        }
                    }
                }
            }
        }
        Environment {
            live_ins,
            live_outs,
        }
    }

    /// Slot index of live-in `v`.
    pub fn live_in_slot(&self, v: Value) -> Option<usize> {
        self.live_ins.iter().position(|(x, _)| *x == v)
    }

    /// Index of live-out `v` within the live-out section.
    pub fn live_out_index(&self, v: Value) -> Option<usize> {
        self.live_outs.iter().position(|(x, _)| *x == v)
    }

    /// First slot of the live-out section.
    pub fn live_out_base(&self) -> usize {
        self.live_ins.len()
    }

    /// Total slots needed when live-outs are replicated per task.
    pub fn num_slots(&self, n_tasks: usize) -> usize {
        self.live_ins.len() + self.live_outs.len() * n_tasks
    }
}

/// Helpers that materialize environment traffic in the IR: allocation,
/// slot stores, and slot loads — the paper's *Environment Builder*.
pub struct EnvironmentBuilder;

impl EnvironmentBuilder {
    /// Allocate an environment of `slots` 64-bit entries at the end of
    /// `block` (before its terminator, if any). Returns the `i64*` base.
    pub fn alloc(f: &mut Function, block: BlockId, slots: usize) -> Value {
        let pos = insert_pos(f, block);
        let id = f.insert_inst(
            block,
            pos,
            Inst::Alloca {
                ty: Type::I64,
                count: Value::const_i64(slots as i64),
            },
        );
        Value::Inst(id)
    }

    /// Convert `v` of type `ty` to an `i64` for slot storage, appending casts
    /// at `pos` in `block`. Returns the converted value and the new position.
    fn to_slot_value(
        f: &mut Function,
        block: BlockId,
        mut pos: usize,
        v: Value,
        ty: &Type,
    ) -> (Value, usize) {
        let cast = |f: &mut Function, pos: &mut usize, op, from: Type, to: Type, val| {
            let id = f.insert_inst(block, *pos, Inst::Cast { op, from, to, val });
            *pos += 1;
            Value::Inst(id)
        };
        let out = match ty {
            Type::Int(noelle_ir::types::IntWidth::I64) => v,
            Type::Int(_) => cast(f, &mut pos, CastOp::Sext, ty.clone(), Type::I64, v),
            Type::Float(noelle_ir::types::FloatWidth::F64) => {
                cast(f, &mut pos, CastOp::Bitcast, Type::F64, Type::I64, v)
            }
            Type::Float(_) => {
                let w = cast(f, &mut pos, CastOp::FpExt, Type::F32, Type::F64, v);
                cast(f, &mut pos, CastOp::Bitcast, Type::F64, Type::I64, w)
            }
            _ => cast(f, &mut pos, CastOp::PtrToInt, ty.clone(), Type::I64, v),
        };
        (out, pos)
    }

    /// Convert an `i64` slot value back to type `ty`.
    fn from_slot_value(
        f: &mut Function,
        block: BlockId,
        mut pos: usize,
        v: Value,
        ty: &Type,
    ) -> (Value, usize) {
        let cast = |f: &mut Function, pos: &mut usize, op, from: Type, to: Type, val| {
            let id = f.insert_inst(block, *pos, Inst::Cast { op, from, to, val });
            *pos += 1;
            Value::Inst(id)
        };
        let out = match ty {
            Type::Int(noelle_ir::types::IntWidth::I64) => v,
            Type::Int(_) => cast(f, &mut pos, CastOp::Trunc, Type::I64, ty.clone(), v),
            Type::Float(noelle_ir::types::FloatWidth::F64) => {
                cast(f, &mut pos, CastOp::Bitcast, Type::I64, Type::F64, v)
            }
            Type::Float(_) => {
                let w = cast(f, &mut pos, CastOp::Bitcast, Type::I64, Type::F64, v);
                cast(f, &mut pos, CastOp::FpTrunc, Type::F64, Type::F32, w)
            }
            _ => cast(f, &mut pos, CastOp::IntToPtr, Type::I64, ty.clone(), v),
        };
        (out, pos)
    }

    /// Store `v` (of type `ty`) into slot `slot` of `env`, appending the
    /// instructions at the end of `block` (before its terminator).
    pub fn store_slot(
        f: &mut Function,
        block: BlockId,
        env: Value,
        slot: Value,
        v: Value,
        ty: &Type,
    ) {
        let pos = insert_pos(f, block);
        let (raw, pos) = Self::to_slot_value(f, block, pos, v, ty);
        let gep = f.insert_inst(
            block,
            pos,
            Inst::Gep {
                base: env,
                base_ty: Type::I64,
                indices: vec![slot],
            },
        );
        f.insert_inst(
            block,
            pos + 1,
            Inst::Store {
                val: raw,
                ptr: Value::Inst(gep),
                ty: Type::I64,
            },
        );
    }

    /// Load slot `slot` of `env` as a value of type `ty`, appending at the
    /// end of `block` (before its terminator).
    pub fn load_slot(
        f: &mut Function,
        block: BlockId,
        env: Value,
        slot: Value,
        ty: &Type,
    ) -> Value {
        let pos = insert_pos(f, block);
        let gep = f.insert_inst(
            block,
            pos,
            Inst::Gep {
                base: env,
                base_ty: Type::I64,
                indices: vec![slot],
            },
        );
        let load = f.insert_inst(
            block,
            pos + 1,
            Inst::Load {
                ty: Type::I64,
                ptr: Value::Inst(gep),
            },
        );
        let (v, _) = Self::from_slot_value(f, block, pos + 2, Value::Inst(load), ty);
        v
    }
}

/// Insertion position at the end of `block`, before any terminator.
fn insert_pos(f: &Function, block: BlockId) -> usize {
    let insts = &f.block(block).insts;
    match insts.last() {
        Some(&last) if f.inst(last).is_terminator() => insts.len() - 1,
        _ => insts.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noelle_ir::builder::FunctionBuilder;
    use noelle_ir::cfg::Cfg;
    use noelle_ir::dom::DomTree;
    use noelle_ir::inst::{BinOp, IcmpPred};
    use noelle_ir::loops::LoopForest;
    use noelle_ir::module::Module;

    #[test]
    fn loop_environment_live_ins_and_outs() {
        // for (i=0; i<n; i++) sum += a[i]; return sum
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(
            "k",
            vec![("a", Type::I64.ptr_to()), ("n", Type::I64)],
            Type::I64,
        );
        let entry = b.entry_block();
        let header = b.block("header");
        let body = b.block("body");
        let exit = b.block("exit");
        b.switch_to(entry);
        b.br(header);
        b.switch_to(header);
        let i = b.phi(Type::I64, vec![(entry, Value::const_i64(0))]);
        let sum = b.phi(Type::I64, vec![(entry, Value::const_i64(0))]);
        let c = b.icmp(IcmpPred::Slt, Type::I64, i, b.arg(1));
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let p = b.index_ptr(Type::I64, b.arg(0), i);
        let v = b.load(Type::I64, p);
        let sum2 = b.binop(BinOp::Add, Type::I64, sum, v);
        let i2 = b.binop(BinOp::Add, Type::I64, i, Value::const_i64(1));
        b.br(header);
        b.add_incoming(i, body, i2);
        b.add_incoming(sum, body, sum2);
        b.switch_to(exit);
        b.ret(Some(sum));
        let fid = m.add_function(b.finish());
        let f = m.func(fid);
        let cfg = Cfg::new(f);
        let dt = DomTree::new(f, &cfg);
        let forest = LoopForest::new(f, &cfg, &dt);
        let l = &forest.loops()[0];
        let env = Environment::for_loop(&m, f, l);
        // Live-ins: a and n.
        assert_eq!(env.live_ins.len(), 2);
        assert!(env.live_in_slot(Value::Arg(0)).is_some());
        assert!(env.live_in_slot(Value::Arg(1)).is_some());
        // Live-out: sum (used by ret).
        assert_eq!(env.live_outs.len(), 1);
        assert_eq!(env.live_out_index(sum), Some(0));
        assert_eq!(env.live_out_base(), 2);
        assert_eq!(env.num_slots(4), 2 + 4);
    }

    #[test]
    fn env_builder_round_trips_types() {
        // Store + load each scalar type through an env slot; then verify.
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(
            "f",
            vec![
                ("x", Type::I64),
                ("y", Type::F64),
                ("p", Type::I64.ptr_to()),
                ("s", Type::I32),
            ],
            Type::Void,
        );
        let entry = b.entry_block();
        b.switch_to(entry);
        b.ret(None);
        let fid = m.add_function(b.finish());
        let f = m.func_mut(fid);
        let entry = f.entry();
        let env = EnvironmentBuilder::alloc(f, entry, 4);
        for (i, ty) in [Type::I64, Type::F64, Type::I64.ptr_to(), Type::I32]
            .iter()
            .enumerate()
        {
            EnvironmentBuilder::store_slot(
                f,
                entry,
                env,
                Value::const_i64(i as i64),
                Value::Arg(i as u32),
                ty,
            );
            let _v = EnvironmentBuilder::load_slot(f, entry, env, Value::const_i64(i as i64), ty);
        }
        noelle_ir::verifier::verify_module(&m).expect("casts type-check");
    }

    #[test]
    fn insert_pos_respects_terminator() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("f", vec![], Type::Void);
        let entry = b.entry_block();
        b.switch_to(entry);
        b.ret(None);
        let fid = m.add_function(b.finish());
        let f = m.func_mut(fid);
        let entry = f.entry();
        let env = EnvironmentBuilder::alloc(f, entry, 1);
        // The alloca must precede the ret.
        let insts = &f.block(entry).insts;
        assert_eq!(insts.len(), 2);
        assert_eq!(Value::Inst(insts[0]), env);
        assert!(f.inst(insts[1]).is_terminator());
    }
}
