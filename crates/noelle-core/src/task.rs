//! The Task (T) abstraction.
//!
//! "NOELLE offers the Task abstraction to describe a code region that runs
//! sequentially. [...] Nodes within an aSCCDAG are partitioned into tasks.
//! An Environment is created for each task. At runtime, tasks are submitted
//! to a thread-pool, which will run them in parallel across the cores."
//!
//! [`outline_loop_as_task`] materializes a task: it clones a loop into a new
//! function `void task(i64* env, i64 task_id, i64 n_tasks)` that loads its
//! live-ins from the environment, runs the (cloned) loop, and stores its
//! live-outs into per-task environment slots. The parallelizing custom tools
//! then specialize the clone (IV stepping for DOALL/HELIX, queue insertion
//! for DSWP) and hand it to the `noelle.task.dispatch` runtime intrinsic.

use crate::env::{Environment, EnvironmentBuilder};
use noelle_ir::inst::{BinOp, Inst, InstId, Terminator};
use noelle_ir::loops::LoopInfo;
use noelle_ir::module::{BlockId, FuncId, Function, Module};
use noelle_ir::types::Type;
use noelle_ir::value::Value;
use std::collections::HashMap;

/// Errors raised while materializing a task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskError {
    /// Task outlining currently requires a single exit block.
    MultipleExits,
    /// A value used inside the loop could not be remapped.
    UnmappedValue(String),
}

impl std::fmt::Display for TaskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TaskError::MultipleExits => write!(f, "loop has multiple exit blocks"),
            TaskError::UnmappedValue(v) => write!(f, "cannot remap value {v}"),
        }
    }
}

impl std::error::Error for TaskError {}

/// A materialized task: the outlined function plus the maps linking it back
/// to the original loop.
#[derive(Debug)]
pub struct TaskFunction {
    /// The task function (`void (i64* env, i64 task_id, i64 n_tasks)`).
    pub fid: FuncId,
    /// Entry block of the task (live-in loads happen here).
    pub entry: BlockId,
    /// Block that stores live-outs and returns.
    pub finish: BlockId,
    /// Original value → clone value (covers live-ins and loop instructions).
    pub value_map: HashMap<Value, Value>,
    /// Original loop block → cloned block.
    pub block_map: HashMap<BlockId, BlockId>,
    /// The environment shared with the dispatcher.
    pub env: Environment,
}

impl TaskFunction {
    /// The environment pointer argument of the task function.
    pub fn env_arg(&self) -> Value {
        Value::Arg(0)
    }

    /// The task-id argument.
    pub fn task_id_arg(&self) -> Value {
        Value::Arg(1)
    }

    /// The task-count argument.
    pub fn n_tasks_arg(&self) -> Value {
        Value::Arg(2)
    }
}

/// Clone loop `l` of `src_fid` into a fresh task function named `name`.
///
/// The produced function:
/// 1. loads every environment live-in in its entry block,
/// 2. runs a verbatim clone of the loop (same CFG shape), and
/// 3. on loop exit stores every live-out to `env[base + idx*n_tasks +
///    task_id]` and returns.
///
/// # Errors
/// Fails when the loop has more than one exit block, which the current
/// outliner does not support.
pub fn outline_loop_as_task(
    m: &mut Module,
    src_fid: FuncId,
    l: &LoopInfo,
    env: &Environment,
    name: &str,
) -> Result<TaskFunction, TaskError> {
    let exits = l.exit_blocks();
    let &[_exit] = exits.as_slice() else {
        return Err(TaskError::MultipleExits);
    };
    let src = m.func(src_fid).clone();

    let mut task = Function::new(
        name,
        vec![
            ("env".into(), Type::I64.ptr_to()),
            ("task_id".into(), Type::I64),
            ("n_tasks".into(), Type::I64),
        ],
        Type::Void,
    );
    let entry = task.add_block("entry");

    // 1. Live-in loads.
    let mut value_map: HashMap<Value, Value> = HashMap::new();
    for (slot, (v, ty)) in env.live_ins.iter().enumerate() {
        let loaded = EnvironmentBuilder::load_slot(
            &mut task,
            entry,
            Value::Arg(0),
            Value::const_i64(slot as i64),
            ty,
        );
        value_map.insert(*v, loaded);
    }

    // 2. Clone the loop blocks.
    let mut block_map: HashMap<BlockId, BlockId> = HashMap::new();
    let mut ordered_blocks: Vec<BlockId> = vec![l.header];
    for &b in &l.blocks {
        if b != l.header {
            ordered_blocks.push(b);
        }
    }
    for &b in &ordered_blocks {
        let nb = task.add_block(src.block(b).name.clone());
        block_map.insert(b, nb);
    }
    let finish = task.add_block("finish");

    // Pass 1: clone instructions with original operands.
    let mut inst_map: HashMap<InstId, InstId> = HashMap::new();
    for &b in &ordered_blocks {
        let nb = block_map[&b];
        for &id in &src.block(b).insts {
            let cloned = task.append_inst(nb, src.inst(id).clone());
            inst_map.insert(id, cloned);
            value_map.insert(Value::Inst(id), Value::Inst(cloned));
        }
    }

    // Pass 2: remap operands, blocks, and loop boundaries.
    let map_value = |v: Value| -> Result<Value, TaskError> {
        match v {
            Value::Const(_) | Value::Global(_) | Value::Func(_) => Ok(v),
            other => value_map
                .get(&other)
                .copied()
                .ok_or_else(|| TaskError::UnmappedValue(format!("{other:?}"))),
        }
    };
    let mut errors: Vec<TaskError> = Vec::new();
    for (&old_id, &new_id) in &inst_map {
        // Remap value operands.
        let mut failed = None;
        task.inst_mut(new_id).map_operands(|v| match map_value(v) {
            Ok(nv) => nv,
            Err(e) => {
                failed = Some(e);
                v
            }
        });
        if let Some(e) = failed {
            errors.push(e);
        }
        // Remap block references.
        match task.inst_mut(new_id) {
            Inst::Phi { incomings, .. } => {
                for (b, _) in incomings.iter_mut() {
                    *b = block_map.get(b).copied().unwrap_or(entry);
                }
            }
            Inst::Term(t) => {
                let succs = t.successors();
                for s in succs {
                    let target = block_map.get(&s).copied().unwrap_or(finish);
                    t.replace_successor(s, target);
                }
            }
            _ => {}
        }
        let _ = old_id;
    }
    if let Some(e) = errors.into_iter().next() {
        return Err(e);
    }

    // Entry falls through to the cloned header.
    task.set_terminator(entry, Terminator::Br(block_map[&l.header]));

    // 3. Live-out stores: env[base + idx * n_tasks + task_id].
    for (idx, (v, ty)) in env.live_outs.iter().enumerate() {
        let clone = map_value(*v)?;
        let base = env.live_out_base() as i64;
        let pos = task.block(finish).insts.len();
        let mul = task.insert_inst(
            finish,
            pos,
            Inst::Bin {
                op: BinOp::Mul,
                ty: Type::I64,
                lhs: Value::const_i64(idx as i64),
                rhs: Value::Arg(2),
            },
        );
        let add1 = task.insert_inst(
            finish,
            pos + 1,
            Inst::Bin {
                op: BinOp::Add,
                ty: Type::I64,
                lhs: Value::Inst(mul),
                rhs: Value::Arg(1),
            },
        );
        let slot = task.insert_inst(
            finish,
            pos + 2,
            Inst::Bin {
                op: BinOp::Add,
                ty: Type::I64,
                lhs: Value::Inst(add1),
                rhs: Value::const_i64(base),
            },
        );
        EnvironmentBuilder::store_slot(
            &mut task,
            finish,
            Value::Arg(0),
            Value::Inst(slot),
            clone,
            ty,
        );
    }
    task.set_terminator(finish, Terminator::Ret(None));

    let fid = m.add_function(task);
    Ok(TaskFunction {
        fid,
        entry,
        finish,
        value_map,
        block_map,
        env: env.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use noelle_ir::builder::FunctionBuilder;
    use noelle_ir::cfg::Cfg;
    use noelle_ir::dom::DomTree;
    use noelle_ir::inst::IcmpPred;
    use noelle_ir::loops::LoopForest;

    fn sum_loop_module() -> (Module, FuncId, LoopInfo) {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(
            "k",
            vec![("a", Type::I64.ptr_to()), ("n", Type::I64)],
            Type::I64,
        );
        let entry = b.entry_block();
        let header = b.block("header");
        let body = b.block("body");
        let exit = b.block("exit");
        b.switch_to(entry);
        b.br(header);
        b.switch_to(header);
        let i = b.phi(Type::I64, vec![(entry, Value::const_i64(0))]);
        let sum = b.phi(Type::I64, vec![(entry, Value::const_i64(0))]);
        let c = b.icmp(IcmpPred::Slt, Type::I64, i, b.arg(1));
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let p = b.index_ptr(Type::I64, b.arg(0), i);
        let v = b.load(Type::I64, p);
        let sum2 = b.binop(BinOp::Add, Type::I64, sum, v);
        let i2 = b.binop(BinOp::Add, Type::I64, i, Value::const_i64(1));
        b.br(header);
        b.add_incoming(i, body, i2);
        b.add_incoming(sum, body, sum2);
        b.switch_to(exit);
        b.ret(Some(sum));
        let fid = m.add_function(b.finish());
        let f = m.func(fid);
        let cfg = Cfg::new(f);
        let dt = DomTree::new(f, &cfg);
        let forest = LoopForest::new(f, &cfg, &dt);
        let l = forest.loops()[0].clone();
        (m, fid, l)
    }

    #[test]
    fn outlined_task_verifies() {
        let (mut m, fid, l) = sum_loop_module();
        let env = Environment::for_loop(&m, m.func(fid), &l);
        let task = outline_loop_as_task(&mut m, fid, &l, &env, "k_task").unwrap();
        noelle_ir::verifier::verify_module(&m).expect("task verifies");
        let tf = m.func(task.fid);
        assert_eq!(tf.params.len(), 3);
        assert_eq!(tf.ret_ty, Type::Void);
        // The clone contains a loop with the same shape.
        let cfg = Cfg::new(tf);
        let dt = DomTree::new(tf, &cfg);
        let forest = LoopForest::new(tf, &cfg, &dt);
        assert_eq!(forest.len(), 1);
        assert_eq!(forest.loops()[0].blocks.len(), l.blocks.len());
    }

    #[test]
    fn live_ins_loaded_live_outs_stored() {
        let (mut m, fid, l) = sum_loop_module();
        let env = Environment::for_loop(&m, m.func(fid), &l);
        assert_eq!(env.live_ins.len(), 2);
        assert_eq!(env.live_outs.len(), 1);
        let task = outline_loop_as_task(&mut m, fid, &l, &env, "k_task").unwrap();
        let tf = m.func(task.fid);
        // Entry: 2 live-in loads (plus geps/casts) ending in a branch.
        let entry_loads = tf
            .block(task.entry)
            .insts
            .iter()
            .filter(|&&i| matches!(tf.inst(i), Inst::Load { .. }))
            .count();
        assert_eq!(entry_loads, 2);
        // Finish: one store for the live-out.
        let finish_stores = tf
            .block(task.finish)
            .insts
            .iter()
            .filter(|&&i| matches!(tf.inst(i), Inst::Store { .. }))
            .count();
        assert_eq!(finish_stores, 1);
    }

    #[test]
    fn multi_exit_loop_rejected() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("f", vec![("n", Type::I64), ("c", Type::I1)], Type::Void);
        let entry = b.entry_block();
        let header = b.block("header");
        let body = b.block("body");
        let e1 = b.block("e1");
        let e2 = b.block("e2");
        b.switch_to(entry);
        b.br(header);
        b.switch_to(header);
        let i = b.phi(Type::I64, vec![(entry, Value::const_i64(0))]);
        let c = b.icmp(IcmpPred::Slt, Type::I64, i, b.arg(0));
        b.cond_br(c, body, e1);
        b.switch_to(body);
        let i2 = b.binop(BinOp::Add, Type::I64, i, Value::const_i64(1));
        b.cond_br(b.arg(1), header, e2);
        b.add_incoming(i, body, i2);
        b.switch_to(e1);
        b.ret(None);
        b.switch_to(e2);
        b.ret(None);
        let fid = m.add_function(b.finish());
        let f = m.func(fid);
        let cfg = Cfg::new(f);
        let dt = DomTree::new(f, &cfg);
        let forest = LoopForest::new(f, &cfg, &dt);
        let l = forest.loops()[0].clone();
        let env = Environment::for_loop(&m, m.func(fid), &l);
        assert_eq!(
            outline_loop_as_task(&mut m, fid, &l, &env, "t").unwrap_err(),
            TaskError::MultipleExits
        );
    }
}
