//! The Induction Variable (IV) abstraction.
//!
//! Two detectors are provided, mirroring the paper's §4.3 comparison:
//!
//! - [`ivs_noelle`] — NOELLE's SCC-based detection: a loop's induction
//!   variable is the SCC of its aSCCDAG formed by a header phi and its
//!   affine update, independent of loop *shape*. It exposes the start value,
//!   the step, whether the IV *governs* the loop (controls its trip count),
//!   and derived IVs.
//! - [`ivs_llvm`] — the LLVM-9-style detection, which "expects the input IR
//!   to have loops in the do-while shape": for while-shaped loops it finds
//!   no governing induction variable. This asymmetry is what makes LLVM
//!   report 11 governing IVs where NOELLE reports 385 across the paper's 41
//!   benchmarks.

use noelle_analysis::scev::{affine_recurrences, exit_condition, AddRec};
use noelle_ir::inst::{BinOp, Inst, InstId};
use noelle_ir::loops::LoopInfo;
use noelle_ir::module::Function;
use noelle_ir::value::Value;
use std::collections::BTreeSet;

/// One induction variable of a loop.
#[derive(Clone, Debug)]
pub struct InductionVariable {
    /// The affine recurrence (phi, start, step, update).
    pub rec: AddRec,
    /// True if this IV controls the number of iterations.
    pub governing: bool,
    /// The exit bound when governing (`i < bound`).
    pub bound: Option<Value>,
    /// Instructions whose value is an affine function of this IV (derived
    /// IVs), e.g. `j = i * 4 + base`.
    pub derived: BTreeSet<InstId>,
}

/// All induction variables of one loop.
#[derive(Clone, Debug, Default)]
pub struct InductionVariables {
    /// The IVs found.
    pub ivs: Vec<InductionVariable>,
}

impl InductionVariables {
    /// The governing IV, if one was identified.
    pub fn governing(&self) -> Option<&InductionVariable> {
        self.ivs.iter().find(|iv| iv.governing)
    }

    /// The IV rooted at phi `phi`, if any.
    pub fn by_phi(&self, phi: InstId) -> Option<&InductionVariable> {
        self.ivs.iter().find(|iv| iv.rec.phi == phi)
    }

    /// Instructions that belong to any IV's recurrence (phi + update).
    pub fn recurrence_insts(&self) -> BTreeSet<InstId> {
        self.ivs
            .iter()
            .flat_map(|iv| [iv.rec.phi, iv.rec.update])
            .collect()
    }

    /// Number of IVs found.
    pub fn len(&self) -> usize {
        self.ivs.len()
    }

    /// True if no IV was found.
    pub fn is_empty(&self) -> bool {
        self.ivs.is_empty()
    }
}

/// NOELLE's shape-independent, SCC-based IV detection.
pub fn ivs_noelle(f: &Function, l: &LoopInfo) -> InductionVariables {
    let recs = affine_recurrences(f, l);
    let cond = exit_condition(f, l, &recs);
    let mut ivs = Vec::new();
    for (i, rec) in recs.iter().enumerate() {
        let governing = cond.as_ref().map(|c| c.rec_index == i).unwrap_or(false);
        let bound = cond.as_ref().filter(|c| c.rec_index == i).map(|c| c.bound);
        let derived = derived_ivs(f, l, rec);
        ivs.push(InductionVariable {
            rec: rec.clone(),
            governing,
            bound,
            derived,
        });
    }
    InductionVariables { ivs }
}

/// LLVM-9-style IV detection: only meaningful on do-while-shaped loops. On
/// while-shaped loops (the common case after Clang without loop rotation)
/// it finds no governing IV, as the paper observes.
pub fn ivs_llvm(f: &Function, l: &LoopInfo) -> InductionVariables {
    if !l.is_do_while() {
        return InductionVariables::default();
    }
    // Within the do-while shape it looks only at header PHIs updated by a
    // constant step (def-use chains, no SCC reasoning).
    let recs = affine_recurrences(f, l);
    let cond = exit_condition(f, l, &recs);
    let mut ivs = Vec::new();
    for (i, rec) in recs.iter().enumerate() {
        if rec.const_step().is_none() {
            continue; // LLVM-style: requires a constant step
        }
        let governing = cond.as_ref().map(|c| c.rec_index == i).unwrap_or(false);
        let bound = cond.as_ref().filter(|c| c.rec_index == i).map(|c| c.bound);
        ivs.push(InductionVariable {
            rec: rec.clone(),
            governing,
            bound,
            derived: BTreeSet::new(),
        });
    }
    InductionVariables { ivs }
}

/// Instructions in `l` whose value is affine in `rec`: transitive closure of
/// `add`/`sub`/`mul`/`shl` where one operand is IV-derived and the other is
/// trivially loop-invariant.
fn derived_ivs(f: &Function, l: &LoopInfo, rec: &AddRec) -> BTreeSet<InstId> {
    use noelle_analysis::scev::trivially_loop_invariant as inv;
    let mut derived: BTreeSet<InstId> = BTreeSet::new();
    let mut changed = true;
    let in_family = |derived: &BTreeSet<InstId>, v: Value| -> bool {
        match v {
            Value::Inst(i) => i == rec.phi || i == rec.update || derived.contains(&i),
            _ => false,
        }
    };
    let loop_insts: Vec<InstId> = f
        .inst_ids()
        .into_iter()
        .filter(|&id| l.contains(f.parent_block(id)))
        .collect();
    while changed {
        changed = false;
        for &id in &loop_insts {
            if derived.contains(&id) || id == rec.phi || id == rec.update {
                continue;
            }
            if let Inst::Bin { op, lhs, rhs, .. } = f.inst(id) {
                let affine_op = matches!(op, BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Shl);
                if !affine_op {
                    continue;
                }
                let l_fam = in_family(&derived, *lhs);
                let r_fam = in_family(&derived, *rhs);
                let ok = (l_fam && inv(f, l, *rhs)) || (r_fam && inv(f, l, *lhs));
                if ok {
                    derived.insert(id);
                    changed = true;
                }
            }
        }
    }
    derived
}

#[cfg(test)]
mod tests {
    use super::*;
    use noelle_ir::builder::FunctionBuilder;
    use noelle_ir::cfg::Cfg;
    use noelle_ir::dom::DomTree;
    use noelle_ir::inst::IcmpPred;
    use noelle_ir::loops::LoopForest;
    use noelle_ir::types::Type;

    /// while-shaped counted loop with a derived IV j = i * 8.
    fn while_loop_with_derived() -> (Function, LoopInfo) {
        let mut b = FunctionBuilder::new("f", vec![("n", Type::I64)], Type::Void);
        let entry = b.entry_block();
        let header = b.block("header");
        let body = b.block("body");
        let exit = b.block("exit");
        b.switch_to(entry);
        b.br(header);
        b.switch_to(header);
        let i = b.phi(Type::I64, vec![(entry, Value::const_i64(0))]);
        let c = b.icmp(IcmpPred::Slt, Type::I64, i, b.arg(0));
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let j = b.binop(BinOp::Mul, Type::I64, i, Value::const_i64(8));
        let k = b.binop(BinOp::Add, Type::I64, j, Value::const_i64(16));
        let _ = k;
        let i2 = b.binop(BinOp::Add, Type::I64, i, Value::const_i64(1));
        b.br(header);
        b.add_incoming(i, body, i2);
        b.switch_to(exit);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let dt = DomTree::new(&f, &cfg);
        let forest = LoopForest::new(&f, &cfg, &dt);
        let l = forest.loops()[0].clone();
        (f, l)
    }

    /// do-while-shaped counted loop.
    fn do_while_loop() -> (Function, LoopInfo) {
        let mut b = FunctionBuilder::new("f", vec![("n", Type::I64)], Type::Void);
        let entry = b.entry_block();
        let body = b.block("body");
        let exit = b.block("exit");
        b.switch_to(entry);
        b.br(body);
        b.switch_to(body);
        let i = b.phi(Type::I64, vec![(entry, Value::const_i64(0))]);
        let i2 = b.binop(BinOp::Add, Type::I64, i, Value::const_i64(1));
        let c = b.icmp(IcmpPred::Slt, Type::I64, i2, b.arg(0));
        b.cond_br(c, body, exit);
        b.add_incoming(i, body, i2);
        b.switch_to(exit);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let dt = DomTree::new(&f, &cfg);
        let forest = LoopForest::new(&f, &cfg, &dt);
        let l = forest.loops()[0].clone();
        (f, l)
    }

    #[test]
    fn noelle_finds_governing_iv_in_while_loop() {
        let (f, l) = while_loop_with_derived();
        let ivs = ivs_noelle(&f, &l);
        assert_eq!(ivs.len(), 1);
        let gov = ivs.governing().expect("governing IV");
        assert_eq!(gov.rec.const_step(), Some(1));
        assert_eq!(gov.bound, Some(Value::Arg(0)));
        // Derived: j = i*8 and k = j+16.
        assert_eq!(gov.derived.len(), 2);
    }

    #[test]
    fn llvm_finds_nothing_in_while_loop() {
        // This is the §4.3 asymmetry: same loop, no IV for the LLVM-style
        // analysis because the loop is while-shaped.
        let (f, l) = while_loop_with_derived();
        let ivs = ivs_llvm(&f, &l);
        assert!(ivs.is_empty());
        assert!(ivs.governing().is_none());
    }

    #[test]
    fn both_find_iv_in_do_while_loop() {
        let (f, l) = do_while_loop();
        let a = ivs_noelle(&f, &l);
        let b = ivs_llvm(&f, &l);
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
        assert!(a.governing().is_some());
        assert!(b.governing().is_some());
    }

    #[test]
    fn recurrence_insts_cover_phi_and_update() {
        let (f, l) = while_loop_with_derived();
        let ivs = ivs_noelle(&f, &l);
        let insts = ivs.recurrence_insts();
        assert_eq!(insts.len(), 2);
        for id in insts {
            assert!(matches!(
                f.inst(id),
                Inst::Phi { .. } | Inst::Bin { op: BinOp::Add, .. }
            ));
        }
        let phi = ivs.ivs[0].rec.phi;
        assert!(ivs.by_phi(phi).is_some());
    }

    #[test]
    fn non_governing_secondary_iv() {
        // Two IVs; only i governs.
        let mut b = FunctionBuilder::new("f", vec![("n", Type::I64)], Type::Void);
        let entry = b.entry_block();
        let header = b.block("header");
        let body = b.block("body");
        let exit = b.block("exit");
        b.switch_to(entry);
        b.br(header);
        b.switch_to(header);
        let i = b.phi(Type::I64, vec![(entry, Value::const_i64(0))]);
        let j = b.phi(Type::I64, vec![(entry, Value::const_i64(100))]);
        let c = b.icmp(IcmpPred::Slt, Type::I64, i, b.arg(0));
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let i2 = b.binop(BinOp::Add, Type::I64, i, Value::const_i64(1));
        let j2 = b.binop(BinOp::Sub, Type::I64, j, Value::const_i64(3));
        b.br(header);
        b.add_incoming(i, body, i2);
        b.add_incoming(j, body, j2);
        b.switch_to(exit);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let dt = DomTree::new(&f, &cfg);
        let forest = LoopForest::new(&f, &cfg, &dt);
        let l = forest.loops()[0].clone();
        let ivs = ivs_noelle(&f, &l);
        assert_eq!(ivs.len(), 2);
        assert_eq!(ivs.ivs.iter().filter(|iv| iv.governing).count(), 1);
        let j_iv = ivs
            .ivs
            .iter()
            .find(|iv| iv.rec.const_step() == Some(-3))
            .expect("j IV");
        assert!(!j_iv.governing);
    }
}
