//! The demand-driven `Noelle` manager.
//!
//! "NOELLE's abstractions are demand-driven to preserve compilation time and
//! memory. Hence, users only pay for the abstractions they need. In other
//! words, if a user does not need the program dependence graph (PDG), then
//! it will not pay the cost of analyzing the program to compute its
//! dependences."
//!
//! [`Noelle`] owns the module being compiled, computes abstractions on first
//! request, caches what is reusable, and records which abstractions each
//! custom tool requested — the record behind Table 4 of the paper.

use crate::architecture::Architecture;
use crate::forest::ProgramLoopForest;
use crate::loop_abs::LoopAbstraction;
use crate::profiler::Profiles;
use noelle_analysis::alias::{
    AliasAnalysis, AliasQueryCache, AliasStack, AndersenAlias, BasicAlias, CachedAlias,
};
use noelle_analysis::modref::ModRefSummaries;
use noelle_ir::cfg::Cfg;
use noelle_ir::dom::{DomTree, PostDomTree};
use noelle_ir::loops::{LoopForest, LoopInfo};
use noelle_ir::module::{FuncId, Module};
use noelle_pdg::callgraph::CallGraph;
use noelle_pdg::pdg::{PdgBuilder, ProgramPdg};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which alias stack powers the PDG.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AliasTier {
    /// LLVM-like basic rules only (the paper's "LLVM" baseline in Fig. 3).
    Basic,
    /// Basic rules + Andersen points-to (standing in for SCAF + SVF).
    Full,
}

/// The abstractions of Table 1, used for request tracking (Table 4).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
#[allow(missing_docs)]
pub enum Abstraction {
    Pdg,
    ASccDag,
    Cg,
    Env,
    Task,
    Dfe,
    Pro,
    Scd,
    L,
    Lb,
    Iv,
    Ivs,
    Inv,
    Fr,
    Isl,
    Rd,
    Ar,
    Ls,
}

impl Abstraction {
    /// The short name used in the paper's tables.
    pub fn short_name(self) -> &'static str {
        match self {
            Abstraction::Pdg => "PDG",
            Abstraction::ASccDag => "aSCCDAG",
            Abstraction::Cg => "CG",
            Abstraction::Env => "ENV",
            Abstraction::Task => "T",
            Abstraction::Dfe => "DFE",
            Abstraction::Pro => "PRO",
            Abstraction::Scd => "SCD",
            Abstraction::L => "L",
            Abstraction::Lb => "LB",
            Abstraction::Iv => "IV",
            Abstraction::Ivs => "IVS",
            Abstraction::Inv => "INV",
            Abstraction::Fr => "FR",
            Abstraction::Isl => "ISL",
            Abstraction::Rd => "RD",
            Abstraction::Ar => "AR",
            Abstraction::Ls => "LS",
        }
    }
}

/// The per-function control-flow structures the manager caches together:
/// one CFG walk serves the dominator trees and the loop forest.
#[derive(Debug)]
pub struct FuncStructures {
    /// Control-flow graph.
    pub cfg: Cfg,
    /// Dominator tree.
    pub dom: DomTree,
    /// Post-dominator tree.
    pub postdom: PostDomTree,
    /// Loop forest.
    pub forest: LoopForest,
}

/// Accumulated build-time cost of one cached abstraction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BuildStat {
    /// Times the abstraction was (re)built from scratch.
    pub builds: u64,
    /// Total wall-clock time spent building, in nanoseconds.
    pub nanos: u128,
}

/// The NOELLE compilation layer over one module.
pub struct Noelle {
    module: Module,
    tier: AliasTier,
    andersen: Option<AndersenAlias>,
    modref: Option<Arc<ModRefSummaries>>,
    call_graph: Option<CallGraph>,
    structures: HashMap<FuncId, FuncStructures>,
    pdg: Option<Arc<ProgramPdg>>,
    alias_cache: Arc<AliasQueryCache>,
    profiles: Option<Profiles>,
    requested: BTreeSet<Abstraction>,
    build_stats: BTreeMap<Abstraction, BuildStat>,
}

impl Noelle {
    /// Load the layer over `module` (what `noelle-load` does: "load the
    /// NOELLE abstractions into memory without computing them").
    pub fn new(module: Module, tier: AliasTier) -> Noelle {
        Noelle {
            module,
            tier,
            andersen: None,
            modref: None,
            call_graph: None,
            structures: HashMap::new(),
            pdg: None,
            alias_cache: Arc::new(AliasQueryCache::new()),
            profiles: None,
            requested: BTreeSet::new(),
            build_stats: BTreeMap::new(),
        }
    }

    /// The module under compilation.
    pub fn module(&self) -> &Module {
        &self.module
    }

    /// Mutable access to the module. Invalidate caches: any transformation
    /// may change dependences, loops, and profiles.
    pub fn module_mut(&mut self) -> &mut Module {
        self.invalidate();
        &mut self.module
    }

    /// Consume the manager, returning the (possibly transformed) module.
    pub fn into_module(self) -> Module {
        self.module
    }

    /// Swap in a rebuilt module (tools like the conservative parallelizer
    /// produce a new `Module` rather than editing in place), returning the
    /// old one. All cached abstractions are invalidated.
    pub fn replace_module(&mut self, m: Module) -> Module {
        self.invalidate();
        std::mem::replace(&mut self.module, m)
    }

    /// Drop every cached abstraction. Alias-cache *entries* are dropped too
    /// (pointer identities may change under mutation); its hit/miss counters
    /// survive so reports cover the whole compilation.
    pub fn invalidate(&mut self) {
        self.andersen = None;
        self.modref = None;
        self.call_graph = None;
        self.structures.clear();
        self.pdg = None;
        self.alias_cache.clear();
        self.profiles = None;
    }

    /// Record that a custom tool used abstraction `a` (tools call this for
    /// the abstractions they exercise without going through a getter, e.g.
    /// DFE or the scheduler).
    pub fn note(&mut self, a: Abstraction) {
        self.requested.insert(a);
    }

    /// The abstractions requested so far, in table order.
    pub fn requested(&self) -> Vec<Abstraction> {
        self.requested.iter().copied().collect()
    }

    /// Reset the request record (between tools).
    pub fn reset_requests(&mut self) {
        self.requested.clear();
    }

    fn ensure_andersen(&mut self) {
        if self.andersen.is_none() {
            self.andersen = Some(AndersenAlias::new(&self.module));
        }
    }

    fn ensure_modref(&mut self) -> Arc<ModRefSummaries> {
        if self.modref.is_none() {
            self.modref = Some(Arc::new(ModRefSummaries::compute(&self.module)));
        }
        Arc::clone(self.modref.as_ref().expect("just set"))
    }

    fn record_build(&mut self, a: Abstraction, d: Duration) {
        let s = self.build_stats.entry(a).or_default();
        s.builds += 1;
        s.nanos += d.as_nanos();
    }

    /// Wall-clock cost of every abstraction built so far, by abstraction.
    pub fn build_stats(&self) -> &BTreeMap<Abstraction, BuildStat> {
        &self.build_stats
    }

    /// The persistent alias-query cache (for hit-rate reporting).
    pub fn alias_cache(&self) -> &AliasQueryCache {
        &self.alias_cache
    }

    /// Run `k` against the manager's memoizing alias stack and shared
    /// mod/ref summaries (the immutable-borrow core of [`Noelle::with_pdg`]
    /// and [`Noelle::pdg`]).
    fn with_cached_stack<R>(
        &self,
        modref: Arc<ModRefSummaries>,
        k: impl FnOnce(&Module, &PdgBuilder<'_>) -> R,
    ) -> R {
        let basic = BasicAlias::new(&self.module);
        let mut tiers: Vec<&dyn AliasAnalysis> = vec![&basic];
        if let (AliasTier::Full, Some(a)) = (self.tier, self.andersen.as_ref()) {
            tiers.push(a);
        }
        let stack = AliasStack::new(tiers);
        let cached = CachedAlias::new(&stack, &self.alias_cache);
        let builder = PdgBuilder::new_with_modref(&self.module, &cached, modref);
        k(&self.module, &builder)
    }

    /// Run `k` with a [`PdgBuilder`] configured for this manager's alias
    /// tier. The builder memoizes alias queries into the manager's
    /// persistent cache and shares the cached mod/ref summaries, so repeated
    /// calls do not re-pay analysis costs. The PDG abstraction is recorded
    /// as requested.
    pub fn with_pdg<R>(&mut self, k: impl FnOnce(&Module, &PdgBuilder<'_>) -> R) -> R {
        self.note(Abstraction::Pdg);
        if self.tier == AliasTier::Full {
            self.ensure_andersen();
        }
        let modref = self.ensure_modref();
        self.with_cached_stack(modref, k)
    }

    /// The whole-program PDG, built once (in parallel, demand-driven) and
    /// shared through a cheap `Arc` handle. Mutating the module through
    /// [`Noelle::module_mut`] invalidates the cached graph; holders of old
    /// handles keep a consistent pre-mutation snapshot.
    pub fn pdg(&mut self) -> Arc<ProgramPdg> {
        self.note(Abstraction::Pdg);
        if self.pdg.is_none() {
            if self.tier == AliasTier::Full {
                self.ensure_andersen();
            }
            let modref = self.ensure_modref();
            let t = Instant::now();
            let built = self.with_cached_stack(modref, |_, b| b.program_pdg());
            self.record_build(Abstraction::Pdg, t.elapsed());
            self.pdg = Some(Arc::new(built));
        }
        Arc::clone(self.pdg.as_ref().expect("just set"))
    }

    /// The cached control-flow structures (CFG, dominator and post-dominator
    /// trees, loop forest) of function `fid`, built together on first
    /// request.
    pub fn structures(&mut self, fid: FuncId) -> &FuncStructures {
        self.note(Abstraction::Ls);
        if !self.structures.contains_key(&fid) {
            let t = Instant::now();
            let f = self.module.func(fid);
            let cfg = Cfg::new(f);
            let dom = DomTree::new(f, &cfg);
            let postdom = PostDomTree::new(f, &cfg);
            let forest = LoopForest::new(f, &cfg, &dom);
            self.structures.insert(
                fid,
                FuncStructures {
                    cfg,
                    dom,
                    postdom,
                    forest,
                },
            );
            let elapsed = t.elapsed();
            self.record_build(Abstraction::Ls, elapsed);
        }
        &self.structures[&fid]
    }

    /// Solve a data-flow problem over function `fid` with the engine (DFE),
    /// reusing the cached CFG. External callers cannot borrow the module and
    /// the cached structures simultaneously (both hand out borrows of the
    /// manager), so this helper runs the engine from inside, where the two
    /// live in separate fields. Records the DFE abstraction as requested.
    pub fn solve_dataflow(
        &mut self,
        fid: FuncId,
        problem: &impl noelle_analysis::dfe::DataFlowProblem,
    ) -> noelle_analysis::dfe::DataFlowResult {
        self.note(Abstraction::Dfe);
        self.structures(fid); // ensure the CFG is cached
        let f = self.module.func(fid);
        let cfg = &self.structures[&fid].cfg;
        noelle_analysis::dfe::DataFlowEngine::new().solve(f, cfg, problem)
    }

    /// The loop structures (LS) of function `fid`, cached.
    pub fn loop_forest(&mut self, fid: FuncId) -> &LoopForest {
        &self.structures(fid).forest
    }

    /// All loops of `fid` (cloned structures, safe to hold across other
    /// manager calls).
    pub fn loops_of(&mut self, fid: FuncId) -> Vec<LoopInfo> {
        self.loop_forest(fid).loops().to_vec()
    }

    /// The program-wide loop forest (FR).
    pub fn program_loop_forest(&mut self) -> ProgramLoopForest {
        self.note(Abstraction::Fr);
        self.note(Abstraction::Ls);
        ProgramLoopForest::build(&self.module)
    }

    /// The canonical Loop abstraction (L) for loop `l` of `fid`: structure,
    /// loop PDG, aSCCDAG, IVs, invariants, reductions, environment.
    pub fn loop_abstraction(&mut self, fid: FuncId, l: LoopInfo) -> LoopAbstraction {
        for a in [
            Abstraction::L,
            Abstraction::ASccDag,
            Abstraction::Iv,
            Abstraction::Inv,
            Abstraction::Rd,
            Abstraction::Env,
        ] {
            self.note(a);
        }
        // Carve from the cached whole-program PDG: requesting several loops
        // of one function analyzes the function once.
        let pdg = self.pdg();
        let modref = self.ensure_modref();
        let t = Instant::now();
        let la = self.with_cached_stack(modref, |_, b| match pdg.per_function.get(&fid) {
            Some(fg) => LoopAbstraction::build_with(b, fid, l, fg),
            None => LoopAbstraction::build(b, fid, l),
        });
        self.record_build(Abstraction::L, t.elapsed());
        la
    }

    /// The complete program call graph (CG), cached. Always uses the
    /// points-to solution so indirect calls are resolved.
    pub fn call_graph(&mut self) -> &CallGraph {
        self.note(Abstraction::Cg);
        if self.call_graph.is_none() {
            self.ensure_andersen();
            let t = Instant::now();
            let cg = CallGraph::build(&self.module, self.andersen.as_ref().expect("cached"));
            let elapsed = t.elapsed();
            self.call_graph = Some(cg);
            self.record_build(Abstraction::Cg, elapsed);
        }
        self.call_graph.as_ref().expect("just set")
    }

    /// The call graph if it has already been built (no build is triggered).
    /// Lets callers holding only `&self` — e.g. a server serializing a
    /// just-built graph next to the module — read it back without a second
    /// mutable borrow.
    pub fn cached_call_graph(&self) -> Option<&CallGraph> {
        self.call_graph.as_ref()
    }

    /// Profiles embedded in the module, or empty profiles when absent (PRO).
    pub fn profiles(&mut self) -> Profiles {
        self.note(Abstraction::Pro);
        if self.profiles.is_none() {
            self.profiles = Some(Profiles::from_module(&self.module).unwrap_or_default());
        }
        self.profiles.clone().expect("just set")
    }

    /// The architecture description embedded in the module, or the default
    /// machine (AR).
    pub fn architecture(&mut self) -> Architecture {
        self.note(Abstraction::Ar);
        Architecture::from_module(&self.module).unwrap_or_default()
    }

    /// The alias tier this manager was configured with.
    pub fn tier(&self) -> AliasTier {
        self.tier
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noelle_ir::builder::FunctionBuilder;
    use noelle_ir::inst::{BinOp, IcmpPred};
    use noelle_ir::types::Type;
    use noelle_ir::value::Value;

    fn loop_module() -> Module {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(
            "k",
            vec![("a", Type::I64.ptr_to()), ("n", Type::I64)],
            Type::I64,
        );
        let entry = b.entry_block();
        let header = b.block("header");
        let body = b.block("body");
        let exit = b.block("exit");
        b.switch_to(entry);
        b.br(header);
        b.switch_to(header);
        let i = b.phi(Type::I64, vec![(entry, Value::const_i64(0))]);
        let sum = b.phi(Type::I64, vec![(entry, Value::const_i64(0))]);
        let c = b.icmp(IcmpPred::Slt, Type::I64, i, b.arg(1));
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let p = b.index_ptr(Type::I64, b.arg(0), i);
        let v = b.load(Type::I64, p);
        let sum2 = b.binop(BinOp::Add, Type::I64, sum, v);
        let i2 = b.binop(BinOp::Add, Type::I64, i, Value::const_i64(1));
        b.br(header);
        b.add_incoming(i, body, i2);
        b.add_incoming(sum, body, sum2);
        b.switch_to(exit);
        b.ret(Some(sum));
        m.add_function(b.finish());
        m
    }

    #[test]
    fn demand_driven_requests_recorded() {
        let mut n = Noelle::new(loop_module(), AliasTier::Full);
        assert!(n.requested().is_empty());
        let fid = n.module().func_ids().next().unwrap();
        let loops = n.loops_of(fid);
        assert_eq!(loops.len(), 1);
        assert_eq!(n.requested(), vec![Abstraction::Ls]);
        let la = n.loop_abstraction(fid, loops[0].clone());
        assert!(la.is_doall());
        let req = n.requested();
        assert!(req.contains(&Abstraction::Pdg));
        assert!(req.contains(&Abstraction::ASccDag));
        assert!(req.contains(&Abstraction::L));
        n.reset_requests();
        assert!(n.requested().is_empty());
    }

    #[test]
    fn caches_cleared_on_mutation() {
        let mut n = Noelle::new(loop_module(), AliasTier::Full);
        let fid = n.module().func_ids().next().unwrap();
        let _ = n.loop_forest(fid);
        let _ = n.call_graph();
        let _ = n.pdg();
        // Touch the module mutably: caches must reset.
        n.module_mut().metadata.insert("x".into(), "y".into());
        assert!(n.structures.is_empty());
        assert!(n.call_graph.is_none());
        assert!(n.pdg.is_none());
        assert!(n.modref.is_none());
        // Re-requests still work.
        assert_eq!(n.loops_of(fid).len(), 1);
    }

    #[test]
    fn pdg_handle_is_cached_and_cheap() {
        let mut n = Noelle::new(loop_module(), AliasTier::Full);
        let p1 = n.pdg();
        let p2 = n.pdg();
        // Same underlying graph, no rebuild.
        assert!(Arc::ptr_eq(&p1, &p2));
        assert_eq!(n.build_stats()[&Abstraction::Pdg].builds, 1);
        // Invalidation forces a rebuild; the old handle stays readable.
        n.module_mut().metadata.insert("x".into(), "y".into());
        let p3 = n.pdg();
        assert!(!Arc::ptr_eq(&p1, &p3));
        assert_eq!(n.build_stats()[&Abstraction::Pdg].builds, 2);
        assert_eq!(p1.num_edges(), p3.num_edges());
    }

    #[test]
    fn structures_cached_and_stats_recorded() {
        let mut n = Noelle::new(loop_module(), AliasTier::Basic);
        let fid = n.module().func_ids().next().unwrap();
        let _ = n.structures(fid);
        let _ = n.structures(fid);
        let _ = n.loop_forest(fid);
        // One build despite three requests.
        assert_eq!(n.build_stats()[&Abstraction::Ls].builds, 1);
        let entry = n.module().func(fid).entry();
        let s = n.structures(fid);
        assert!(!s.forest.loops().is_empty());
        assert!(s.dom.dominates(entry, s.forest.loops()[0].header));
    }

    #[test]
    fn alias_cache_persists_across_pdg_requests() {
        let mut n = Noelle::new(loop_module(), AliasTier::Full);
        let fid = n.module().func_ids().next().unwrap();
        n.with_pdg(|_, b| {
            let _ = b.function_pdg(fid);
        });
        let (_, m1) = n.alias_cache().stats();
        n.with_pdg(|_, b| {
            let _ = b.function_pdg(fid);
        });
        let (h2, m2) = n.alias_cache().stats();
        // The second identical build answers from the cache: misses did not
        // grow, hits did.
        assert_eq!(m1, m2);
        assert!(h2 > 0);
        assert!(n.alias_cache().hit_rate() > 0.0);
    }

    #[test]
    fn basic_tier_skips_andersen_for_pdg() {
        let mut n = Noelle::new(loop_module(), AliasTier::Basic);
        let fid = n.module().func_ids().next().unwrap();
        n.with_pdg(|_, b| {
            let _ = b.function_pdg(fid);
        });
        assert!(
            n.andersen.is_none(),
            "basic tier must not compute points-to"
        );
        // The call graph still forces points-to (it needs indirect callees).
        let _ = n.call_graph();
        assert!(n.andersen.is_some());
    }

    #[test]
    fn profiles_and_arch_default_when_missing() {
        let mut n = Noelle::new(loop_module(), AliasTier::Basic);
        let p = n.profiles();
        assert_eq!(p, Profiles::default());
        let a = n.architecture();
        assert_eq!(a.num_cores, 12);
    }
}
