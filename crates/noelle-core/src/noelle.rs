//! The demand-driven `Noelle` manager.
//!
//! "NOELLE's abstractions are demand-driven to preserve compilation time and
//! memory. Hence, users only pay for the abstractions they need. In other
//! words, if a user does not need the program dependence graph (PDG), then
//! it will not pay the cost of analyzing the program to compute its
//! dependences."
//!
//! [`Noelle`] owns the module being compiled, computes abstractions on first
//! request, caches what is reusable, and records which abstractions each
//! custom tool requested — the record behind Table 4 of the paper.

use crate::architecture::Architecture;
use crate::forest::ProgramLoopForest;
use crate::loop_abs::LoopAbstraction;
use crate::profiler::Profiles;
use noelle_analysis::alias::{
    AliasAnalysis, AliasQueryCache, AliasStack, AndersenAlias, BasicAlias, CachedAlias,
};
use noelle_analysis::modref::ModRefSummaries;
use noelle_ir::cfg::Cfg;
use noelle_ir::dom::{DomTree, PostDomTree};
use noelle_ir::inst::{Callee, Inst, InstId};
use noelle_ir::loops::{LoopForest, LoopInfo};
use noelle_ir::module::{FuncId, Function, Module};
use noelle_pdg::callgraph::CallGraph;
use noelle_pdg::depgraph::DepGraph;
use noelle_pdg::pdg::{PdgBuilder, ProgramPdg};
use noelle_store::{artifact, ArtifactKind, KeyCtx, Store};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which alias stack powers the PDG.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AliasTier {
    /// LLVM-like basic rules only (the paper's "LLVM" baseline in Fig. 3).
    Basic,
    /// Basic rules + Andersen points-to (standing in for SCAF + SVF).
    Full,
}

/// The abstractions of Table 1, used for request tracking (Table 4).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
#[allow(missing_docs)]
pub enum Abstraction {
    Pdg,
    ASccDag,
    Cg,
    Env,
    Task,
    Dfe,
    Pro,
    Scd,
    L,
    Lb,
    Iv,
    Ivs,
    Inv,
    Fr,
    Isl,
    Rd,
    Ar,
    Ls,
    Audit,
}

impl Abstraction {
    /// The short name used in the paper's tables.
    pub fn short_name(self) -> &'static str {
        match self {
            Abstraction::Pdg => "PDG",
            Abstraction::ASccDag => "aSCCDAG",
            Abstraction::Cg => "CG",
            Abstraction::Env => "ENV",
            Abstraction::Task => "T",
            Abstraction::Dfe => "DFE",
            Abstraction::Pro => "PRO",
            Abstraction::Scd => "SCD",
            Abstraction::L => "L",
            Abstraction::Lb => "LB",
            Abstraction::Iv => "IV",
            Abstraction::Ivs => "IVS",
            Abstraction::Inv => "INV",
            Abstraction::Fr => "FR",
            Abstraction::Isl => "ISL",
            Abstraction::Rd => "RD",
            Abstraction::Ar => "AR",
            Abstraction::Ls => "LS",
            Abstraction::Audit => "AUDIT",
        }
    }
}

/// The per-function control-flow structures the manager caches together:
/// one CFG walk serves the dominator trees and the loop forest.
#[derive(Debug)]
pub struct FuncStructures {
    /// Control-flow graph.
    pub cfg: Cfg,
    /// Dominator tree.
    pub dom: DomTree,
    /// Post-dominator tree.
    pub postdom: PostDomTree,
    /// Loop forest.
    pub forest: LoopForest,
}

/// Accumulated build-time cost of one cached abstraction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BuildStat {
    /// Times the abstraction was (re)built from scratch.
    pub builds: u64,
    /// Total wall-clock time spent building, in nanoseconds.
    pub nanos: u128,
}

/// Approximate heap footprint of a manager's cached analysis state
/// (see [`Noelle::memory_stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemoryStats {
    /// Bytes held by the cached per-function dependence graphs.
    pub pdg_bytes: usize,
    /// Bytes held by the Andersen points-to rows and tables.
    pub andersen_bytes: usize,
    /// Defined functions in the module.
    pub functions: usize,
    /// `(pdg_bytes + andersen_bytes) / functions`, 0 when there are no
    /// defined functions.
    pub bytes_per_function: u64,
}

/// Counters over the manager's per-function cache slots (PDG partitions and
/// control-flow structures). A "hit" is a function whose cached result was
/// reused across an edit or repeated request; a "miss" is a function that had
/// to be (re)analyzed; an "invalidation" is a function slot dropped by the
/// damage-propagation rule.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FuncCacheCounters {
    /// PDG partitions reused from a previous snapshot.
    pub pdg_hits: u64,
    /// PDG partitions (re)built from scratch.
    pub pdg_misses: u64,
    /// [`FuncStructures`] requests served from the cache.
    pub struct_hits: u64,
    /// [`FuncStructures`] requests that had to build.
    pub struct_misses: u64,
    /// Function cache slots invalidated (by edits or full invalidation).
    pub invalidations: u64,
    /// Edits that kept the whole-module points-to solution because every
    /// touched function's content fingerprint (and the globals') was
    /// unchanged — the re-solve was skipped entirely.
    pub andersen_reuses: u64,
    /// Artifacts loaded from the durable store instead of recomputed.
    pub store_hits: u64,
    /// Store lookups that found nothing (or found a payload that failed
    /// its CRC or codec) and fell back to recomputation.
    pub store_misses: u64,
}

/// Fingerprints of the inputs the cached points-to solution was computed
/// from: one *body* fingerprint per function plus the globals. Bodies, not
/// full content: alias analysis never reads metadata, so an edit whose
/// touched functions all hash the same body (a `touch` that changed
/// nothing, or a metadata-only annotation) provably cannot move any
/// points-to row, and commit skips the whole-module re-solve.
struct AndersenInputs {
    globals: u64,
    funcs: HashMap<FuncId, u64>,
}

/// An open edit transaction over the managed module.
///
/// Created by [`Noelle::edit`]. The transaction hands out module access and
/// records which functions the edit touches; at commit the manager
/// invalidates exactly the touched functions plus the functions the damage
/// rule says can observe them, instead of dropping every cached abstraction.
///
/// Functions *added* during the transaction (e.g. via
/// `Module::get_or_declare` or `Module::add_function` on a scoped borrow)
/// are detected by a function-count watermark and touched automatically;
/// adding a *global* escalates to a full invalidation, since a new global
/// can alias memory in any function.
pub struct EditTx<'a> {
    module: &'a mut Module,
    touched: BTreeSet<FuncId>,
    all: bool,
}

impl EditTx<'_> {
    /// Read-only view of the module being edited.
    pub fn module(&self) -> &Module {
        self.module
    }

    /// Record `fid` as touched without borrowing it.
    pub fn touch(&mut self, fid: FuncId) {
        self.touched.insert(fid);
    }

    /// Escalate to a conservative whole-module invalidation (structural
    /// edits whose blast radius the caller cannot bound).
    pub fn touch_all(&mut self) {
        self.all = true;
    }

    /// Mutable access to one function, recording it as touched.
    pub fn func_mut(&mut self, fid: FuncId) -> &mut Function {
        self.touched.insert(fid);
        self.module.func_mut(fid)
    }

    /// Mutable access to the whole module, with the caller declaring up
    /// front which existing functions the edit may touch. Functions added
    /// during the borrow are picked up by the watermark; metadata-only
    /// edits may pass an empty list.
    pub fn module_touching(&mut self, touched: impl IntoIterator<Item = FuncId>) -> &mut Module {
        self.touched.extend(touched);
        self.module
    }

    /// Mutable access to the whole module with no scoping promise:
    /// equivalent to [`EditTx::touch_all`]. Escape hatch for edits whose
    /// footprint genuinely cannot be described.
    pub fn module_mut(&mut self) -> &mut Module {
        self.all = true;
        self.module
    }

    /// The functions recorded as touched so far (not including the
    /// watermark-detected additions, which are resolved at commit).
    pub fn touched(&self) -> &BTreeSet<FuncId> {
        &self.touched
    }
}

/// The NOELLE compilation layer over one module.
/// Direct call edges maintained *incrementally* across edit commits: a
/// full-module scan builds the map once, after which each commit rescans
/// only the touched functions' call sites. This is what keeps
/// [`Noelle::edit`]'s damage computation off the whole module — both the
/// reverse-caller closure that bounds the mod/ref repair and the
/// "summary changed, damage direct callers" rule read these edges instead
/// of rescanning every instruction.
#[derive(Default)]
struct CallEdges {
    /// Caller -> deduped direct callees.
    callees: HashMap<FuncId, BTreeSet<FuncId>>,
    /// Callee -> direct callers (the reverse index).
    callers: HashMap<FuncId, BTreeSet<FuncId>>,
}

impl CallEdges {
    fn scan_function(m: &Module, fid: FuncId) -> BTreeSet<FuncId> {
        let f = m.func(fid);
        let mut out = BTreeSet::new();
        for id in f.inst_ids() {
            if let Inst::Call {
                callee: Callee::Direct(cid),
                ..
            } = f.inst(id)
            {
                out.insert(*cid);
            }
        }
        out
    }

    fn build(m: &Module) -> CallEdges {
        let mut e = CallEdges::default();
        for fid in m.func_ids() {
            let callees = Self::scan_function(m, fid);
            for &c in &callees {
                e.callers.entry(c).or_default().insert(fid);
            }
            e.callees.insert(fid, callees);
        }
        e
    }

    /// Rescan the call sites of `touched` functions, repairing both maps.
    fn update(&mut self, m: &Module, touched: &BTreeSet<FuncId>) {
        for &f in touched {
            let new = Self::scan_function(m, f);
            let old = self.callees.insert(f, new.clone()).unwrap_or_default();
            for c in old.difference(&new) {
                if let Some(s) = self.callers.get_mut(c) {
                    s.remove(&f);
                }
            }
            for &c in new.difference(&old) {
                self.callers.entry(c).or_default().insert(f);
            }
        }
    }

    fn callers_of(&self, f: FuncId) -> impl Iterator<Item = FuncId> + '_ {
        self.callers.get(&f).into_iter().flatten().copied()
    }

    /// `seeds` plus every transitive direct caller of a seed — exactly the
    /// set whose mod/ref summaries an edit of `seeds` can move.
    fn caller_closure(&self, seeds: &BTreeSet<FuncId>) -> BTreeSet<FuncId> {
        let mut closed = seeds.clone();
        let mut work: Vec<FuncId> = seeds.iter().copied().collect();
        while let Some(f) = work.pop() {
            for c in self.callers_of(f) {
                if closed.insert(c) {
                    work.push(c);
                }
            }
        }
        closed
    }
}

pub struct Noelle {
    module: Module,
    tier: AliasTier,
    andersen: Option<AndersenAlias>,
    /// Fingerprints of the module content `andersen` was solved from;
    /// `Some` exactly when `andersen` is.
    andersen_inputs: Option<AndersenInputs>,
    modref: Option<Arc<ModRefSummaries>>,
    /// Incrementally maintained direct call edges; `Some` whenever `modref`
    /// is (commits repair both together, and both die together on
    /// invalidation, since the scoped mod/ref repair is only sound with
    /// edges that match the summaries' module).
    call_edges: Option<CallEdges>,
    call_graph: Option<CallGraph>,
    structures: HashMap<FuncId, FuncStructures>,
    pdg: Option<Arc<ProgramPdg>>,
    /// The last complete PDG snapshot, kept across edits so undamaged
    /// partitions can be reused by the next [`Noelle::pdg`] call.
    prev_pdg: Option<Arc<ProgramPdg>>,
    /// Functions whose partitions in `prev_pdg` are untrusted (damaged by
    /// edits since that snapshot was built).
    stale: BTreeSet<FuncId>,
    alias_cache: Arc<AliasQueryCache>,
    profiles: Option<Profiles>,
    requested: BTreeSet<Abstraction>,
    build_stats: BTreeMap<Abstraction, BuildStat>,
    revisions: HashMap<FuncId, u64>,
    counters: FuncCacheCounters,
    /// Durable artifact store, when attached. Misses consult it before
    /// recomputing; rebuilt artifacts are written back asynchronously.
    store: Option<Arc<Store>>,
}

impl Noelle {
    /// Load the layer over `module` (what `noelle-load` does: "load the
    /// NOELLE abstractions into memory without computing them").
    pub fn new(module: Module, tier: AliasTier) -> Noelle {
        Noelle {
            module,
            tier,
            andersen: None,
            andersen_inputs: None,
            modref: None,
            call_edges: None,
            call_graph: None,
            structures: HashMap::new(),
            pdg: None,
            prev_pdg: None,
            stale: BTreeSet::new(),
            alias_cache: Arc::new(AliasQueryCache::new()),
            profiles: None,
            requested: BTreeSet::new(),
            build_stats: BTreeMap::new(),
            revisions: HashMap::new(),
            counters: FuncCacheCounters::default(),
            store: None,
        }
    }

    /// Attach a durable artifact store: from now on, PDG-partition and
    /// loop-forest misses consult it before recomputing, and freshly built
    /// artifacts (including Andersen rows) are queued for asynchronous
    /// write-back. Content addressing makes attachment safe at any point —
    /// a stale entry is simply never addressed.
    pub fn set_store(&mut self, store: Arc<Store>) {
        self.store = Some(store);
    }

    /// The attached durable store, if any.
    pub fn store(&self) -> Option<&Arc<Store>> {
        self.store.as_ref()
    }

    /// The store-key context for the module's *current* content. Partition
    /// and rows keys bake in a module-wide code fingerprint (their inputs
    /// are interprocedural); forest keys use only the owning function.
    fn store_key_ctx(&self) -> KeyCtx {
        KeyCtx {
            globals_fp: self.module.globals_fingerprint(),
            module_code_fp: KeyCtx::module_code_fp(
                self.module
                    .func_ids()
                    .map(|fid| self.module.func(fid).content_fingerprint()),
            ),
            tier: match self.tier {
                AliasTier::Basic => 0,
                AliasTier::Full => 1,
            },
        }
    }

    /// The module under compilation.
    pub fn module(&self) -> &Module {
        &self.module
    }

    /// Run an edit transaction over the module. The closure receives an
    /// [`EditTx`] that hands out module access while recording which
    /// functions the edit touches; on return the manager invalidates only
    /// the touched functions plus the damage the edit can propagate:
    ///
    /// * per-function structures and local PDG partitions of touched
    ///   functions;
    /// * PDG partitions of functions whose view of the program could have
    ///   shifted — direct callers of any function whose mod/ref summary
    ///   changed (reached through the cached call graph when present), and
    ///   functions whose points-to rows differ under a fresh Andersen
    ///   solution;
    /// * per-function alias-cache entries of exactly that damage set.
    ///
    /// Everything else — structures, alias answers, and PDG partitions of
    /// undamaged functions — is reused, and the next [`Noelle::pdg`] call
    /// repairs the snapshot instead of rebuilding it. The repaired graph is
    /// edge-identical to a from-scratch build.
    pub fn edit<R>(&mut self, k: impl FnOnce(&mut EditTx<'_>) -> R) -> R {
        self.edit_with_damage(k).0
    }

    /// [`Noelle::edit`], additionally reporting the **damage set**: every
    /// function whose cached analysis results (and therefore any derived
    /// diagnostics) may differ after the edit. Consumers that maintain
    /// per-function derived state — the IDE's incremental linter — re-derive
    /// exactly this set and keep everything else.
    ///
    /// The set is conservative: it always contains the touched functions,
    /// and escalating edits (new globals, [`EditTx::touch_all`]) report
    /// every function. A read-only transaction reports an empty set.
    pub fn edit_with_damage<R>(
        &mut self,
        k: impl FnOnce(&mut EditTx<'_>) -> R,
    ) -> (R, BTreeSet<FuncId>) {
        let baseline_funcs = self.module.functions().len();
        let baseline_globals = self.module.globals().len();
        let (r, mut touched, mut all) = {
            let mut tx = EditTx {
                module: &mut self.module,
                touched: BTreeSet::new(),
                all: false,
            };
            let r = k(&mut tx);
            (r, std::mem::take(&mut tx.touched), tx.all)
        };
        // Functions appended during the edit are new by construction.
        for i in baseline_funcs..self.module.functions().len() {
            touched.insert(FuncId(i as u32));
        }
        // A new global can be aliased from any function: escalate.
        if self.module.globals().len() != baseline_globals {
            all = true;
        }
        let damage = self.commit(touched, all);
        (r, damage)
    }

    /// Apply the damage-propagation rule for a committed edit transaction,
    /// returning the damage set.
    fn commit(&mut self, touched: BTreeSet<FuncId>, all: bool) -> BTreeSet<FuncId> {
        if all {
            self.invalidate();
            return self.module.func_ids().collect();
        }
        if touched.is_empty() {
            return BTreeSet::new(); // read-only transaction
        }
        for &fid in &touched {
            *self.revisions.entry(fid).or_insert(0) += 1;
            self.structures.remove(&fid);
        }
        // Profiles live in module metadata, which a scoped borrow may have
        // rewritten; they are cheap to re-parse on demand.
        self.profiles = None;
        let Some(old_modref) = self.modref.take() else {
            // No mod/ref summaries means no PDG, no alias-cache entries and
            // no previous snapshot are cached (they all force mod/ref
            // first). Whole-program state that *can* exist without them —
            // the points-to solution and the call graph — is simply
            // dropped; there is no per-function reuse at stake.
            debug_assert!(self.pdg.is_none() && self.prev_pdg.is_none());
            self.andersen = None;
            self.andersen_inputs = None;
            self.call_graph = None;
            // The edge map is only repaired on the summary-bearing path;
            // without that repair the touched functions' rows go stale.
            self.call_edges = None;
            self.counters.invalidations += touched.len() as u64;
            // Without the old summaries the interprocedural blast radius
            // cannot be bounded, so report every function as damaged.
            return self.module.func_ids().collect();
        };
        // Repair the direct-call-edge map for the touched functions (first
        // commit builds it whole), then bound the mod/ref repair to the
        // touched set plus its transitive callers — the only functions
        // whose summaries an edit can move, since summaries flow
        // callee -> caller. Everything here is proportional to the edit's
        // blast radius, not the module.
        let edges = match self.call_edges.take() {
            Some(mut e) => {
                e.update(&self.module, &touched);
                e
            }
            None => CallEdges::build(&self.module),
        };
        let affected = edges.caller_closure(&touched);
        let mut new_modref = (*old_modref).clone();
        new_modref.recompute_scoped(&self.module, &affected);
        let new_modref = Arc::new(new_modref);
        // A function's PDG reads the mod/ref summaries of its *direct*
        // callees (indirect calls are handled conservatively), so summary
        // changes damage direct callers.
        let mut changed: BTreeSet<FuncId> = touched.clone();
        for &fid in &affected {
            if old_modref.may_read(fid) != new_modref.may_read(fid)
                || old_modref.may_write(fid) != new_modref.may_write(fid)
                || old_modref.has_io(fid) != new_modref.has_io(fid)
            {
                changed.insert(fid);
            }
        }
        let mut damage = touched.clone();
        for &c in &changed {
            damage.extend(edges.callers_of(c));
        }
        self.call_edges = Some(edges);
        // Under the full tier the PDG also consults the points-to solution.
        // The solution is a pure function of the function bodies and the
        // globals, so if every touched function's body fingerprint (and
        // the globals') is unchanged, the cached solution is still exact and
        // the whole-module re-solve is skipped. Otherwise re-solve and
        // damage every function whose rows moved.
        if self.andersen.is_some() {
            if self.andersen_inputs_unchanged(&touched) {
                self.counters.andersen_reuses += 1;
            } else {
                let new_andersen = AndersenAlias::new(&self.module);
                let old_rows = self.andersen.as_ref().expect("checked").rows_by_function();
                let new_rows = new_andersen.rows_by_function();
                for fid in self.module.func_ids() {
                    if old_rows.get(&fid) != new_rows.get(&fid) {
                        damage.insert(fid);
                    }
                }
                self.andersen = Some(new_andersen);
                self.record_andersen_inputs();
            }
        }
        self.alias_cache.invalidate_funcs(&damage);
        self.call_graph = None;
        self.modref = Some(new_modref);
        if let Some(p) = self.pdg.take() {
            self.prev_pdg = Some(p);
        }
        self.stale.extend(damage.iter().copied());
        self.counters.invalidations += damage.len() as u64;
        damage
    }

    /// Consume the manager, returning the (possibly transformed) module.
    pub fn into_module(self) -> Module {
        self.module
    }

    /// Swap in a rebuilt module (tools like the conservative parallelizer
    /// produce a new `Module` rather than editing in place), returning the
    /// old one. All cached abstractions are invalidated.
    pub fn replace_module(&mut self, m: Module) -> Module {
        self.invalidate();
        std::mem::replace(&mut self.module, m)
    }

    /// Drop every cached abstraction. Alias-cache *entries* are dropped too
    /// (pointer identities may change under mutation); its hit/miss counters
    /// survive so reports cover the whole compilation.
    pub fn invalidate(&mut self) {
        self.andersen = None;
        self.andersen_inputs = None;
        self.modref = None;
        self.call_edges = None;
        self.call_graph = None;
        self.structures.clear();
        self.pdg = None;
        self.prev_pdg = None;
        self.stale.clear();
        self.alias_cache.clear();
        self.profiles = None;
        for fid in self.module.func_ids() {
            *self.revisions.entry(fid).or_insert(0) += 1;
        }
        self.counters.invalidations += self.module.functions().len() as u64;
    }

    /// Record that a custom tool used abstraction `a` (tools call this for
    /// the abstractions they exercise without going through a getter, e.g.
    /// DFE or the scheduler).
    pub fn note(&mut self, a: Abstraction) {
        self.requested.insert(a);
    }

    /// The abstractions requested so far, in table order.
    pub fn requested(&self) -> Vec<Abstraction> {
        self.requested.iter().copied().collect()
    }

    /// Reset the request record (between tools).
    pub fn reset_requests(&mut self) {
        self.requested.clear();
    }

    fn ensure_andersen(&mut self) {
        if self.andersen.is_none() {
            let andersen = AndersenAlias::new(&self.module);
            // Queue the observable rows for asynchronous write-back. Rows
            // are a write-only artifact from this process's point of view
            // (the full solver state cannot be reconstructed from them);
            // they exist so fsck and replicas can audit the solve, and so
            // the fuzz oracle can round-trip them.
            if let Some(store) = &self.store {
                let ctx = self.store_key_ctx();
                for (fid, rows) in andersen.rows_by_function() {
                    let key = ctx.rows_key(self.module.func(fid).content_fingerprint());
                    store.put(
                        key,
                        ArtifactKind::PointsToRows,
                        artifact::encode_points_to(&rows),
                    );
                }
            }
            self.andersen = Some(andersen);
            self.record_andersen_inputs();
        }
    }

    /// Snapshot the fingerprints of everything the points-to solution reads.
    fn record_andersen_inputs(&mut self) {
        let funcs = self
            .module
            .func_ids()
            .map(|fid| (fid, self.module.func(fid).body_fingerprint()))
            .collect();
        self.andersen_inputs = Some(AndersenInputs {
            globals: self.module.globals_fingerprint(),
            funcs,
        });
    }

    /// True when the cached points-to solution is still exact after an edit
    /// that touched `touched`: the globals and every touched function hash
    /// to what the solution was computed from. Functions appended by the
    /// edit are in `touched` (watermark) and have no recorded fingerprint,
    /// so any growth forces a re-solve.
    fn andersen_inputs_unchanged(&self, touched: &BTreeSet<FuncId>) -> bool {
        let Some(inputs) = &self.andersen_inputs else {
            return false;
        };
        if inputs.globals != self.module.globals_fingerprint() {
            return false;
        }
        touched.iter().all(|fid| {
            inputs
                .funcs
                .get(fid)
                .is_some_and(|&fp| self.module.func(*fid).body_fingerprint() == fp)
        })
    }

    /// One function's PDG partition from the durable store, if present.
    ///
    /// Content addressing makes this safe at any point: the key covers the
    /// whole module's current content, so a hit was computed from inputs
    /// byte-identical to what a full build would see right now. Misses are
    /// not counted here — the fall-back full build accounts for them.
    fn store_partition(&mut self, fid: FuncId) -> Option<Arc<DepGraph<InstId>>> {
        self.store.as_ref()?;
        let ctx = self.store_key_ctx();
        let store = self.store.as_ref().expect("checked above");
        let key = ctx.partition_key(self.module.func(fid).content_fingerprint());
        let g = store
            .get(key)
            .and_then(|b| artifact::decode_partition(&b).ok())?;
        self.counters.store_hits += 1;
        Some(Arc::new(g))
    }

    fn ensure_modref(&mut self) -> Arc<ModRefSummaries> {
        if self.modref.is_none() {
            self.modref = Some(Arc::new(ModRefSummaries::compute(&self.module)));
        }
        Arc::clone(self.modref.as_ref().expect("just set"))
    }

    fn record_build(&mut self, a: Abstraction, d: Duration) {
        let s = self.build_stats.entry(a).or_default();
        s.builds += 1;
        s.nanos += d.as_nanos();
    }

    /// Wall-clock cost of every abstraction built so far, by abstraction.
    pub fn build_stats(&self) -> &BTreeMap<Abstraction, BuildStat> {
        &self.build_stats
    }

    /// Hit/miss/invalidation counters over the per-function cache slots.
    pub fn func_cache_counters(&self) -> FuncCacheCounters {
        self.counters
    }

    /// Approximate heap footprint of the cached analysis state: the
    /// per-function PDGs (frozen CSR form) and the Andersen points-to rows.
    /// Only what is currently built is counted — a manager that never built
    /// its PDG reports zero PDG bytes.
    pub fn memory_stats(&self) -> MemoryStats {
        let pdg_bytes = self.pdg.as_ref().map_or(0, |p| p.approx_heap_bytes());
        let andersen_bytes = self
            .andersen
            .as_ref()
            .map_or(0, AndersenAlias::approx_heap_bytes);
        let functions = self
            .module
            .functions()
            .iter()
            .filter(|f| !f.is_declaration())
            .count();
        let total = pdg_bytes + andersen_bytes;
        MemoryStats {
            pdg_bytes,
            andersen_bytes,
            functions,
            bytes_per_function: total.checked_div(functions).unwrap_or(0) as u64,
        }
    }

    /// How many times function `fid` has been invalidated (0 = never edited
    /// since load). Bumped per touched function by [`Noelle::edit`] and for
    /// every function by a full invalidation.
    pub fn revision(&self, fid: FuncId) -> u64 {
        self.revisions.get(&fid).copied().unwrap_or(0)
    }

    /// The persistent alias-query cache (for hit-rate reporting).
    pub fn alias_cache(&self) -> &AliasQueryCache {
        &self.alias_cache
    }

    /// Run `k` against the manager's memoizing alias stack and shared
    /// mod/ref summaries (the immutable-borrow core of [`Noelle::with_pdg`]
    /// and [`Noelle::pdg`]).
    fn with_cached_stack<R>(
        &self,
        modref: Arc<ModRefSummaries>,
        k: impl FnOnce(&Module, &PdgBuilder<'_>) -> R,
    ) -> R {
        let basic = BasicAlias::new(&self.module);
        let mut tiers: Vec<&dyn AliasAnalysis> = vec![&basic];
        if let (AliasTier::Full, Some(a)) = (self.tier, self.andersen.as_ref()) {
            tiers.push(a);
        }
        let stack = AliasStack::new(tiers);
        let cached = CachedAlias::new(&stack, &self.alias_cache);
        let builder = PdgBuilder::new_with_modref(&self.module, &cached, modref);
        k(&self.module, &builder)
    }

    /// Run `k` with a [`PdgBuilder`] configured for this manager's alias
    /// tier. The builder memoizes alias queries into the manager's
    /// persistent cache and shares the cached mod/ref summaries, so repeated
    /// calls do not re-pay analysis costs. The PDG abstraction is recorded
    /// as requested.
    pub fn with_pdg<R>(&mut self, k: impl FnOnce(&Module, &PdgBuilder<'_>) -> R) -> R {
        self.note(Abstraction::Pdg);
        if self.tier == AliasTier::Full {
            self.ensure_andersen();
        }
        let modref = self.ensure_modref();
        self.with_cached_stack(modref, k)
    }

    /// The whole-program PDG, built once (in parallel, demand-driven) and
    /// shared through a cheap `Arc` handle. After an [`Noelle::edit`], the
    /// next call *repairs* the previous snapshot: only partitions the edit
    /// damaged are re-derived, everything else is shared with the old graph
    /// by pointer. Holders of old handles keep a consistent pre-mutation
    /// snapshot.
    pub fn pdg(&mut self) -> Arc<ProgramPdg> {
        self.note(Abstraction::Pdg);
        if self.pdg.is_none() {
            let t = Instant::now();
            let defined: Vec<FuncId> = self
                .module
                .func_ids()
                .filter(|&fid| !self.module.func(fid).is_declaration())
                .collect();
            let prev = self.prev_pdg.take();
            let stale = std::mem::take(&mut self.stale);
            let ctx = self.store.as_ref().map(|_| self.store_key_ctx());
            let mut per_function = HashMap::with_capacity(defined.len());
            let mut rebuild: Vec<FuncId> = Vec::new();
            for &fid in &defined {
                // Undamaged partition from the previous in-memory snapshot.
                if !stale.contains(&fid) {
                    if let Some(g) = prev.as_ref().and_then(|p| p.per_function.get(&fid)) {
                        per_function.insert(fid, Arc::clone(g));
                        self.counters.pdg_hits += 1;
                        continue;
                    }
                }
                // Durable store next: content addressing guarantees a hit
                // was computed from byte-identical inputs, so a warm
                // restart (or a replica on the same store) skips the
                // analysis stack entirely. Decode failures are misses.
                if let (Some(store), Some(ctx)) = (&self.store, &ctx) {
                    let key = ctx.partition_key(self.module.func(fid).content_fingerprint());
                    let decoded = store
                        .get(key)
                        .and_then(|b| artifact::decode_partition(&b).ok());
                    if let Some(g) = decoded {
                        per_function.insert(fid, Arc::new(g));
                        self.counters.store_hits += 1;
                        continue;
                    }
                    self.counters.store_misses += 1;
                }
                rebuild.push(fid);
            }
            // Only partitions that survived neither cache pay for the
            // alias stack; a fully warm start never solves points-to.
            if !rebuild.is_empty() {
                if self.tier == AliasTier::Full {
                    self.ensure_andersen();
                }
                let modref = self.ensure_modref();
                let fresh = self.with_cached_stack(modref, |_, b| b.pdg_partitions(&rebuild));
                self.counters.pdg_misses += rebuild.len() as u64;
                if let (Some(store), Some(ctx)) = (&self.store, &ctx) {
                    for (&fid, g) in &fresh {
                        let key = ctx.partition_key(self.module.func(fid).content_fingerprint());
                        store.put(
                            key,
                            ArtifactKind::PdgPartition,
                            artifact::encode_partition(g),
                        );
                    }
                }
                per_function.extend(fresh);
            }
            self.record_build(Abstraction::Pdg, t.elapsed());
            self.pdg = Some(Arc::new(ProgramPdg { per_function }));
        }
        Arc::clone(self.pdg.as_ref().expect("just set"))
    }

    /// The cached control-flow structures (CFG, dominator and post-dominator
    /// trees, loop forest) of function `fid`, built together on first
    /// request.
    pub fn structures(&mut self, fid: FuncId) -> &FuncStructures {
        self.note(Abstraction::Ls);
        if self.structures.contains_key(&fid) {
            self.counters.struct_hits += 1;
        } else {
            self.counters.struct_misses += 1;
            let t = Instant::now();
            let f = self.module.func(fid);
            let cfg = Cfg::new(f);
            let dom = DomTree::new(f, &cfg);
            let postdom = PostDomTree::new(f, &cfg);
            // The forest is function-local, so its store key depends only
            // on this function's content — it survives edits elsewhere and
            // warm restarts alike.
            let mut from_store = false;
            let forest = match &self.store {
                Some(store) => {
                    let key = KeyCtx::forest_key(f.content_fingerprint());
                    match store
                        .get(key)
                        .and_then(|b| artifact::decode_forest(&b).ok())
                    {
                        Some(forest) => {
                            from_store = true;
                            forest
                        }
                        None => {
                            let forest = LoopForest::new(f, &cfg, &dom);
                            store.put(
                                key,
                                ArtifactKind::LoopForest,
                                artifact::encode_forest(&forest),
                            );
                            forest
                        }
                    }
                }
                None => LoopForest::new(f, &cfg, &dom),
            };
            if self.store.is_some() {
                if from_store {
                    self.counters.store_hits += 1;
                } else {
                    self.counters.store_misses += 1;
                }
            }
            self.structures.insert(
                fid,
                FuncStructures {
                    cfg,
                    dom,
                    postdom,
                    forest,
                },
            );
            let elapsed = t.elapsed();
            self.record_build(Abstraction::Ls, elapsed);
        }
        &self.structures[&fid]
    }

    /// Solve a data-flow problem over function `fid` with the engine (DFE),
    /// reusing the cached CFG. External callers cannot borrow the module and
    /// the cached structures simultaneously (both hand out borrows of the
    /// manager), so this helper runs the engine from inside, where the two
    /// live in separate fields. Records the DFE abstraction as requested.
    pub fn solve_dataflow(
        &mut self,
        fid: FuncId,
        problem: &impl noelle_analysis::dfe::DataFlowProblem,
    ) -> noelle_analysis::dfe::DataFlowResult {
        self.note(Abstraction::Dfe);
        self.structures(fid); // ensure the CFG is cached
        let f = self.module.func(fid);
        let cfg = &self.structures[&fid].cfg;
        noelle_analysis::dfe::DataFlowEngine::new().solve(f, cfg, problem)
    }

    /// The loop structures (LS) of function `fid`, cached.
    pub fn loop_forest(&mut self, fid: FuncId) -> &LoopForest {
        &self.structures(fid).forest
    }

    /// All loops of `fid` (cloned structures, safe to hold across other
    /// manager calls).
    pub fn loops_of(&mut self, fid: FuncId) -> Vec<LoopInfo> {
        self.loop_forest(fid).loops().to_vec()
    }

    /// The program-wide loop forest (FR).
    pub fn program_loop_forest(&mut self) -> ProgramLoopForest {
        self.note(Abstraction::Fr);
        self.note(Abstraction::Ls);
        ProgramLoopForest::build(&self.module)
    }

    /// The canonical Loop abstraction (L) for loop `l` of `fid`: structure,
    /// loop PDG, aSCCDAG, IVs, invariants, reductions, environment.
    pub fn loop_abstraction(&mut self, fid: FuncId, l: LoopInfo) -> LoopAbstraction {
        for a in [
            Abstraction::L,
            Abstraction::ASccDag,
            Abstraction::Iv,
            Abstraction::Inv,
            Abstraction::Rd,
            Abstraction::Env,
        ] {
            self.note(a);
        }
        // Carve from the cached whole-program PDG: requesting several loops
        // of one function analyzes the function once. When no PDG is
        // materialized yet, a durable-store hit for just this function's
        // partition answers the query demand-driven — a restarted daemon
        // replies without re-deriving (or even decoding) the rest of the
        // program.
        let fg = if self.pdg.is_none() {
            self.store_partition(fid)
        } else {
            None
        };
        let fg = match fg {
            Some(g) => Some(g),
            None => self.pdg().per_function.get(&fid).cloned(),
        };
        let modref = self.ensure_modref();
        let t = Instant::now();
        let la = self.with_cached_stack(modref, |_, b| match &fg {
            Some(fg) => LoopAbstraction::build_with(b, fid, l, fg),
            None => LoopAbstraction::build(b, fid, l),
        });
        self.record_build(Abstraction::L, t.elapsed());
        la
    }

    /// The complete program call graph (CG), cached. Always uses the
    /// points-to solution so indirect calls are resolved.
    pub fn call_graph(&mut self) -> &CallGraph {
        self.note(Abstraction::Cg);
        if self.call_graph.is_none() {
            self.ensure_andersen();
            let t = Instant::now();
            let cg = CallGraph::build(&self.module, self.andersen.as_ref().expect("cached"));
            let elapsed = t.elapsed();
            self.call_graph = Some(cg);
            self.record_build(Abstraction::Cg, elapsed);
        }
        self.call_graph.as_ref().expect("just set")
    }

    /// The call graph if it has already been built (no build is triggered).
    /// Lets callers holding only `&self` — e.g. a server serializing a
    /// just-built graph next to the module — read it back without a second
    /// mutable borrow.
    pub fn cached_call_graph(&self) -> Option<&CallGraph> {
        self.call_graph.as_ref()
    }

    /// The Andersen points-to solution, building it on first use. The
    /// auditor reads the raw rows to attribute failed alias queries to the
    /// abstract objects behind them.
    pub fn points_to(&mut self) -> &AndersenAlias {
        self.ensure_andersen();
        self.andersen.as_ref().expect("just ensured")
    }

    /// The points-to solution if it has already been built (no build is
    /// triggered) — the `&self` companion of [`Noelle::points_to`], for
    /// callers that need it alongside other shared borrows of the manager.
    pub fn cached_points_to(&self) -> Option<&AndersenAlias> {
        self.andersen.as_ref()
    }

    /// Whole-program mod/ref summaries, shared. The auditor classifies
    /// side-effecting calls (privatizable write-only callee vs pinned I/O)
    /// against these.
    pub fn modref_summaries(&mut self) -> Arc<ModRefSummaries> {
        self.ensure_modref()
    }

    /// Profiles embedded in the module, or empty profiles when absent (PRO).
    pub fn profiles(&mut self) -> Profiles {
        self.note(Abstraction::Pro);
        if self.profiles.is_none() {
            self.profiles = Some(Profiles::from_module(&self.module).unwrap_or_default());
        }
        self.profiles.clone().expect("just set")
    }

    /// The architecture description embedded in the module, or the default
    /// machine (AR).
    pub fn architecture(&mut self) -> Architecture {
        self.note(Abstraction::Ar);
        Architecture::from_module(&self.module).unwrap_or_default()
    }

    /// The alias tier this manager was configured with.
    pub fn tier(&self) -> AliasTier {
        self.tier
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noelle_ir::builder::FunctionBuilder;
    use noelle_ir::inst::{BinOp, IcmpPred};
    use noelle_ir::types::Type;
    use noelle_ir::value::Value;

    fn loop_module() -> Module {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(
            "k",
            vec![("a", Type::I64.ptr_to()), ("n", Type::I64)],
            Type::I64,
        );
        let entry = b.entry_block();
        let header = b.block("header");
        let body = b.block("body");
        let exit = b.block("exit");
        b.switch_to(entry);
        b.br(header);
        b.switch_to(header);
        let i = b.phi(Type::I64, vec![(entry, Value::const_i64(0))]);
        let sum = b.phi(Type::I64, vec![(entry, Value::const_i64(0))]);
        let c = b.icmp(IcmpPred::Slt, Type::I64, i, b.arg(1));
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let p = b.index_ptr(Type::I64, b.arg(0), i);
        let v = b.load(Type::I64, p);
        let sum2 = b.binop(BinOp::Add, Type::I64, sum, v);
        let i2 = b.binop(BinOp::Add, Type::I64, i, Value::const_i64(1));
        b.br(header);
        b.add_incoming(i, body, i2);
        b.add_incoming(sum, body, sum2);
        b.switch_to(exit);
        b.ret(Some(sum));
        m.add_function(b.finish());
        m
    }

    /// A warm start over a populated store must produce an identical PDG
    /// without ever touching the alias stack: the whole point of durable
    /// content addressing.
    #[test]
    fn store_warm_start_matches_cold_build() {
        let dir = std::env::temp_dir().join(format!("noelle-warm-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Arc::new(Store::open(&dir).unwrap());
        let fid;
        let cold_edges;
        {
            let mut n = Noelle::new(loop_module(), AliasTier::Full);
            n.set_store(Arc::clone(&store));
            fid = n.module().func_ids().next().unwrap();
            cold_edges = n.pdg().num_edges();
            let _ = n.loop_forest(fid);
            let c = n.func_cache_counters();
            assert!(c.store_misses > 0 && c.store_hits == 0);
            assert!(n.andersen.is_some(), "cold build solves points-to");
        }
        store.flush();
        {
            let mut n = Noelle::new(loop_module(), AliasTier::Full);
            n.set_store(Arc::clone(&store));
            assert_eq!(n.pdg().num_edges(), cold_edges);
            let warm_loops = n.loops_of(fid).len();
            assert_eq!(warm_loops, 1);
            let c = n.func_cache_counters();
            assert!(c.store_hits >= 2, "partition + forest: {c:?}");
            assert_eq!(c.pdg_misses, 0);
            assert!(
                n.andersen.is_none(),
                "fully warm start must skip the points-to solve"
            );
        }
        drop(store);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn demand_driven_requests_recorded() {
        let mut n = Noelle::new(loop_module(), AliasTier::Full);
        assert!(n.requested().is_empty());
        let fid = n.module().func_ids().next().unwrap();
        let loops = n.loops_of(fid);
        assert_eq!(loops.len(), 1);
        assert_eq!(n.requested(), vec![Abstraction::Ls]);
        let la = n.loop_abstraction(fid, loops[0].clone());
        assert!(la.is_doall());
        let req = n.requested();
        assert!(req.contains(&Abstraction::Pdg));
        assert!(req.contains(&Abstraction::ASccDag));
        assert!(req.contains(&Abstraction::L));
        n.reset_requests();
        assert!(n.requested().is_empty());
    }

    /// Full invalidation must conservatively clear every cache (the
    /// behavior the removed raw-mutation shim used to route through).
    #[test]
    fn caches_cleared_on_invalidate() {
        let mut n = Noelle::new(loop_module(), AliasTier::Full);
        let fid = n.module().func_ids().next().unwrap();
        let _ = n.loop_forest(fid);
        let _ = n.call_graph();
        let _ = n.pdg();
        n.invalidate();
        assert!(n.structures.is_empty());
        assert!(n.call_graph.is_none());
        assert!(n.pdg.is_none());
        assert!(n.modref.is_none());
        assert!(n.prev_pdg.is_none());
        assert!(n.revision(fid) > 0);
        // Re-requests still work.
        assert_eq!(n.loops_of(fid).len(), 1);
    }

    #[test]
    fn pdg_handle_is_cached_and_cheap() {
        let mut n = Noelle::new(loop_module(), AliasTier::Full);
        let fid = n.module().func_ids().next().unwrap();
        let p1 = n.pdg();
        let p2 = n.pdg();
        // Same underlying graph, no rebuild.
        assert!(Arc::ptr_eq(&p1, &p2));
        assert_eq!(n.build_stats()[&Abstraction::Pdg].builds, 1);
        // An edit touching the function forces a repair; the old handle
        // stays readable.
        let r1 = n.revision(fid);
        n.edit(|tx| tx.touch(fid));
        assert_eq!(n.revision(fid), r1 + 1);
        let p3 = n.pdg();
        assert!(!Arc::ptr_eq(&p1, &p3));
        assert_eq!(n.build_stats()[&Abstraction::Pdg].builds, 2);
        assert_eq!(p1.num_edges(), p3.num_edges());
    }

    /// A second, independent function next to the loop kernel.
    fn two_func_module() -> Module {
        let mut m = loop_module();
        let mut b = FunctionBuilder::new("leaf", vec![("x", Type::I64)], Type::I64);
        let entry = b.entry_block();
        b.switch_to(entry);
        let y = b.binop(BinOp::Add, Type::I64, b.arg(0), Value::const_i64(7));
        b.ret(Some(y));
        m.add_function(b.finish());
        m
    }

    #[test]
    fn edit_reuses_untouched_partitions() {
        let mut n = Noelle::new(two_func_module(), AliasTier::Full);
        let k = n.module().func_id_by_name("k").unwrap();
        let leaf = n.module().func_id_by_name("leaf").unwrap();
        let p1 = n.pdg();
        // Edit only the leaf: the kernel's partition must be reused by
        // pointer, and the counters must record exactly that split.
        n.edit(|tx| {
            let _ = tx.func_mut(leaf);
        });
        let before = n.func_cache_counters();
        let p2 = n.pdg();
        let after = n.func_cache_counters();
        assert!(!Arc::ptr_eq(&p1, &p2));
        assert!(Arc::ptr_eq(&p1.per_function[&k], &p2.per_function[&k]));
        assert!(!Arc::ptr_eq(
            &p1.per_function[&leaf],
            &p2.per_function[&leaf]
        ));
        assert_eq!(after.pdg_hits - before.pdg_hits, 1);
        assert_eq!(after.pdg_misses - before.pdg_misses, 1);
        // The kernel's structures survived the edit; the leaf's were
        // dropped.
        assert!(n.revision(leaf) == 1 && n.revision(k) == 0);
    }

    #[test]
    fn unchanged_touch_skips_points_to_resolve() {
        let mut n = Noelle::new(two_func_module(), AliasTier::Full);
        let leaf = n.module().func_id_by_name("leaf").unwrap();
        let _ = n.pdg();
        // A touch that turns out not to change the function: every
        // fingerprint matches, so the points-to solution is reused as-is
        // (the touched partition still rebuilds).
        n.edit(|tx| tx.touch(leaf));
        let _ = n.pdg();
        assert_eq!(n.func_cache_counters().andersen_reuses, 1);
        // Metadata is invisible to alias analysis: the gate hashes bodies,
        // so a metadata-only edit also reuses the solution.
        n.edit(|tx| {
            tx.func_mut(leaf)
                .metadata
                .insert("note".into(), "edited".into());
        });
        let _ = n.pdg();
        assert_eq!(n.func_cache_counters().andersen_reuses, 2);
        // An edit that really changes the body must re-solve.
        n.edit(|tx| {
            tx.func_mut(leaf).params.push(("extra".into(), Type::I64));
        });
        let _ = n.pdg();
        assert_eq!(n.func_cache_counters().andersen_reuses, 2);
    }

    #[test]
    fn edit_with_damage_reports_touched_and_escalations() {
        let mut n = Noelle::new(two_func_module(), AliasTier::Full);
        let leaf = n.module().func_id_by_name("leaf").unwrap();
        let _ = n.pdg();
        // Read-only: empty damage.
        let ((), d) = n.edit_with_damage(|tx| {
            let _ = tx.module().name.len();
        });
        assert!(d.is_empty());
        // A metadata-only touch damages exactly the touched function (its
        // mod/ref summary cannot change).
        let ((), d) = n.edit_with_damage(|tx| {
            tx.func_mut(leaf).metadata.insert("note".into(), "v".into());
        });
        assert!(d.contains(&leaf) && d.len() == 1, "damage = {d:?}");
        // touch_all escalates to every function.
        let ((), d) = n.edit_with_damage(|tx| tx.touch_all());
        assert_eq!(d.len(), n.module().functions().len());
    }

    #[test]
    fn read_only_edit_keeps_caches() {
        let mut n = Noelle::new(loop_module(), AliasTier::Full);
        let p1 = n.pdg();
        let name = n.edit(|tx| tx.module().name.clone());
        assert!(!name.is_empty());
        let p2 = n.pdg();
        assert!(Arc::ptr_eq(&p1, &p2));
        assert_eq!(n.build_stats()[&Abstraction::Pdg].builds, 1);
    }

    #[test]
    fn adding_a_function_is_auto_touched() {
        let mut n = Noelle::new(loop_module(), AliasTier::Full);
        let p1 = n.pdg();
        n.edit(|tx| {
            let m = tx.module_touching([]);
            let mut b = FunctionBuilder::new("fresh", vec![("x", Type::I64)], Type::I64);
            let entry = b.entry_block();
            b.switch_to(entry);
            b.ret(Some(Value::const_i64(1)));
            m.add_function(b.finish());
        });
        let p2 = n.pdg();
        let fresh = n.module().func_id_by_name("fresh").unwrap();
        assert!(p2.per_function.contains_key(&fresh));
        assert!(!p1.per_function.contains_key(&fresh));
        assert_eq!(n.revision(fresh), 1);
    }

    #[test]
    fn structures_cached_and_stats_recorded() {
        let mut n = Noelle::new(loop_module(), AliasTier::Basic);
        let fid = n.module().func_ids().next().unwrap();
        let _ = n.structures(fid);
        let _ = n.structures(fid);
        let _ = n.loop_forest(fid);
        // One build despite three requests.
        assert_eq!(n.build_stats()[&Abstraction::Ls].builds, 1);
        let entry = n.module().func(fid).entry();
        let s = n.structures(fid);
        assert!(!s.forest.loops().is_empty());
        assert!(s.dom.dominates(entry, s.forest.loops()[0].header));
    }

    #[test]
    fn alias_cache_persists_across_pdg_requests() {
        let mut n = Noelle::new(loop_module(), AliasTier::Full);
        let fid = n.module().func_ids().next().unwrap();
        n.with_pdg(|_, b| {
            let _ = b.function_pdg(fid);
        });
        let (_, m1) = n.alias_cache().stats();
        n.with_pdg(|_, b| {
            let _ = b.function_pdg(fid);
        });
        let (h2, m2) = n.alias_cache().stats();
        // The second identical build answers from the cache: misses did not
        // grow, hits did.
        assert_eq!(m1, m2);
        assert!(h2 > 0);
        assert!(n.alias_cache().hit_rate() > 0.0);
    }

    #[test]
    fn basic_tier_skips_andersen_for_pdg() {
        let mut n = Noelle::new(loop_module(), AliasTier::Basic);
        let fid = n.module().func_ids().next().unwrap();
        n.with_pdg(|_, b| {
            let _ = b.function_pdg(fid);
        });
        assert!(
            n.andersen.is_none(),
            "basic tier must not compute points-to"
        );
        // The call graph still forces points-to (it needs indirect callees).
        let _ = n.call_graph();
        assert!(n.andersen.is_some());
    }

    #[test]
    fn profiles_and_arch_default_when_missing() {
        let mut n = Noelle::new(loop_module(), AliasTier::Basic);
        let p = n.profiles();
        assert_eq!(p, Profiles::default());
        let a = n.architecture();
        assert_eq!(a.num_cores, 12);
    }
}
