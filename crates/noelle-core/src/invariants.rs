//! The Invariant (INV) abstraction: loop-invariant instructions and values.
//!
//! Both detection algorithms printed in the paper are implemented here:
//!
//! - [`invariants_llvm`] — **Algorithm 1**, the low-level LLVM logic: an
//!   instruction is invariant only if none of its operands are defined in the
//!   loop, with ad-hoc mod/ref checks for loads, stores, and calls. It is
//!   *not* recursive, so computations chained off other invariants inside the
//!   loop are missed, and it runs against the weaker basic alias tier.
//! - [`invariants_noelle`] — **Algorithm 2**, the NOELLE logic: an
//!   instruction is invariant iff every instruction it *depends on* (per the
//!   loop PDG, which is powered by the full alias stack) is outside the loop
//!   or itself invariant. Cycles (recurrences) are cut with an explicit
//!   stack, exactly as in the paper's pseudo-code.
//!
//! Figure 4 of the paper — NOELLE finds significantly more invariants with a
//! smaller algorithm — is reproduced by running both of these over the same
//! workloads (`noelle-bench`, `fig4_invariants`).
//!
//! Note: Algorithm 2 walks *data* dependences only. Control dependences on
//! the loop's own exit branch would otherwise disqualify the entire body.

use noelle_analysis::alias::{AliasAnalysis, AliasResult};
use noelle_analysis::modref::ModRefSummaries;
use noelle_ir::dom::DomTree;
use noelle_ir::inst::{Callee, Inst, InstId};
use noelle_ir::loops::LoopInfo;
use noelle_ir::module::{FuncId, Function, Module};
use noelle_ir::value::Value;
use noelle_pdg::depgraph::DepGraph;
use std::collections::{BTreeSet, HashMap};

/// The set of invariant instructions of one loop, with value-level queries —
/// the INV abstraction handed out by the manager.
#[derive(Clone, Debug)]
pub struct InvariantSet {
    insts: BTreeSet<InstId>,
}

impl InvariantSet {
    /// Wrap a computed set.
    pub fn new(insts: BTreeSet<InstId>) -> InvariantSet {
        InvariantSet { insts }
    }

    /// True if instruction `id` is invariant in the loop.
    pub fn contains(&self, id: InstId) -> bool {
        self.insts.contains(&id)
    }

    /// True if `v` is invariant with respect to loop `l`: a constant, an
    /// argument, a global, an instruction defined outside `l`, or an
    /// invariant instruction inside it.
    pub fn is_invariant_value(&self, f: &Function, l: &LoopInfo, v: Value) -> bool {
        match v {
            Value::Const(_) | Value::Arg(_) | Value::Global(_) | Value::Func(_) => true,
            Value::Inst(id) => !l.contains(f.parent_block(id)) || self.insts.contains(&id),
        }
    }

    /// The invariant instructions.
    pub fn iter(&self) -> impl Iterator<Item = InstId> + '_ {
        self.insts.iter().copied()
    }

    /// Number of invariant instructions found.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// True if no instruction of the loop is invariant.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }
}

/// **Algorithm 1** (the paper's simplified LLVM logic): detect the invariant
/// instructions of `l` using only low-level abstractions — dominators and a
/// (basic) alias analysis.
pub fn invariants_llvm(
    m: &Module,
    fid: FuncId,
    l: &LoopInfo,
    dt: &DomTree,
    alias: &dyn AliasAnalysis,
    modref: &ModRefSummaries,
) -> InvariantSet {
    let f = m.func(fid);
    let loop_insts: Vec<InstId> = f
        .inst_ids()
        .into_iter()
        .filter(|&id| l.contains(f.parent_block(id)))
        .collect();
    let mut out = BTreeSet::new();
    for &id in &loop_insts {
        if is_invariant_llvm_one(m, fid, f, l, dt, alias, modref, id, &loop_insts) {
            out.insert(id);
        }
    }
    InvariantSet::new(out)
}

#[allow(clippy::too_many_arguments)]
fn is_invariant_llvm_one(
    m: &Module,
    fid: FuncId,
    f: &Function,
    l: &LoopInfo,
    dt: &DomTree,
    alias: &dyn AliasAnalysis,
    modref: &ModRefSummaries,
    id: InstId,
    loop_insts: &[InstId],
) -> bool {
    let inst = f.inst(id);
    // Phis and terminators are never invariant.
    if matches!(inst, Inst::Phi { .. } | Inst::Term(_) | Inst::Alloca { .. }) {
        return false;
    }
    // "for operand in I.getOperands(): if operand is defined in L then
    // return False" — note: NOT a recursive invariance check.
    for op in inst.operands() {
        if let Value::Inst(def) = op {
            if l.contains(f.parent_block(def)) {
                return false;
            }
        }
    }
    match inst {
        Inst::Load { ptr, .. } => {
            // "if any other instruction of L can modify the same memory
            // location accessed by I" — mod/ref over every instruction of L.
            for &j in loop_insts {
                if j == id {
                    continue;
                }
                match f.inst(j) {
                    Inst::Store { ptr: sp, .. }
                        if alias.alias(fid, *ptr, *sp) != AliasResult::No =>
                    {
                        return false;
                    }
                    Inst::Call { .. } if modref.call_may_write(m, fid, j) => {
                        return false;
                    }
                    _ => {}
                }
            }
            true
        }
        Inst::Store { ptr, .. } => {
            // "Conservatively ensure no memory use precedes this store" and
            // no def/use would be invalidated by hoisting: every aliasing
            // access of L must be dominated by the store, and there must be
            // no other may-aliasing write in the loop at all.
            for &j in loop_insts {
                if j == id {
                    continue;
                }
                let other_ptr = match f.inst(j) {
                    Inst::Load { ptr: p, .. } => Some(*p),
                    Inst::Store { ptr: p, .. } => Some(*p),
                    Inst::Call { .. } => {
                        if modref.call_may_read(m, fid, j) || modref.call_may_write(m, fid, j) {
                            return false;
                        }
                        None
                    }
                    _ => None,
                };
                if let Some(op) = other_ptr {
                    if alias.alias(fid, *ptr, op) != AliasResult::No {
                        if matches!(f.inst(j), Inst::Store { .. }) {
                            return false;
                        }
                        if !dt.dominates(f.parent_block(id), f.parent_block(j)) {
                            return false;
                        }
                        if f.parent_block(id) == f.parent_block(j)
                            && f.position_in_block(id) > f.position_in_block(j)
                        {
                            return false;
                        }
                    }
                }
            }
            true
        }
        Inst::Call { callee, .. } => {
            // "if AA.getModRefBehavior(call) != NoMod then return False":
            // the callee must not modify memory, must not perform I/O, and
            // (for simplicity, matching the argument-only check plus the
            // sub-loop scan) must not read memory that anything in the loop
            // writes — conservatively: must not read at all if the loop
            // writes memory.
            let writes_in_loop = loop_insts.iter().any(|&j| match f.inst(j) {
                Inst::Store { .. } => true,
                Inst::Call { .. } if j != id => modref.call_may_write(m, fid, j),
                _ => false,
            });
            match callee {
                Callee::Direct(cid) => {
                    if modref.may_write(*cid) || modref.has_io(*cid) {
                        return false;
                    }
                    if modref.may_read(*cid) && writes_in_loop {
                        return false;
                    }
                    true
                }
                Callee::Indirect(_) => false,
            }
        }
        _ => true,
    }
}

/// **Algorithm 2** (the paper's NOELLE logic): detect the invariant
/// instructions of `l` using the loop dependence graph. Smaller, simpler,
/// and more precise — the comparison the paper draws in §2.5.
pub fn invariants_noelle(f: &Function, l: &LoopInfo, loop_pdg: &DepGraph<InstId>) -> InvariantSet {
    let loop_insts: Vec<InstId> = f
        .inst_ids()
        .into_iter()
        .filter(|&id| l.contains(f.parent_block(id)))
        .collect();
    let mut memo: HashMap<InstId, bool> = HashMap::new();
    let mut out = BTreeSet::new();
    for &id in &loop_insts {
        let mut stack = Vec::new();
        if is_invariant_noelle_rec(f, l, loop_pdg, id, &mut stack, &mut memo) {
            out.insert(id);
        }
    }
    InvariantSet::new(out)
}

fn is_invariant_noelle_rec(
    f: &Function,
    l: &LoopInfo,
    dg: &DepGraph<InstId>,
    id: InstId,
    stack: &mut Vec<InstId>,
    memo: &mut HashMap<InstId, bool>,
) -> bool {
    // "if I in s then return False" — a dependence cycle is a recurrence.
    if stack.contains(&id) {
        return false;
    }
    if let Some(&r) = memo.get(&id) {
        return r;
    }
    // Instructions whose *execution* matters (effects) or whose value varies
    // structurally can never be invariant.
    let base_eligible = match f.inst(id) {
        Inst::Phi { .. } | Inst::Term(_) | Inst::Alloca { .. } | Inst::Store { .. } => false,
        // Calls: only if the PDG gave them no memory/IO edges from inside the
        // loop (pure calls have none) — handled below by dependence walking —
        // but a call that writes memory or does I/O carries a self-edge in
        // the loop PDG, so it is excluded there. Conservatively exclude any
        // call with a memory self-edge.
        Inst::Call { .. } => !dg
            .edges_to(id)
            .chain(dg.edges_from(id))
            .any(|e| e.attrs.memory && e.src == e.dst),
        _ => true,
    };
    if !base_eligible {
        memo.insert(id, false);
        return false;
    }
    stack.push(id);
    // "for PDG dependence J to I": walk the data dependences of I.
    let mut result = true;
    for e in dg.edges_to(id) {
        if !e.attrs.is_data() {
            continue;
        }
        let j = e.src;
        if j == id {
            result = false;
            break;
        }
        if l.contains(f.parent_block(j)) && !is_invariant_noelle_rec(f, l, dg, j, stack, memo) {
            result = false;
            break;
        }
    }
    stack.pop();
    memo.insert(id, result);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use noelle_analysis::alias::{AliasStack, AndersenAlias, BasicAlias};
    use noelle_ir::builder::FunctionBuilder;
    use noelle_ir::cfg::Cfg;
    use noelle_ir::inst::{BinOp, IcmpPred};
    use noelle_ir::loops::LoopForest;
    use noelle_ir::types::Type;
    use noelle_pdg::pdg::PdgBuilder;

    /// Loop where x = a + b is invariant and y = x * 2 is *chained* off it:
    /// Algorithm 1 misses y (its operand is defined in the loop); Algorithm 2
    /// finds both.
    fn chained_invariants() -> (Module, FuncId, LoopInfo) {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(
            "k",
            vec![("a", Type::I64), ("b", Type::I64), ("n", Type::I64)],
            Type::I64,
        );
        let entry = b.entry_block();
        let header = b.block("header");
        let body = b.block("body");
        let exit = b.block("exit");
        b.switch_to(entry);
        b.br(header);
        b.switch_to(header);
        let i = b.phi(Type::I64, vec![(entry, Value::const_i64(0))]);
        let acc = b.phi(Type::I64, vec![(entry, Value::const_i64(0))]);
        let c = b.icmp(IcmpPred::Slt, Type::I64, i, b.arg(2));
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let x = b.binop(BinOp::Add, Type::I64, b.arg(0), b.arg(1)); // invariant
        let y = b.binop(BinOp::Mul, Type::I64, x, Value::const_i64(2)); // chained invariant
        let acc2 = b.binop(BinOp::Add, Type::I64, acc, y);
        let i2 = b.binop(BinOp::Add, Type::I64, i, Value::const_i64(1));
        b.br(header);
        b.add_incoming(i, body, i2);
        b.add_incoming(acc, body, acc2);
        b.switch_to(exit);
        b.ret(Some(acc));
        let fid = m.add_function(b.finish());
        let f = m.func(fid);
        let cfg = Cfg::new(f);
        let dt = noelle_ir::dom::DomTree::new(f, &cfg);
        let forest = LoopForest::new(f, &cfg, &dt);
        (m.clone(), fid, forest.loops()[0].clone())
    }

    fn run_both(m: &Module, fid: FuncId, l: &LoopInfo) -> (InvariantSet, InvariantSet) {
        let f = m.func(fid);
        let cfg = Cfg::new(f);
        let dt = noelle_ir::dom::DomTree::new(f, &cfg);
        let basic = BasicAlias::new(m);
        let modref = ModRefSummaries::compute(m);
        let llvm = invariants_llvm(m, fid, l, &dt, &basic, &modref);

        let andersen = AndersenAlias::new(m);
        let stack = AliasStack::new(vec![&basic, &andersen]);
        let builder = PdgBuilder::new(m, &stack);
        let g = builder.loop_pdg(fid, l);
        let noelle = invariants_noelle(f, l, &g);
        (llvm, noelle)
    }

    #[test]
    fn algorithm2_finds_chained_invariants_algorithm1_does_not() {
        let (m, fid, l) = chained_invariants();
        let (llvm, noelle) = run_both(&m, fid, &l);
        // x is found by both; y only by NOELLE.
        assert_eq!(llvm.len(), 1, "llvm: {:?}", llvm.iter().collect::<Vec<_>>());
        assert_eq!(noelle.len(), 2);
        // NOELLE's set is a superset.
        assert!(llvm.iter().all(|i| noelle.contains(i)));
    }

    #[test]
    fn recurrences_are_never_invariant() {
        let (m, fid, l) = chained_invariants();
        let f = m.func(fid);
        let (_, noelle) = run_both(&m, fid, &l);
        // phis, icmp on IV, updates: not invariant.
        for id in f.inst_ids() {
            if matches!(f.inst(id), Inst::Phi { .. }) {
                assert!(!noelle.contains(id));
            }
        }
        // The IV increment participates in a cycle.
        let incr = f
            .inst_ids()
            .into_iter()
            .find(|&i| {
                matches!(f.inst(i), Inst::Bin { op: BinOp::Add, lhs, .. }
                    if matches!(lhs, Value::Inst(p) if matches!(f.inst(*p), Inst::Phi { .. })))
            })
            .unwrap();
        assert!(!noelle.contains(incr));
    }

    #[test]
    fn load_from_readonly_location_is_invariant_for_noelle() {
        // q = load p (p an argument) inside a loop that stores only to a
        // distinct alloca. Basic AA can't always tell; the PDG with the full
        // stack can.
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(
            "k",
            vec![("p", Type::I64.ptr_to()), ("n", Type::I64)],
            Type::I64,
        );
        let entry = b.entry_block();
        let header = b.block("header");
        let body = b.block("body");
        let exit = b.block("exit");
        b.switch_to(entry);
        let scratch = b.alloca(Type::I64);
        b.br(header);
        b.switch_to(header);
        let i = b.phi(Type::I64, vec![(entry, Value::const_i64(0))]);
        let c = b.icmp(IcmpPred::Slt, Type::I64, i, b.arg(1));
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let v = b.load(Type::I64, b.arg(0)); // invariant: p never written
        b.store(Type::I64, v, scratch);
        let i2 = b.binop(BinOp::Add, Type::I64, i, Value::const_i64(1));
        b.br(header);
        b.add_incoming(i, body, i2);
        b.switch_to(exit);
        b.ret(Some(Value::const_i64(0)));
        let fid = m.add_function(b.finish());
        let f = m.func(fid);
        let cfg = Cfg::new(f);
        let dt = noelle_ir::dom::DomTree::new(f, &cfg);
        let forest = LoopForest::new(f, &cfg, &dt);
        let l = forest.loops()[0].clone();
        let (_llvm, noelle) = run_both(&m, fid, &l);
        assert!(noelle.contains(v.as_inst().unwrap()));
        // Value-level query helpers.
        assert!(noelle.is_invariant_value(f, &l, v));
        assert!(noelle.is_invariant_value(f, &l, Value::Arg(0)));
        assert!(!noelle.is_invariant_value(f, &l, i));
    }

    #[test]
    fn store_in_loop_blocks_aliasing_load_for_both() {
        // load p and store p in the same loop: not invariant for either
        // algorithm.
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new(
            "k",
            vec![("p", Type::I64.ptr_to()), ("n", Type::I64)],
            Type::Void,
        );
        let entry = b.entry_block();
        let header = b.block("header");
        let body = b.block("body");
        let exit = b.block("exit");
        b.switch_to(entry);
        b.br(header);
        b.switch_to(header);
        let i = b.phi(Type::I64, vec![(entry, Value::const_i64(0))]);
        let c = b.icmp(IcmpPred::Slt, Type::I64, i, b.arg(1));
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let v = b.load(Type::I64, b.arg(0));
        let v2 = b.binop(BinOp::Add, Type::I64, v, Value::const_i64(1));
        b.store(Type::I64, v2, b.arg(0));
        let i2 = b.binop(BinOp::Add, Type::I64, i, Value::const_i64(1));
        b.br(header);
        b.add_incoming(i, body, i2);
        b.switch_to(exit);
        b.ret(None);
        let fid = m.add_function(b.finish());
        let f = m.func(fid);
        let cfg = Cfg::new(f);
        let dt = noelle_ir::dom::DomTree::new(f, &cfg);
        let forest = LoopForest::new(f, &cfg, &dt);
        let l = forest.loops()[0].clone();
        let (llvm, noelle) = run_both(&m, fid, &l);
        assert!(!llvm.contains(v.as_inst().unwrap()));
        assert!(!noelle.contains(v.as_inst().unwrap()));
    }

    #[test]
    fn pure_call_invariant_for_noelle() {
        let mut m = Module::new("t");
        let sqrt = m.declare_function("sqrt", vec![Type::F64], Type::F64);
        let mut b = FunctionBuilder::new("k", vec![("x", Type::F64), ("n", Type::I64)], Type::F64);
        let entry = b.entry_block();
        let header = b.block("header");
        let body = b.block("body");
        let exit = b.block("exit");
        b.switch_to(entry);
        b.br(header);
        b.switch_to(header);
        let i = b.phi(Type::I64, vec![(entry, Value::const_i64(0))]);
        let acc = b.phi(Type::F64, vec![(entry, Value::const_f64(0.0))]);
        let c = b.icmp(IcmpPred::Slt, Type::I64, i, b.arg(1));
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let s = b.call(sqrt, vec![b.arg(0)], Type::F64); // pure, invariant args
        let acc2 = b.binop(BinOp::FAdd, Type::F64, acc, s);
        let i2 = b.binop(BinOp::Add, Type::I64, i, Value::const_i64(1));
        b.br(header);
        b.add_incoming(i, body, i2);
        b.add_incoming(acc, body, acc2);
        b.switch_to(exit);
        b.ret(Some(acc));
        let fid = m.add_function(b.finish());
        let f = m.func(fid);
        let cfg = Cfg::new(f);
        let dt = noelle_ir::dom::DomTree::new(f, &cfg);
        let forest = LoopForest::new(f, &cfg, &dt);
        let l = forest.loops()[0].clone();
        let (llvm, noelle) = run_both(&m, fid, &l);
        assert!(noelle.contains(s.as_inst().unwrap()));
        assert!(llvm.contains(s.as_inst().unwrap()));
    }
}
