//! The Scheduler (SCD) abstraction.
//!
//! "The capability of moving instructions within and among basic blocks
//! while preserving the original code semantics. The scheduler relies on the
//! PDG abstraction to guarantee semantic preservation." A hierarchy is
//! provided: the generic [`Scheduler`] (within-block motion) and the
//! loop-specific [`LoopScheduler`] (e.g. reducing the header size of a loop,
//! which HELIX uses to shrink sequential segments).
//!
//! Control equivalence — one of the paper's small supporting abstractions —
//! also lives here.

use noelle_ir::dom::{DomTree, PostDomTree};
use noelle_ir::inst::InstId;
use noelle_ir::loops::LoopInfo;
use noelle_ir::module::{BlockId, Function};
use noelle_pdg::depgraph::DepGraph;
use std::collections::HashSet;

/// Legality oracle for instruction motion, backed by a dependence graph of
/// the enclosing function.
pub struct Scheduler<'a> {
    pdg: &'a DepGraph<InstId>,
}

impl<'a> Scheduler<'a> {
    /// Create a scheduler over a function dependence graph.
    pub fn new(pdg: &'a DepGraph<InstId>) -> Scheduler<'a> {
        Scheduler { pdg }
    }

    /// True if `a` and `b` have no dependence in either direction (so they
    /// may be reordered freely relative to each other).
    pub fn independent(&self, a: InstId, b: InstId) -> bool {
        !self
            .pdg
            .edges_from(a)
            .any(|e| e.dst == b && e.attrs.is_data())
            && !self
                .pdg
                .edges_from(b)
                .any(|e| e.dst == a && e.attrs.is_data())
    }

    /// Sink `id` as far down its block as dependences allow (never past the
    /// terminator). Returns the new position.
    pub fn sink_within_block(&self, f: &mut Function, id: InstId) -> usize {
        let block = f.parent_block(id);
        loop {
            let pos = f.position_in_block(id).expect("attached");
            let insts = &f.block(block).insts;
            if pos + 1 >= insts.len() {
                return pos;
            }
            let next = insts[pos + 1];
            if f.inst(next).is_terminator() || !self.independent(id, next) {
                return pos;
            }
            f.move_inst(id, block, pos + 1);
        }
    }

    /// Hoist `id` as far up its block as dependences allow (never above the
    /// phis). Returns the new position.
    pub fn hoist_within_block(&self, f: &mut Function, id: InstId) -> usize {
        let block = f.parent_block(id);
        loop {
            let pos = f.position_in_block(id).expect("attached");
            if pos == 0 {
                return 0;
            }
            let prev = f.block(block).insts[pos - 1];
            if matches!(f.inst(prev), noelle_ir::inst::Inst::Phi { .. })
                || !self.independent(id, prev)
            {
                return pos;
            }
            f.move_inst(id, block, pos - 1);
        }
    }
}

/// Loop-specific scheduling: augments the generic capabilities with
/// specialized ones, per the paper's scheduler hierarchy.
pub struct LoopScheduler<'a> {
    pdg: &'a DepGraph<InstId>,
}

impl<'a> LoopScheduler<'a> {
    /// Create a loop scheduler over the loop's dependence graph.
    pub fn new(pdg: &'a DepGraph<InstId>) -> LoopScheduler<'a> {
        LoopScheduler { pdg }
    }

    /// Reduce the header size of `l`: move side-effect-free header
    /// instructions whose every user lives in loop blocks other than the
    /// header into the (single, in-loop) successor of the header. Returns
    /// the instructions moved.
    ///
    /// Moving such an instruction is semantics-preserving: it is pure, its
    /// value is only consumed on iterations that enter the body, and the
    /// body is dominated by the header.
    pub fn shrink_header(&self, f: &mut Function, l: &LoopInfo) -> Vec<InstId> {
        // The in-loop successors of the header.
        let in_loop_succs: Vec<BlockId> = f
            .successors(l.header)
            .into_iter()
            .filter(|s| l.contains(*s))
            .collect();
        let &[body] = in_loop_succs.as_slice() else {
            return Vec::new();
        };
        // The body must not be reachable from anywhere else in the loop
        // except the header (otherwise values could be consumed without the
        // move target executing) — conservatively require body's only role
        // as the header's unique in-loop successor plus phis disallowed.
        let uses = f.compute_uses();
        let mut moved = Vec::new();
        let header_insts: Vec<InstId> = f.block(l.header).insts.clone();
        for id in header_insts {
            let inst = f.inst(id);
            if inst.is_terminator()
                || matches!(inst, noelle_ir::inst::Inst::Phi { .. })
                || inst.has_side_effects()
                || inst.may_read_memory()
            {
                continue;
            }
            let users = uses.get(&id).map(Vec::as_slice).unwrap_or(&[]);
            let ok = !users.is_empty()
                && users.iter().all(|&u| {
                    let ub = f.parent_block(u);
                    ub != l.header && l.contains(ub)
                });
            // The PDG must not carry a dependence forcing the instruction to
            // stay put (e.g. memory edges; excluded above already).
            let pinned = self
                .pdg
                .edges_from(id)
                .chain(self.pdg.edges_to(id))
                .any(|e| e.attrs.memory);
            if ok && !pinned {
                // Insert after the phis of the body.
                let pos = f.phis(body).len();
                f.move_inst(id, body, pos);
                moved.push(id);
            }
        }
        moved
    }
}

/// Control equivalence classes: blocks `a` and `b` are control equivalent
/// when one dominates the other and is post-dominated by it — they execute
/// the same number of times.
pub fn control_equivalence_classes(
    f: &Function,
    dt: &DomTree,
    pdt: &PostDomTree,
) -> Vec<HashSet<BlockId>> {
    let blocks: Vec<BlockId> = f.block_order().to_vec();
    let equivalent = |a: BlockId, b: BlockId| -> bool {
        (dt.dominates(a, b) && pdt.postdominates(b, a))
            || (dt.dominates(b, a) && pdt.postdominates(a, b))
    };
    let mut classes: Vec<HashSet<BlockId>> = Vec::new();
    for &b in &blocks {
        match classes
            .iter_mut()
            .find(|c| c.iter().all(|&x| equivalent(x, b)))
        {
            Some(c) => {
                c.insert(b);
            }
            None => {
                classes.push(HashSet::from([b]));
            }
        }
    }
    classes
}

#[cfg(test)]
mod tests {
    use super::*;
    use noelle_analysis::alias::BasicAlias;
    use noelle_ir::builder::FunctionBuilder;
    use noelle_ir::cfg::Cfg;
    use noelle_ir::inst::{BinOp, IcmpPred};
    use noelle_ir::loops::LoopForest;
    use noelle_ir::module::Module;
    use noelle_ir::types::Type;
    use noelle_ir::value::Value;
    use noelle_pdg::pdg::PdgBuilder;

    #[test]
    fn sink_respects_data_dependences() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("f", vec![("x", Type::I64)], Type::I64);
        let entry = b.entry_block();
        b.switch_to(entry);
        let a = b.binop(BinOp::Add, Type::I64, b.arg(0), Value::const_i64(1));
        let c = b.binop(
            BinOp::Mul,
            Type::I64,
            Value::const_i64(2),
            Value::const_i64(3),
        );
        let d = b.binop(BinOp::Add, Type::I64, a, c);
        b.ret(Some(d));
        let fid = m.add_function(b.finish());
        let basic = BasicAlias::new(&m);
        let builder = PdgBuilder::new(&m, &basic);
        let pdg = builder.function_pdg(fid);
        let sched = Scheduler::new(&pdg);
        // `a` can sink past `c` (independent) but not past `d` (user).
        let pos = sched.sink_within_block(m.func_mut(fid), a.as_inst().unwrap());
        assert_eq!(pos, 1);
        noelle_ir::verifier::verify_module(&m).expect("verifies after sinking");
        // `c` can hoist above `a`.
        let pos = sched.hoist_within_block(m.func_mut(fid), c.as_inst().unwrap());
        assert_eq!(pos, 0);
        noelle_ir::verifier::verify_module(&m).expect("verifies after hoisting");
    }

    #[test]
    fn stores_do_not_cross_each_other() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("f", vec![("p", Type::I64.ptr_to())], Type::Void);
        let entry = b.entry_block();
        b.switch_to(entry);
        b.store(Type::I64, Value::const_i64(1), b.arg(0));
        b.store(Type::I64, Value::const_i64(2), b.arg(0));
        b.ret(None);
        let fid = m.add_function(b.finish());
        let s1 = m.func(fid).block(m.func(fid).entry()).insts[0];
        let basic = BasicAlias::new(&m);
        let builder = PdgBuilder::new(&m, &basic);
        let pdg = builder.function_pdg(fid);
        let sched = Scheduler::new(&pdg);
        let pos = sched.sink_within_block(m.func_mut(fid), s1);
        assert_eq!(pos, 0, "first store must not sink past the second");
    }

    #[test]
    fn shrink_header_moves_body_only_computation() {
        // Header computes t = n * 2 used only in the body: movable.
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("f", vec![("n", Type::I64)], Type::I64);
        let entry = b.entry_block();
        let header = b.block("header");
        let body = b.block("body");
        let exit = b.block("exit");
        b.switch_to(entry);
        b.br(header);
        b.switch_to(header);
        let i = b.phi(Type::I64, vec![(entry, Value::const_i64(0))]);
        let t = b.binop(BinOp::Mul, Type::I64, b.arg(0), Value::const_i64(2));
        let c = b.icmp(IcmpPred::Slt, Type::I64, i, b.arg(0));
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let i2 = b.binop(BinOp::Add, Type::I64, i, t);
        b.br(header);
        b.add_incoming(i, body, i2);
        b.switch_to(exit);
        b.ret(Some(i));
        let fid = m.add_function(b.finish());
        let f = m.func(fid);
        let cfg = Cfg::new(f);
        let dt = noelle_ir::dom::DomTree::new(f, &cfg);
        let forest = LoopForest::new(f, &cfg, &dt);
        let l = forest.loops()[0].clone();
        let basic = BasicAlias::new(&m);
        let builder = PdgBuilder::new(&m, &basic);
        let pdg = builder.loop_pdg(fid, &l);
        let sched = LoopScheduler::new(&pdg);
        let moved = sched.shrink_header(m.func_mut(fid), &l);
        assert_eq!(moved, vec![t.as_inst().unwrap()]);
        noelle_ir::verifier::verify_module(&m).expect("verifies after shrink");
        let f = m.func(fid);
        assert_eq!(f.parent_block(t.as_inst().unwrap()), body);
        // The compare (used by the header's terminator) stayed.
        assert_eq!(f.parent_block(c.as_inst().unwrap()), header);
    }

    #[test]
    fn control_equivalence_diamond() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("f", vec![("c", Type::I1)], Type::Void);
        let entry = b.entry_block();
        let l = b.block("l");
        let r = b.block("r");
        let j = b.block("j");
        b.switch_to(entry);
        b.cond_br(b.arg(0), l, r);
        b.switch_to(l);
        b.br(j);
        b.switch_to(r);
        b.br(j);
        b.switch_to(j);
        b.ret(None);
        let fid = m.add_function(b.finish());
        let f = m.func(fid);
        let cfg = Cfg::new(f);
        let dt = noelle_ir::dom::DomTree::new(f, &cfg);
        let pdt = noelle_ir::dom::PostDomTree::new(f, &cfg);
        let classes = control_equivalence_classes(f, &dt, &pdt);
        // {entry, j} together; l and r alone.
        let cls_of = |b: BlockId| classes.iter().find(|c| c.contains(&b)).unwrap();
        assert!(cls_of(entry).contains(&j));
        assert_eq!(cls_of(l).len(), 1);
        assert_eq!(cls_of(r).len(), 1);
    }
}
