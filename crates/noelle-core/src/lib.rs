//! # noelle-core
//!
//! The NOELLE compilation layer: the abstractions of Table 1 of the paper,
//! provided demand-driven through the [`Noelle`] manager so
//! "users only pay for the abstractions they need":
//!
//! | Paper abstraction | Module |
//! |---|---|
//! | PDG | re-exported from `noelle-pdg`, cached by the manager |
//! | aSCCDAG | `noelle-pdg::sccdag`, bundled into [`loop_abs`] |
//! | Call graph (CG) | `noelle-pdg::callgraph`, cached by the manager |
//! | Environment (ENV) | [`mod@env`] |
//! | Task (T) | [`task`] |
//! | Data-flow engine (DFE) | re-exported from `noelle-analysis` |
//! | Loop structure (LS) | `noelle-ir::loops`, cached by the manager |
//! | Profiler (PRO) | [`profiler`] |
//! | Scheduler (SCD) | [`scheduler`] |
//! | Invariant (INV) | [`invariants`] (Algorithms 1 and 2 of the paper) |
//! | Induction variable (IV) | [`induction`] |
//! | IV stepper (IVS) | [`ivstepper`] |
//! | Reduction (RD) | [`reduction`] |
//! | Loop (L) | [`loop_abs`] |
//! | Forest (FR) | [`forest`] |
//! | Loop builder (LB) | [`loop_builder`] |
//! | Islands (ISL) | `noelle-pdg::islands` |
//! | Architecture (AR) | [`architecture`] |

pub mod architecture;
pub mod audit;
pub mod env;
pub mod forest;
pub mod induction;
pub mod invariants;
pub mod ivstepper;
pub mod json;
pub mod loop_abs;
pub mod loop_builder;
pub mod noelle;
pub mod profiler;
pub mod reduction;
pub mod scheduler;
pub mod task;
pub mod wire;

pub use noelle::{Abstraction, AliasTier, Noelle};
