//! A minimal, dependency-free JSON value type with a parser and printers.
//!
//! The build environment has no network access to crates.io, so the
//! metadata-embedding paths (profiles, architecture descriptions, PDG
//! summaries) serialize through this module instead of serde. Objects keep
//! their keys in a `BTreeMap` so every serialization is deterministic — a
//! requirement for the byte-identical module round-trip tests.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number without a fractional part (kept exact).
    Int(i64),
    /// A fractional number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object with deterministically ordered keys.
    Object(BTreeMap<String, Json>),
}

/// Version of the reply envelope shared by the CLI JSON outputs, the
/// daemon's `lint`/`audit`/`plan` methods, and the IDE's diagnostic pushes.
/// Bumped together with the daemon protocol when an envelope's shape moves.
pub const ENVELOPE_VERSION: i64 = 2;

/// Wrap a reply body in the unified envelope `{"v", "kind", ...fields}`.
/// The body's fields are spliced in at top level, so consumers keep
/// addressing `findings`, `audit`, or `plan` directly; `v` and `kind` let
/// them dispatch without knowing which entry point produced the document.
///
/// # Panics
/// `body` must be an object (every envelope payload is).
pub fn envelope(kind: &str, body: Json) -> Json {
    let Json::Object(mut fields) = body else {
        panic!("envelope body must be a JSON object");
    };
    fields.insert("v".to_string(), Json::Int(ENVELOPE_VERSION));
    fields.insert("kind".to_string(), Json::Str(kind.to_string()));
    Json::Object(fields)
}

impl Json {
    /// Build an object from key/value pairs.
    pub fn object(pairs: impl IntoIterator<Item = (String, Json)>) -> Json {
        Json::Object(pairs.into_iter().collect())
    }

    /// The value as an i64 (integers only).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a u64 (non-negative integers only).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// The value as an f64 (any number).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(v) => Some(*v as f64),
            Json::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The value as an object map.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_object()?.get(key)
    }

    /// Compact single-line rendering.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Indented multi-line rendering.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(v) => {
                use fmt::Write;
                let _ = write!(out, "{v}");
            }
            Json::Float(v) => {
                if v.is_finite() {
                    let s = format!("{v}");
                    out.push_str(&s);
                    // Keep the float/int distinction through a round trip.
                    if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Json::Object(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }

    /// Parse a JSON document. Returns `None` on any syntax error or
    /// trailing garbage.
    pub fn parse(text: &str) -> Option<Json> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos == bytes.len() {
            Some(v)
        } else {
            None
        }
    }

    /// Parse one JSON value off the front of `text`, returning the value and
    /// the number of bytes consumed (leading whitespace included, trailing
    /// whitespace not).
    ///
    /// The incremental twin of [`Json::parse`] for concatenated or partial
    /// NDJSON buffers: a transport can peel complete frames off an
    /// accumulating read buffer without re-scanning or copying the rest, and
    /// a `None` on a *prefix* of a valid document simply means "read more
    /// bytes". Callers feeding newline-delimited streams should strip the
    /// frame separator themselves (it is trailing, not leading, whitespace).
    ///
    /// Caveat: a bare number at the very end of the buffer is ambiguous
    /// (`12` may be the prefix of `123`), and is parsed greedily as
    /// complete. NDJSON framing resolves this in practice — a number is only
    /// final once its newline separator has arrived, so split buffers end
    /// either mid-token (syntax error → `None`) or at a separator.
    pub fn parse_prefix(text: &str) -> Option<(Json, usize)> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        Some((v, pos))
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string_compact())
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    // Copy maximal runs needing no escape in one shot; most strings are
    // entirely plain.
    let mut rest = s;
    while let Some(i) = rest.find(|c: char| matches!(c, '"' | '\\') || (c as u32) < 0x20) {
        out.push_str(&rest[..i]);
        let c = rest[i..].chars().next().expect("found above");
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c => out.push_str(&format!("\\u{:04x}", c as u32)),
        }
        rest = &rest[i + c.len_utf8()..];
    }
    out.push_str(rest);
    out.push('"');
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn eat(b: &[u8], pos: &mut usize, c: u8) -> Option<()> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Some(())
    } else {
        None
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Option<Json> {
    skip_ws(b, pos);
    match *b.get(*pos)? {
        b'n' => parse_lit(b, pos, "null", Json::Null),
        b't' => parse_lit(b, pos, "true", Json::Bool(true)),
        b'f' => parse_lit(b, pos, "false", Json::Bool(false)),
        b'"' => parse_string(b, pos).map(Json::Str),
        b'[' => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Some(Json::Array(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos)? {
                    b',' => *pos += 1,
                    b']' => {
                        *pos += 1;
                        return Some(Json::Array(items));
                    }
                    _ => return None,
                }
            }
        }
        b'{' => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Some(Json::Object(map));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                eat(b, pos, b':')?;
                map.insert(key, parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos)? {
                    b',' => *pos += 1,
                    b'}' => {
                        *pos += 1;
                        return Some(Json::Object(map));
                    }
                    _ => return None,
                }
            }
        }
        _ => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Option<Json> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Some(v)
    } else {
        None
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Option<String> {
    if b.get(*pos) != Some(&b'"') {
        return None;
    }
    *pos += 1;
    // Fast path: scan the leading escape-free run and copy it in one shot;
    // most strings close without any escape at all.
    let start = *pos;
    let mut i = *pos;
    loop {
        match *b.get(i)? {
            b'"' => {
                let s = std::str::from_utf8(&b[start..i]).ok()?;
                *pos = i + 1;
                return Some(s.to_string());
            }
            b'\\' => break,
            _ => i += 1,
        }
    }
    let mut out = String::with_capacity(i - start + 16);
    out.push_str(std::str::from_utf8(&b[start..i]).ok()?);
    *pos = i;
    loop {
        let c = *b.get(*pos)?;
        *pos += 1;
        match c {
            b'"' => return Some(out),
            b'\\' => {
                let e = *b.get(*pos)?;
                *pos += 1;
                match e {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let cp = parse_hex4(b, pos)?;
                        if (0xD800..=0xDBFF).contains(&cp) {
                            // High surrogate: a `\uXXXX` low surrogate must
                            // follow to form one astral code point.
                            if b.get(*pos) == Some(&b'\\') && b.get(*pos + 1) == Some(&b'u') {
                                *pos += 2;
                                let lo = parse_hex4(b, pos)?;
                                if (0xDC00..=0xDFFF).contains(&lo) {
                                    let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    out.push(char::from_u32(c).unwrap_or('\u{fffd}'));
                                } else {
                                    // Unpaired high surrogate; the second
                                    // escape stands on its own.
                                    out.push('\u{fffd}');
                                    out.push(char::from_u32(lo).unwrap_or('\u{fffd}'));
                                }
                            } else {
                                out.push('\u{fffd}');
                            }
                        } else {
                            // Lone low surrogates land in the from_u32 None
                            // branch and degrade to U+FFFD.
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        }
                    }
                    _ => return None,
                }
            }
            c => {
                // Re-decode multi-byte UTF-8 sequences.
                if c < 0x80 {
                    out.push(c as char);
                } else {
                    let start = *pos - 1;
                    let len = utf8_len(c);
                    let s = std::str::from_utf8(b.get(start..start + len)?).ok()?;
                    out.push_str(s);
                    *pos = start + len;
                }
            }
        }
    }
}

fn parse_hex4(b: &[u8], pos: &mut usize) -> Option<u32> {
    let hex = std::str::from_utf8(b.get(*pos..*pos + 4)?).ok()?;
    *pos += 4;
    u32::from_str_radix(hex, 16).ok()
}

fn utf8_len(first: u8) -> usize {
    match first {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Option<Json> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).ok()?;
    if text.is_empty() || text == "-" {
        return None;
    }
    if is_float {
        text.parse::<f64>().ok().map(Json::Float)
    } else {
        text.parse::<i64>().ok().map(Json::Int)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_compact_and_pretty() {
        let v = Json::object([
            ("name".to_string(), Json::Str("machine \"x\"".into())),
            (
                "cores".to_string(),
                Json::Array(vec![Json::Int(0), Json::Int(1)]),
            ),
            ("ratio".to_string(), Json::Float(0.5)),
            ("flag".to_string(), Json::Bool(true)),
            ("none".to_string(), Json::Null),
        ]);
        for text in [v.to_string_compact(), v.to_string_pretty()] {
            assert_eq!(Json::parse(&text), Some(v.clone()));
        }
    }

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(r#"{"a": [1, 2.5, {"b": "c\nd"}], "e": -3}"#).unwrap();
        assert_eq!(v.get("e").and_then(Json::as_i64), Some(-3));
        let arr = v.get("a").and_then(Json::as_array).unwrap();
        assert_eq!(arr[0].as_i64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[2].get("b").and_then(Json::as_str), Some("c\nd"));
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(Json::parse("{"), None);
        assert_eq!(Json::parse("[1,]"), None);
        assert_eq!(Json::parse("1 2"), None);
        assert_eq!(Json::parse(""), None);
    }

    #[test]
    fn rejects_trailing_garbage_after_top_level_value() {
        // A wire frame must hold exactly one value: anything after the
        // top-level value is a protocol error, not ignorable noise.
        assert_eq!(Json::parse(r#"{"a":1} x"#), None);
        assert_eq!(Json::parse("[1] [2]"), None);
        assert_eq!(Json::parse("\"abc\"garbage"), None);
        assert_eq!(Json::parse("true false"), None);
        assert_eq!(Json::parse("null,"), None);
        // Pure trailing whitespace stays fine.
        assert_eq!(Json::parse(" 7 \n\t"), Some(Json::Int(7)));
    }

    #[test]
    fn decodes_unicode_escapes_and_surrogate_pairs() {
        // BMP escapes.
        assert_eq!(
            Json::parse("\"\\u00e9\\u2211\""),
            Some(Json::Str("é∑".into()))
        );
        // Raw (unescaped) UTF-8 passes through.
        assert_eq!(Json::parse(r#""é∑😀""#), Some(Json::Str("é∑😀".into())));
        // Astral plane via a surrogate pair (U+1F600).
        assert_eq!(
            Json::parse("\"\\ud83d\\ude00\""),
            Some(Json::Str("😀".into()))
        );
        // Unpaired surrogates degrade to U+FFFD instead of crashing the
        // connection.
        assert_eq!(
            Json::parse(r#""\ud800""#),
            Some(Json::Str("\u{fffd}".into()))
        );
        assert_eq!(
            Json::parse(r#""\udc00""#),
            Some(Json::Str("\u{fffd}".into()))
        );
        // High surrogate followed by a normal escape: the second escape
        // survives on its own.
        assert_eq!(
            Json::parse(r#""\ud800A""#),
            Some(Json::Str("\u{fffd}A".into()))
        );
        // Truncated escape is a syntax error.
        assert_eq!(Json::parse(r#""\ud83d\ude0"#), None);
        assert_eq!(Json::parse(r#""\uzzzz""#), None);
    }

    #[test]
    fn non_ascii_strings_round_trip() {
        for s in [
            "héllo wörld",
            "日本語テスト",
            "mixed 😀 emoji ∑∫√",
            "\u{fffd}",
        ] {
            let v = Json::Str(s.to_string());
            for text in [v.to_string_compact(), v.to_string_pretty()] {
                assert_eq!(Json::parse(&text), Some(v.clone()), "round trip of {s:?}");
            }
            // Keys round-trip too.
            let o = Json::object([(s.to_string(), Json::Int(1))]);
            assert_eq!(Json::parse(&o.to_string_compact()), Some(o));
        }
    }

    #[test]
    fn integers_stay_exact() {
        let big = Json::Int(i64::MAX);
        assert_eq!(Json::parse(&big.to_string_compact()), Some(big));
        // Floats that print without a dot keep their float-ness.
        let f = Json::Float(2.0);
        assert_eq!(Json::parse(&f.to_string_compact()), Some(f));
    }

    #[test]
    fn parse_prefix_peels_concatenated_values() {
        // Two NDJSON frames plus the start of a third in one buffer.
        let buf = "{\"id\":1,\"ok\":true}\n{\"id\":2}\n{\"id\":";
        let (v1, n1) = Json::parse_prefix(buf).expect("first frame complete");
        assert_eq!(v1.as_object().unwrap().get("id"), Some(&Json::Int(1)));
        assert_eq!(&buf[..n1], "{\"id\":1,\"ok\":true}");
        let rest = &buf[n1..];
        let (v2, n2) = Json::parse_prefix(rest).expect("second frame complete");
        assert_eq!(v2, Json::object([("id".to_string(), Json::Int(2))]));
        // Leading whitespace (the frame separator) is consumed.
        assert_eq!(&rest[..n2], "\n{\"id\":2}");
        // The trailing partial frame is not a value yet.
        assert_eq!(Json::parse_prefix(&rest[n2..]), None);
    }

    #[test]
    fn parse_prefix_rejects_split_mid_frame() {
        let full = r#"{"method":"ide/change","params":{"lines":["a","b"]}}"#;
        // Every strict prefix is incomplete (no bare top-level numbers in
        // the protocol, so no ambiguity): parse_prefix must say "need more".
        for cut in 1..full.len() {
            assert_eq!(
                Json::parse_prefix(&full[..cut]),
                None,
                "cut at {cut} must be incomplete"
            );
        }
        let (v, n) = Json::parse_prefix(full).expect("whole frame parses");
        assert_eq!(n, full.len());
        assert_eq!(Json::parse(full), Some(v));
    }

    #[test]
    fn parse_prefix_matches_parse_on_whole_documents() {
        for doc in ["[1,2,3]", "\"x\"", "null", "  {\"a\":[true,false]} "] {
            let whole = Json::parse(doc.trim());
            let (v, n) = Json::parse_prefix(doc).expect("parses");
            assert_eq!(Some(v), whole);
            assert!(n <= doc.len());
        }
    }
}
