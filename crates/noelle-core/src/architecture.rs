//! The Architecture (AR) abstraction.
//!
//! "Description of the underlying architecture in terms of logical/physical
//! cores, NUMA nodes. It also provides the measured latencies and bandwidths
//! between pairs of cores." The paper's `noelle-arch` tool fills this by
//! measuring the machine (via hwloc + micro-benchmarks); here the
//! description is synthesized deterministically — the substitution DESIGN.md
//! documents — and consumed identically by HELIX's helper-thread placement
//! and by the simulated runtime's communication costs.

use crate::json::Json;

/// Metadata key under which the architecture description is embedded.
pub const ARCH_KEY: &str = "noelle.arch";

/// A machine description.
#[derive(Clone, Debug, PartialEq)]
pub struct Architecture {
    /// Human-readable name.
    pub name: String,
    /// Number of logical cores.
    pub num_cores: usize,
    /// SMT ways per physical core.
    pub smt: usize,
    /// Number of NUMA nodes.
    pub numa_nodes: usize,
    /// NUMA node of each logical core.
    pub core_to_numa: Vec<usize>,
    /// Core-to-core latency in cycles (`latency[a][b]`).
    pub latency: Vec<Vec<u64>>,
    /// Core-to-core bandwidth in bytes/cycle.
    pub bandwidth: Vec<Vec<u64>>,
    /// Cost in cycles of dispatching one task to a core.
    pub dispatch_overhead: u64,
    /// Cost in cycles of one inter-core queue push/pop pair.
    pub queue_op_cost: u64,
}

impl Architecture {
    /// A deterministic synthetic machine: `num_cores` logical cores spread
    /// evenly over `numa_nodes` nodes. Latencies follow the usual hierarchy:
    /// same core 0, same NUMA node 60 cycles, cross-node 140 cycles.
    pub fn synthetic(num_cores: usize, numa_nodes: usize) -> Architecture {
        assert!(num_cores > 0 && numa_nodes > 0);
        let per_node = num_cores.div_ceil(numa_nodes);
        let core_to_numa: Vec<usize> = (0..num_cores).map(|c| c / per_node).collect();
        let latency: Vec<Vec<u64>> = (0..num_cores)
            .map(|a| {
                (0..num_cores)
                    .map(|b| {
                        if a == b {
                            0
                        } else if core_to_numa[a] == core_to_numa[b] {
                            60
                        } else {
                            140
                        }
                    })
                    .collect()
            })
            .collect();
        let bandwidth: Vec<Vec<u64>> = (0..num_cores)
            .map(|a| {
                (0..num_cores)
                    .map(|b| {
                        if a == b {
                            64
                        } else if core_to_numa[a] == core_to_numa[b] {
                            32
                        } else {
                            16
                        }
                    })
                    .collect()
            })
            .collect();
        Architecture {
            name: format!("synthetic-{num_cores}c-{numa_nodes}n"),
            num_cores,
            smt: 2,
            numa_nodes,
            core_to_numa,
            latency,
            bandwidth,
            dispatch_overhead: 400,
            queue_op_cost: 30,
        }
    }

    /// The default evaluation machine: 12 cores on 1 NUMA node, mirroring
    /// the paper's Xeon E5-2695 v3 platform shape.
    pub fn default_machine() -> Architecture {
        Architecture::synthetic(12, 1)
    }

    /// Latency between two cores in cycles.
    pub fn core_latency(&self, a: usize, b: usize) -> u64 {
        self.latency[a.min(self.num_cores - 1)][b.min(self.num_cores - 1)]
    }

    /// Worst-case latency from any core to any other.
    pub fn max_latency(&self) -> u64 {
        self.latency
            .iter()
            .flat_map(|row| row.iter().copied())
            .max()
            .unwrap_or(0)
    }

    /// Serialize to a JSON value (the embedding format).
    pub fn to_json(&self) -> Json {
        let matrix = |m: &Vec<Vec<u64>>| {
            Json::Array(
                m.iter()
                    .map(|row| Json::Array(row.iter().map(|&c| Json::Int(c as i64)).collect()))
                    .collect(),
            )
        };
        Json::object([
            ("name".to_string(), Json::Str(self.name.clone())),
            ("num_cores".to_string(), Json::Int(self.num_cores as i64)),
            ("smt".to_string(), Json::Int(self.smt as i64)),
            ("numa_nodes".to_string(), Json::Int(self.numa_nodes as i64)),
            (
                "core_to_numa".to_string(),
                Json::Array(
                    self.core_to_numa
                        .iter()
                        .map(|&n| Json::Int(n as i64))
                        .collect(),
                ),
            ),
            ("latency".to_string(), matrix(&self.latency)),
            ("bandwidth".to_string(), matrix(&self.bandwidth)),
            (
                "dispatch_overhead".to_string(),
                Json::Int(self.dispatch_overhead as i64),
            ),
            (
                "queue_op_cost".to_string(),
                Json::Int(self.queue_op_cost as i64),
            ),
        ])
    }

    /// Deserialize from the JSON produced by [`Architecture::to_json`].
    pub fn from_json(v: &Json) -> Option<Architecture> {
        let matrix = |j: &Json| -> Option<Vec<Vec<u64>>> {
            j.as_array()?
                .iter()
                .map(|row| row.as_array()?.iter().map(Json::as_u64).collect())
                .collect()
        };
        Some(Architecture {
            name: v.get("name")?.as_str()?.to_string(),
            num_cores: v.get("num_cores")?.as_u64()? as usize,
            smt: v.get("smt")?.as_u64()? as usize,
            numa_nodes: v.get("numa_nodes")?.as_u64()? as usize,
            core_to_numa: v
                .get("core_to_numa")?
                .as_array()?
                .iter()
                .map(|n| Some(n.as_u64()? as usize))
                .collect::<Option<Vec<usize>>>()?,
            latency: matrix(v.get("latency")?)?,
            bandwidth: matrix(v.get("bandwidth")?)?,
            dispatch_overhead: v.get("dispatch_overhead")?.as_u64()?,
            queue_op_cost: v.get("queue_op_cost")?.as_u64()?,
        })
    }

    /// Embed this description into module metadata (what `noelle-arch`
    /// writes).
    pub fn embed(&self, m: &mut noelle_ir::Module) {
        m.metadata
            .insert(ARCH_KEY.to_string(), self.to_json().to_string_compact());
    }

    /// Read a description embedded by [`Architecture::embed`].
    pub fn from_module(m: &noelle_ir::Module) -> Option<Architecture> {
        m.metadata
            .get(ARCH_KEY)
            .and_then(|s| Json::parse(s))
            .as_ref()
            .and_then(Architecture::from_json)
    }
}

impl Default for Architecture {
    fn default() -> Architecture {
        Architecture::default_machine()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_shape() {
        let a = Architecture::synthetic(8, 2);
        assert_eq!(a.num_cores, 8);
        assert_eq!(a.core_to_numa, vec![0, 0, 0, 0, 1, 1, 1, 1]);
        assert_eq!(a.core_latency(0, 0), 0);
        assert_eq!(a.core_latency(0, 1), 60);
        assert_eq!(a.core_latency(0, 7), 140);
        assert_eq!(a.max_latency(), 140);
    }

    #[test]
    fn embed_round_trips() {
        let mut m = noelle_ir::Module::new("t");
        let a = Architecture::synthetic(4, 1);
        a.embed(&mut m);
        assert_eq!(Architecture::from_module(&m), Some(a));
        assert_eq!(
            Architecture::from_module(&noelle_ir::Module::new("x")),
            None
        );
    }

    #[test]
    fn survives_ir_round_trip() {
        let mut m = noelle_ir::Module::new("t");
        Architecture::default_machine().embed(&mut m);
        let text = noelle_ir::printer::print_module(&m);
        let m2 = noelle_ir::parser::parse_module(&text).unwrap();
        assert_eq!(
            Architecture::from_module(&m2),
            Some(Architecture::default_machine())
        );
    }
}
