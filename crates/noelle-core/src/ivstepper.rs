//! The Induction Variable Stepper (IVS) abstraction.
//!
//! "A common operation for modern and emerging code transformations is to
//! modify the step of induction variables. [...] users only need to specify
//! the new step values, and the abstraction modifies the loop accordingly."
//! DOALL uses this for chunking/cyclic distribution of iterations; loop
//! rotation uses it to revert step directions.

use crate::loop_builder::{ensure_preheader, LoopBuilderError};
use noelle_analysis::scev::AddRec;
use noelle_ir::inst::{BinOp, Inst};
use noelle_ir::loops::LoopInfo;
use noelle_ir::module::Function;
use noelle_ir::value::Value;

/// Errors raised by the stepper.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IvsError {
    /// The loop has no pre-header and one could not be created.
    NoPreheader,
    /// The update instruction no longer matches the recurrence shape.
    MalformedUpdate,
}

impl std::fmt::Display for IvsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IvsError::NoPreheader => write!(f, "loop has no pre-header"),
            IvsError::MalformedUpdate => write!(f, "induction update has unexpected shape"),
        }
    }
}

impl std::error::Error for IvsError {}

impl From<LoopBuilderError> for IvsError {
    fn from(_: LoopBuilderError) -> IvsError {
        IvsError::NoPreheader
    }
}

/// Replace the step of `rec` with `new_step` (a value available in the
/// pre-header).
///
/// # Errors
/// Fails if the update instruction is not the expected `add`/`sub`.
pub fn set_step(f: &mut Function, rec: &AddRec, new_step: Value) -> Result<(), IvsError> {
    let phi = Value::Inst(rec.phi);
    match f.inst_mut(rec.update) {
        Inst::Bin {
            op: BinOp::Add | BinOp::Sub,
            lhs,
            rhs,
            ..
        } => {
            if *lhs == phi {
                *rhs = new_step;
            } else if *rhs == phi {
                *lhs = new_step;
            } else {
                return Err(IvsError::MalformedUpdate);
            }
            Ok(())
        }
        _ => Err(IvsError::MalformedUpdate),
    }
}

/// Multiply the step of `rec` by `factor`: the stepper inserts
/// `new_step = step * factor` in the pre-header and rewires the update.
/// Returns the inserted multiply's value.
///
/// # Errors
/// Fails if the loop has no pre-header and one cannot be created, or if the
/// update shape is unexpected.
pub fn scale_step(
    f: &mut Function,
    l: &LoopInfo,
    rec: &AddRec,
    factor: Value,
) -> Result<Value, IvsError> {
    let pre = ensure_preheader(f, l)?;
    let ty = f.inst(rec.update).result_type();
    let pos = f.block(pre).insts.len().saturating_sub(1); // before terminator
    let mul = f.insert_inst(
        pre,
        pos,
        Inst::Bin {
            op: BinOp::Mul,
            ty,
            lhs: rec.step,
            rhs: factor,
        },
    );
    set_step(f, rec, Value::Inst(mul))?;
    Ok(Value::Inst(mul))
}

/// Offset the starting value of `rec` by `delta * step`: inserts
/// `new_start = start + delta * step` in the pre-header and rewires the
/// phi's out-of-loop incoming values. Used for cyclic iteration distribution
/// (task `t` of `n` starts at `start + t*step` and steps by `n*step`).
///
/// # Errors
/// Fails if the loop has no pre-header and one cannot be created.
pub fn offset_start(
    f: &mut Function,
    l: &LoopInfo,
    rec: &AddRec,
    delta: Value,
) -> Result<(), IvsError> {
    let pre = ensure_preheader(f, l)?;
    let ty = f.inst(rec.update).result_type();
    let pos = f.block(pre).insts.len().saturating_sub(1);
    let scaled = f.insert_inst(
        pre,
        pos,
        Inst::Bin {
            op: BinOp::Mul,
            ty: ty.clone(),
            lhs: rec.step,
            rhs: delta,
        },
    );
    let op = if rec.negated { BinOp::Sub } else { BinOp::Add };
    let new_start = f.insert_inst(
        pre,
        pos + 1,
        Inst::Bin {
            op,
            ty,
            lhs: rec.start,
            rhs: Value::Inst(scaled),
        },
    );
    // Rewire every out-of-loop incoming of the phi.
    let blocks: Vec<_> = match f.inst(rec.phi) {
        Inst::Phi { incomings, .. } => incomings.clone(),
        _ => return Err(IvsError::MalformedUpdate),
    };
    if let Inst::Phi { incomings, .. } = f.inst_mut(rec.phi) {
        *incomings = blocks
            .into_iter()
            .map(|(b, v)| {
                if l.contains(b) {
                    (b, v)
                } else {
                    (b, Value::Inst(new_start))
                }
            })
            .collect();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use noelle_analysis::scev::affine_recurrences;
    use noelle_ir::builder::FunctionBuilder;
    use noelle_ir::cfg::Cfg;
    use noelle_ir::dom::DomTree;
    use noelle_ir::inst::IcmpPred;
    use noelle_ir::loops::LoopForest;
    use noelle_ir::module::Module;
    use noelle_ir::types::Type;

    fn counted_loop() -> (Module, noelle_ir::module::FuncId) {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("f", vec![("n", Type::I64)], Type::I64);
        let entry = b.entry_block();
        let header = b.block("header");
        let body = b.block("body");
        let exit = b.block("exit");
        b.switch_to(entry);
        b.br(header);
        b.switch_to(header);
        let i = b.phi(Type::I64, vec![(entry, Value::const_i64(0))]);
        let c = b.icmp(IcmpPred::Slt, Type::I64, i, b.arg(0));
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let i2 = b.binop(BinOp::Add, Type::I64, i, Value::const_i64(1));
        b.br(header);
        b.add_incoming(i, body, i2);
        b.switch_to(exit);
        b.ret(Some(i));
        let fid = m.add_function(b.finish());
        (m, fid)
    }

    fn loop_of(f: &Function) -> LoopInfo {
        let cfg = Cfg::new(f);
        let dt = DomTree::new(f, &cfg);
        LoopForest::new(f, &cfg, &dt).loops()[0].clone()
    }

    #[test]
    fn set_step_rewrites_update() {
        let (mut m, fid) = counted_loop();
        let l = loop_of(m.func(fid));
        let rec = affine_recurrences(m.func(fid), &l)[0].clone();
        set_step(m.func_mut(fid), &rec, Value::const_i64(4)).unwrap();
        let f = m.func(fid);
        assert!(matches!(
            f.inst(rec.update),
            Inst::Bin { rhs, .. } if *rhs == Value::const_i64(4)
        ));
        noelle_ir::verifier::verify_module(&m).expect("still verifies");
    }

    #[test]
    fn scale_step_inserts_preheader_multiply() {
        let (mut m, fid) = counted_loop();
        let l = loop_of(m.func(fid));
        let rec = affine_recurrences(m.func(fid), &l)[0].clone();
        let before = m.func(fid).num_insts();
        scale_step(m.func_mut(fid), &l, &rec, Value::const_i64(8)).unwrap();
        let f = m.func(fid);
        assert_eq!(f.num_insts(), before + 1);
        noelle_ir::verifier::verify_module(&m).expect("still verifies");
        // The recurrence now steps by 1*8.
        let l2 = loop_of(m.func(fid));
        let recs = affine_recurrences(m.func(fid), &l2);
        assert_eq!(recs.len(), 1);
        // Step is the inserted multiply (an instruction, not a constant).
        assert!(recs[0].const_step().is_none());
    }

    #[test]
    fn offset_start_rewires_phi() {
        let (mut m, fid) = counted_loop();
        let l = loop_of(m.func(fid));
        let rec = affine_recurrences(m.func(fid), &l)[0].clone();
        offset_start(m.func_mut(fid), &l, &rec, Value::const_i64(3)).unwrap();
        noelle_ir::verifier::verify_module(&m).expect("still verifies");
        let f = m.func(fid);
        // The phi's entry incoming is now an add instruction.
        if let Inst::Phi { incomings, .. } = f.inst(rec.phi) {
            let outside: Vec<_> = incomings.iter().filter(|(b, _)| !l.contains(*b)).collect();
            assert_eq!(outside.len(), 1);
            assert!(matches!(outside[0].1, Value::Inst(_)));
        } else {
            panic!("not a phi");
        }
    }

    #[test]
    fn set_step_rejects_non_affine_update() {
        let (mut m, fid) = counted_loop();
        let l = loop_of(m.func(fid));
        let mut rec = affine_recurrences(m.func(fid), &l)[0].clone();
        rec.update = rec.phi; // sabotage: a phi is not an add/sub
        assert_eq!(
            set_step(m.func_mut(fid), &rec, Value::const_i64(1)),
            Err(IvsError::MalformedUpdate)
        );
    }
}
