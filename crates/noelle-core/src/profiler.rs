//! The Profiler (PRO) abstraction.
//!
//! NOELLE "provides several code profilers, the ability to embed their
//! results into IR files, and abstractions to facilitate high-level queries
//! on such data": hotness of a code region, loop iteration counts, function
//! invocation counts. In this reproduction the raw counts are produced by
//! the IR interpreter in `noelle-runtime` (playing the role of
//! `noelle-prof-coverage` + training inputs); this module holds the data
//! model, the queries, and metadata embedding
//! (`noelle-meta-prof-embed`).

use crate::json::Json;
use noelle_ir::loops::LoopInfo;
use noelle_ir::module::{BlockId, FuncId, Module};
use std::collections::BTreeMap;

/// Metadata key under which profiles are embedded.
pub const PROF_KEY: &str = "noelle.prof";

/// Execution profiles of a module, keyed by function *name* so they survive
/// serialization and linking.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Profiles {
    /// Execution count of each block, indexed by `BlockId`.
    pub block_counts: BTreeMap<String, Vec<u64>>,
    /// Invocation count of each function.
    pub func_invocations: BTreeMap<String, u64>,
    /// Taken counts of each conditional branch, indexed by the `BlockId` of
    /// the branching block: `(times the true edge was taken, executions)` —
    /// the paper's *branch profiler*.
    pub branch_counts: BTreeMap<String, Vec<(u64, u64)>>,
}

impl Profiles {
    /// Record `n` executions of block `b` of function `fname`.
    pub fn record_block(&mut self, fname: &str, b: BlockId, n: u64) {
        let v = self.block_counts.entry(fname.to_string()).or_default();
        if v.len() <= b.index() {
            v.resize(b.index() + 1, 0);
        }
        v[b.index()] += n;
    }

    /// Record one invocation of `fname`.
    pub fn record_invocation(&mut self, fname: &str) {
        *self.func_invocations.entry(fname.to_string()).or_default() += 1;
    }

    /// Record one execution of the conditional branch ending block `b`.
    pub fn record_branch(&mut self, fname: &str, b: BlockId, taken: bool) {
        let v = self.branch_counts.entry(fname.to_string()).or_default();
        if v.len() <= b.index() {
            v.resize(b.index() + 1, (0, 0));
        }
        v[b.index()].1 += 1;
        if taken {
            v[b.index()].0 += 1;
        }
    }

    /// Fraction of executions on which the branch ending `b` took its true
    /// edge, if it ever executed. Custom tools use this to pick likely paths
    /// (e.g. the TIME tool biases clock decisions toward hot edges).
    pub fn branch_bias(&self, fname: &str, b: BlockId) -> Option<f64> {
        let (taken, total) = *self.branch_counts.get(fname)?.get(b.index())?;
        (total > 0).then(|| taken as f64 / total as f64)
    }

    /// Execution count of block `b` of function `fname`.
    pub fn block_count(&self, fname: &str, b: BlockId) -> u64 {
        self.block_counts
            .get(fname)
            .and_then(|v| v.get(b.index()))
            .copied()
            .unwrap_or(0)
    }

    /// Invocations of `fname`.
    pub fn invocations(&self, fname: &str) -> u64 {
        self.func_invocations.get(fname).copied().unwrap_or(0)
    }

    /// Dynamic instructions attributed to function `fid`.
    pub fn function_dynamic_insts(&self, m: &Module, fid: FuncId) -> u64 {
        let f = m.func(fid);
        f.block_order()
            .iter()
            .map(|&b| self.block_count(&f.name, b) * f.block(b).insts.len() as u64)
            .sum()
    }

    /// Dynamic instructions of the whole module.
    pub fn total_dynamic_insts(&self, m: &Module) -> u64 {
        m.func_ids()
            .map(|fid| self.function_dynamic_insts(m, fid))
            .sum()
    }

    /// Hotness of function `fid`: its share of the module's dynamic
    /// instructions, in `[0, 1]`.
    pub fn function_hotness(&self, m: &Module, fid: FuncId) -> f64 {
        let total = self.total_dynamic_insts(m);
        if total == 0 {
            return 0.0;
        }
        self.function_dynamic_insts(m, fid) as f64 / total as f64
    }

    /// Dynamic instructions attributed to loop `l` of function `fid`.
    pub fn loop_dynamic_insts(&self, m: &Module, fid: FuncId, l: &LoopInfo) -> u64 {
        let f = m.func(fid);
        l.blocks
            .iter()
            .map(|&b| self.block_count(&f.name, b) * f.block(b).insts.len() as u64)
            .sum()
    }

    /// Hotness of loop `l`: its share of the module's dynamic instructions.
    pub fn loop_hotness(&self, m: &Module, fid: FuncId, l: &LoopInfo) -> f64 {
        let total = self.total_dynamic_insts(m);
        if total == 0 {
            return 0.0;
        }
        self.loop_dynamic_insts(m, fid, l) as f64 / total as f64
    }

    /// Number of times loop `l` was entered (approximated by its pre-header
    /// count when present, else by header minus back-edge counts).
    pub fn loop_invocations(&self, m: &Module, fid: FuncId, l: &LoopInfo) -> u64 {
        let f = m.func(fid);
        if let Some(pre) = l.preheader {
            return self.block_count(&f.name, pre);
        }
        let header = self.block_count(&f.name, l.header);
        let back: u64 = l
            .latches
            .iter()
            .map(|&b| self.block_count(&f.name, b))
            .sum();
        header.saturating_sub(back)
    }

    /// Total header executions of loop `l` (its trip-count-ish measure: for
    /// while-shaped loops this is iterations + invocations).
    pub fn loop_header_executions(&self, m: &Module, fid: FuncId, l: &LoopInfo) -> u64 {
        let f = m.func(fid);
        self.block_count(&f.name, l.header)
    }

    /// Total iterations executed by loop `l` (back edges taken plus one per
    /// invocation for do-while loops; header minus invocations for while
    /// loops).
    pub fn loop_total_iterations(&self, m: &Module, fid: FuncId, l: &LoopInfo) -> u64 {
        let header = self.loop_header_executions(m, fid, l);
        let inv = self.loop_invocations(m, fid, l);
        if l.is_do_while() {
            header
        } else {
            header.saturating_sub(inv)
        }
    }

    /// Average iterations per invocation of loop `l`.
    pub fn loop_avg_iterations(&self, m: &Module, fid: FuncId, l: &LoopInfo) -> f64 {
        let inv = self.loop_invocations(m, fid, l);
        if inv == 0 {
            return 0.0;
        }
        self.loop_total_iterations(m, fid, l) as f64 / inv as f64
    }

    /// Serialize to a JSON value (the embedding format).
    pub fn to_json(&self) -> Json {
        let counts = |m: &BTreeMap<String, Vec<u64>>| {
            Json::object(m.iter().map(|(k, v)| {
                (
                    k.clone(),
                    Json::Array(v.iter().map(|&c| Json::Int(c as i64)).collect()),
                )
            }))
        };
        Json::object([
            ("block_counts".to_string(), counts(&self.block_counts)),
            (
                "func_invocations".to_string(),
                Json::object(
                    self.func_invocations
                        .iter()
                        .map(|(k, &v)| (k.clone(), Json::Int(v as i64))),
                ),
            ),
            (
                "branch_counts".to_string(),
                Json::object(self.branch_counts.iter().map(|(k, v)| {
                    (
                        k.clone(),
                        Json::Array(
                            v.iter()
                                .map(|&(t, n)| {
                                    Json::Array(vec![Json::Int(t as i64), Json::Int(n as i64)])
                                })
                                .collect(),
                        ),
                    )
                })),
            ),
        ])
    }

    /// Deserialize from the JSON produced by [`Profiles::to_json`].
    pub fn from_json(v: &Json) -> Option<Profiles> {
        let counts = |j: &Json| -> Option<BTreeMap<String, Vec<u64>>> {
            j.as_object()?
                .iter()
                .map(|(k, arr)| {
                    let v: Option<Vec<u64>> = arr.as_array()?.iter().map(Json::as_u64).collect();
                    Some((k.clone(), v?))
                })
                .collect()
        };
        let block_counts = counts(v.get("block_counts")?)?;
        let func_invocations = v
            .get("func_invocations")?
            .as_object()?
            .iter()
            .map(|(k, n)| Some((k.clone(), n.as_u64()?)))
            .collect::<Option<BTreeMap<String, u64>>>()?;
        // Absent in older embeddings: default to empty.
        let branch_counts = match v.get("branch_counts") {
            Some(j) => j
                .as_object()?
                .iter()
                .map(|(k, arr)| {
                    let v: Option<Vec<(u64, u64)>> = arr
                        .as_array()?
                        .iter()
                        .map(|pair| {
                            let p = pair.as_array()?;
                            Some((p.first()?.as_u64()?, p.get(1)?.as_u64()?))
                        })
                        .collect();
                    Some((k.clone(), v?))
                })
                .collect::<Option<BTreeMap<_, _>>>()?,
            None => BTreeMap::new(),
        };
        Some(Profiles {
            block_counts,
            func_invocations,
            branch_counts,
        })
    }

    /// Embed into module metadata (what `noelle-meta-prof-embed` does).
    pub fn embed(&self, m: &mut Module) {
        m.metadata
            .insert(PROF_KEY.to_string(), self.to_json().to_string_compact());
    }

    /// Read profiles embedded by [`Profiles::embed`].
    pub fn from_module(m: &Module) -> Option<Profiles> {
        m.metadata
            .get(PROF_KEY)
            .and_then(|s| Json::parse(s))
            .as_ref()
            .and_then(Profiles::from_json)
    }

    /// Merge another profile run into this one.
    pub fn merge(&mut self, other: &Profiles) {
        for (fname, counts) in &other.block_counts {
            for (i, &c) in counts.iter().enumerate() {
                self.record_block(fname, BlockId(i as u32), c);
            }
        }
        for (fname, &n) in &other.func_invocations {
            *self.func_invocations.entry(fname.clone()).or_default() += n;
        }
        for (fname, counts) in &other.branch_counts {
            for (i, &(t, n)) in counts.iter().enumerate() {
                let b = BlockId(i as u32);
                let v = self.branch_counts.entry(fname.clone()).or_default();
                if v.len() <= b.index() {
                    v.resize(b.index() + 1, (0, 0));
                }
                v[b.index()].0 += t;
                v[b.index()].1 += n;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noelle_ir::builder::FunctionBuilder;
    use noelle_ir::cfg::Cfg;
    use noelle_ir::dom::DomTree;
    use noelle_ir::inst::{BinOp, IcmpPred};
    use noelle_ir::loops::LoopForest;
    use noelle_ir::types::Type;
    use noelle_ir::value::Value;

    fn loop_module() -> (Module, FuncId, LoopInfo) {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("k", vec![("n", Type::I64)], Type::Void);
        let entry = b.entry_block();
        let header = b.block("header");
        let body = b.block("body");
        let exit = b.block("exit");
        b.switch_to(entry);
        b.br(header);
        b.switch_to(header);
        let i = b.phi(Type::I64, vec![(entry, Value::const_i64(0))]);
        let c = b.icmp(IcmpPred::Slt, Type::I64, i, b.arg(0));
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let i2 = b.binop(BinOp::Add, Type::I64, i, Value::const_i64(1));
        b.br(header);
        b.add_incoming(i, body, i2);
        b.switch_to(exit);
        b.ret(None);
        let fid = m.add_function(b.finish());
        let f = m.func(fid);
        let cfg = Cfg::new(f);
        let dt = DomTree::new(f, &cfg);
        let forest = LoopForest::new(f, &cfg, &dt);
        let l = forest.loops()[0].clone();
        (m, fid, l)
    }

    /// Simulate a run of 10 iterations: entry 1, header 11, body 10, exit 1.
    fn ten_iter_profile() -> Profiles {
        let mut p = Profiles::default();
        p.record_invocation("k");
        p.record_block("k", BlockId(0), 1);
        p.record_block("k", BlockId(1), 11);
        p.record_block("k", BlockId(2), 10);
        p.record_block("k", BlockId(3), 1);
        p
    }

    #[test]
    fn loop_queries() {
        let (m, fid, l) = loop_module();
        let p = ten_iter_profile();
        assert_eq!(p.loop_invocations(&m, fid, &l), 1);
        assert_eq!(p.loop_total_iterations(&m, fid, &l), 10);
        assert!((p.loop_avg_iterations(&m, fid, &l) - 10.0).abs() < 1e-9);
        // Loop hotness dominates this tiny function.
        let h = p.loop_hotness(&m, fid, &l);
        assert!(h > 0.8, "hotness = {h}");
        assert!(p.function_hotness(&m, fid) > 0.99);
    }

    #[test]
    fn embed_round_trips_through_text() {
        let (mut m, _, _) = loop_module();
        let p = ten_iter_profile();
        p.embed(&mut m);
        let text = noelle_ir::printer::print_module(&m);
        let m2 = noelle_ir::parser::parse_module(&text).unwrap();
        assert_eq!(Profiles::from_module(&m2), Some(p));
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = ten_iter_profile();
        let b = ten_iter_profile();
        a.merge(&b);
        assert_eq!(a.block_count("k", BlockId(2)), 20);
        assert_eq!(a.invocations("k"), 2);
    }

    #[test]
    fn missing_data_defaults_to_zero() {
        let p = Profiles::default();
        let (m, fid, l) = loop_module();
        assert_eq!(p.block_count("nope", BlockId(0)), 0);
        assert_eq!(p.loop_total_iterations(&m, fid, &l), 0);
        assert_eq!(p.function_hotness(&m, fid), 0.0);
    }
}

#[cfg(test)]
mod branch_tests {
    use super::*;

    #[test]
    fn branch_bias_recorded_and_merged() {
        let mut p = Profiles::default();
        for taken in [true, true, true, false] {
            p.record_branch("f", BlockId(2), taken);
        }
        assert_eq!(p.branch_bias("f", BlockId(2)), Some(0.75));
        assert_eq!(p.branch_bias("f", BlockId(0)), None);
        assert_eq!(p.branch_bias("g", BlockId(2)), None);
        let mut q = Profiles::default();
        q.record_branch("f", BlockId(2), false);
        p.merge(&q);
        assert_eq!(p.branch_bias("f", BlockId(2)), Some(0.6));
    }

    #[test]
    fn branch_counts_survive_embedding() {
        let mut m = noelle_ir::Module::new("t");
        let mut p = Profiles::default();
        p.record_branch("f", BlockId(1), true);
        p.embed(&mut m);
        assert_eq!(Profiles::from_module(&m), Some(p));
    }
}
