//! The Forest (FR) abstraction.
//!
//! "Forest of trees with the capability to adjust when a node is deleted to
//! keep the connections between the parent and the children of the deleted
//! node." NOELLE uses it for the program-wide loop nesting forest (LICM
//! walks it innermost-to-outermost; HELIX/DSWP/DOALL use it with profiles to
//! pick the most profitable loops).

use noelle_ir::cfg::Cfg;
use noelle_ir::dom::DomTree;
use noelle_ir::loops::{LoopForest, LoopId, LoopInfo};
use noelle_ir::module::{FuncId, Module};
use std::collections::{BTreeMap, BTreeSet};
use std::hash::Hash;

/// A forest of trees over nodes of type `T` with delete-and-reconnect.
#[derive(Clone, Debug, Default)]
pub struct Forest<T: Ord + Copy + Eq + Hash> {
    parent: BTreeMap<T, Option<T>>,
    children: BTreeMap<T, BTreeSet<T>>,
}

impl<T: Ord + Copy + Eq + Hash> Forest<T> {
    /// An empty forest.
    pub fn new() -> Forest<T> {
        Forest {
            parent: BTreeMap::new(),
            children: BTreeMap::new(),
        }
    }

    /// Insert `node` under `parent` (`None` = tree root).
    pub fn insert(&mut self, node: T, parent: Option<T>) {
        self.parent.insert(node, parent);
        self.children.entry(node).or_default();
        if let Some(p) = parent {
            self.children.entry(p).or_default().insert(node);
        }
    }

    /// Delete `node`, reattaching its children to its parent — the defining
    /// capability of the abstraction.
    pub fn delete(&mut self, node: T) {
        let Some(parent) = self.parent.remove(&node) else {
            return;
        };
        let kids = self.children.remove(&node).unwrap_or_default();
        if let Some(p) = parent {
            if let Some(pc) = self.children.get_mut(&p) {
                pc.remove(&node);
                pc.extend(kids.iter().copied());
            }
        }
        for k in kids {
            self.parent.insert(k, parent);
        }
    }

    /// The parent of `node`, if any.
    pub fn parent(&self, node: T) -> Option<T> {
        self.parent.get(&node).copied().flatten()
    }

    /// The children of `node`.
    pub fn children(&self, node: T) -> impl Iterator<Item = T> + '_ {
        self.children.get(&node).into_iter().flatten().copied()
    }

    /// All roots (nodes without parents).
    pub fn roots(&self) -> impl Iterator<Item = T> + '_ {
        self.parent
            .iter()
            .filter(|(_, p)| p.is_none())
            .map(|(&n, _)| n)
    }

    /// All nodes.
    pub fn nodes(&self) -> impl Iterator<Item = T> + '_ {
        self.parent.keys().copied()
    }

    /// True if the forest tracks `node`.
    pub fn contains(&self, node: T) -> bool {
        self.parent.contains_key(&node)
    }

    /// Nodes in leaves-first order (every node appears before its parent) —
    /// the order LICM processes loops in.
    pub fn leaves_first(&self) -> Vec<T> {
        let mut out = Vec::new();
        let mut visited = BTreeSet::new();
        // Post-order from each root.
        let roots: Vec<T> = self.roots().collect();
        for root in roots {
            let mut stack = vec![(root, false)];
            while let Some((n, expanded)) = stack.pop() {
                if expanded {
                    out.push(n);
                    continue;
                }
                if !visited.insert(n) {
                    continue;
                }
                stack.push((n, true));
                for c in self.children(n) {
                    stack.push((c, false));
                }
            }
        }
        out
    }
}

/// A node of the program-wide loop forest.
pub type ProgramLoopRef = (FuncId, LoopId);

/// The program-wide loop forest plus the per-function [`LoopForest`]s it was
/// built from.
#[derive(Debug)]
pub struct ProgramLoopForest {
    /// Nesting forest over `(function, loop)` nodes.
    pub forest: Forest<ProgramLoopRef>,
    /// Per-function loop forests (for loop lookup).
    pub per_function: BTreeMap<FuncId, LoopForest>,
}

impl ProgramLoopForest {
    /// Detect all loops of all defined functions of `m`.
    pub fn build(m: &Module) -> ProgramLoopForest {
        let mut forest = Forest::new();
        let mut per_function = BTreeMap::new();
        for fid in m.func_ids() {
            let f = m.func(fid);
            if f.is_declaration() {
                continue;
            }
            let cfg = Cfg::new(f);
            let dt = DomTree::new(f, &cfg);
            let lf = LoopForest::new(f, &cfg, &dt);
            for l in lf.loops() {
                forest.insert((fid, l.id), l.parent.map(|p| (fid, p)));
            }
            per_function.insert(fid, lf);
        }
        ProgramLoopForest {
            forest,
            per_function,
        }
    }

    /// Resolve a forest node to its [`LoopInfo`].
    pub fn loop_info(&self, node: ProgramLoopRef) -> &LoopInfo {
        self.per_function[&node.0].loop_info(node.1)
    }

    /// All loops, innermost first (the LICM processing order).
    pub fn innermost_first(&self) -> Vec<ProgramLoopRef> {
        self.forest.leaves_first()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delete_reconnects_children() {
        let mut f: Forest<u32> = Forest::new();
        f.insert(1, None);
        f.insert(2, Some(1));
        f.insert(3, Some(2));
        f.insert(4, Some(2));
        f.delete(2);
        assert_eq!(f.parent(3), Some(1));
        assert_eq!(f.parent(4), Some(1));
        assert_eq!(f.children(1).collect::<Vec<_>>(), vec![3, 4]);
        assert!(!f.contains(2));
    }

    #[test]
    fn delete_root_promotes_children_to_roots() {
        let mut f: Forest<u32> = Forest::new();
        f.insert(1, None);
        f.insert(2, Some(1));
        f.insert(3, Some(1));
        f.delete(1);
        let roots: Vec<u32> = f.roots().collect();
        assert_eq!(roots, vec![2, 3]);
    }

    #[test]
    fn leaves_first_order() {
        let mut f: Forest<u32> = Forest::new();
        f.insert(1, None);
        f.insert(2, Some(1));
        f.insert(3, Some(2));
        let order = f.leaves_first();
        let pos = |x: u32| order.iter().position(|&y| y == x).unwrap();
        assert!(pos(3) < pos(2));
        assert!(pos(2) < pos(1));
    }

    #[test]
    fn program_forest_spans_functions() {
        use noelle_ir::builder::FunctionBuilder;
        use noelle_ir::inst::{BinOp, IcmpPred};
        use noelle_ir::types::Type;
        use noelle_ir::value::Value;
        let mut m = Module::new("t");
        for name in ["f", "g"] {
            let mut b = FunctionBuilder::new(name, vec![("n", Type::I64)], Type::Void);
            let entry = b.entry_block();
            let header = b.block("header");
            let body = b.block("body");
            let exit = b.block("exit");
            b.switch_to(entry);
            b.br(header);
            b.switch_to(header);
            let i = b.phi(Type::I64, vec![(entry, Value::const_i64(0))]);
            let c = b.icmp(IcmpPred::Slt, Type::I64, i, b.arg(0));
            b.cond_br(c, body, exit);
            b.switch_to(body);
            let i2 = b.binop(BinOp::Add, Type::I64, i, Value::const_i64(1));
            b.br(header);
            b.add_incoming(i, body, i2);
            b.switch_to(exit);
            b.ret(None);
            m.add_function(b.finish());
        }
        let plf = ProgramLoopForest::build(&m);
        assert_eq!(plf.forest.nodes().count(), 2);
        assert_eq!(plf.innermost_first().len(), 2);
        for node in plf.forest.nodes() {
            let li = plf.loop_info(node);
            assert!(li.is_while());
        }
    }
}
