//! The Loop Builder (LB) abstraction.
//!
//! "LB is similar to the IRBuilder abstraction offered by LLVM, but instead
//! of targeting instructions, LB targets loops": it creates, modifies, and
//! deletes loops. The operations here are the ones the ten custom tools
//! consume: pre-header normalization, invariant hoisting, and loop bypassing
//! (used by the parallelizers to replace a loop with a dispatch block).

use noelle_ir::inst::{Inst, InstId, Terminator};
use noelle_ir::loops::LoopInfo;
use noelle_ir::module::{BlockId, Function};
use noelle_ir::value::Value;

/// Errors raised by loop-builder operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoopBuilderError {
    /// The header's out-of-loop predecessors cannot be determined.
    MalformedLoop(String),
    /// The operation requires a single exit block.
    MultipleExits,
}

impl std::fmt::Display for LoopBuilderError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoopBuilderError::MalformedLoop(m) => write!(f, "malformed loop: {m}"),
            LoopBuilderError::MultipleExits => write!(f, "loop has multiple exit blocks"),
        }
    }
}

impl std::error::Error for LoopBuilderError {}

/// Out-of-loop predecessors of the loop header.
fn outside_preds(f: &Function, l: &LoopInfo) -> Vec<BlockId> {
    let mut out = Vec::new();
    for &b in f.block_order() {
        if l.contains(b) {
            continue;
        }
        if f.successors(b).contains(&l.header) {
            out.push(b);
        }
    }
    out
}

/// Return the loop's pre-header, creating one if necessary.
///
/// When created, the new block takes over every out-of-loop edge into the
/// header, and the header's phis are rewired (introducing merge phis in the
/// pre-header when the header had several outside predecessors).
///
/// # Errors
/// Fails if the header has no outside predecessor at all (unreachable loop).
pub fn ensure_preheader(f: &mut Function, l: &LoopInfo) -> Result<BlockId, LoopBuilderError> {
    if let Some(p) = l.preheader {
        return Ok(p);
    }
    let preds = outside_preds(f, l);
    if preds.is_empty() {
        return Err(LoopBuilderError::MalformedLoop(
            "header has no out-of-loop predecessor".into(),
        ));
    }
    // A single outside pred whose only successor is the header already acts
    // as a pre-header even if loop detection did not record it.
    if preds.len() == 1 && f.successors(preds[0]).len() == 1 {
        return Ok(preds[0]);
    }
    let pre = f.add_block("preheader");
    // Rewire header phis first (they still name the old predecessors).
    for phi_id in f.phis(l.header) {
        let incomings = match f.inst(phi_id) {
            Inst::Phi { incomings, ty } => (incomings.clone(), ty.clone()),
            _ => unreachable!(),
        };
        let (incomings, ty) = incomings;
        let (outside, inside): (Vec<_>, Vec<_>) =
            incomings.into_iter().partition(|(b, _)| !l.contains(*b));
        let merged: Value = if outside.len() == 1 {
            outside[0].1
        } else {
            // Merge differing values with a phi in the new pre-header.
            let merge = f.insert_inst(
                pre,
                0,
                Inst::Phi {
                    ty,
                    incomings: outside.clone(),
                },
            );
            Value::Inst(merge)
        };
        if let Inst::Phi { incomings, .. } = f.inst_mut(phi_id) {
            *incomings = inside;
            incomings.push((pre, merged));
        }
    }
    // Redirect the outside edges.
    for p in preds {
        if let Some(tid) = f.terminator_id(p) {
            if let Inst::Term(t) = f.inst_mut(tid) {
                t.replace_successor(l.header, pre);
            }
        }
    }
    let header = l.header;
    f.set_terminator(pre, Terminator::Br(header));
    Ok(pre)
}

/// Hoist instruction `inst` to the end of the loop's pre-header (before its
/// terminator). The caller is responsible for legality (invariance and
/// safety); the builder performs the mechanical move — this is the primitive
/// the LICM custom tool drives.
///
/// # Errors
/// Fails if a pre-header cannot be materialized.
pub fn hoist_to_preheader(
    f: &mut Function,
    l: &LoopInfo,
    inst: InstId,
) -> Result<(), LoopBuilderError> {
    let pre = ensure_preheader(f, l)?;
    let pos = f.block(pre).insts.len().saturating_sub(1);
    f.move_inst(inst, pre, pos);
    Ok(())
}

/// Redirect the pre-header of `l` to `replacement` instead of the loop
/// header, making the loop body unreachable. `replacement` must eventually
/// branch to the loop's (unique) exit block; the caller is responsible for
/// replacing uses of loop-defined values that escape. Exit-block phis with
/// incomings from exiting blocks are rewired to `replacement` using
/// `exit_phi_values` (phi instruction → new incoming value).
///
/// # Errors
/// Fails if the loop has several exit blocks or no pre-header can be made.
pub fn bypass_loop(
    f: &mut Function,
    l: &LoopInfo,
    replacement: BlockId,
    exit_phi_values: &[(InstId, Value)],
) -> Result<BlockId, LoopBuilderError> {
    let exits = l.exit_blocks();
    let &[exit] = exits.as_slice() else {
        return Err(LoopBuilderError::MultipleExits);
    };
    let pre = ensure_preheader(f, l)?;
    if let Some(tid) = f.terminator_id(pre) {
        if let Inst::Term(t) = f.inst_mut(tid) {
            t.replace_successor(l.header, replacement);
        }
    }
    // Rewire exit phis: incomings from in-loop blocks now come from the
    // replacement block.
    for phi_id in f.phis(exit) {
        let new_value = exit_phi_values
            .iter()
            .find(|(p, _)| *p == phi_id)
            .map(|(_, v)| *v);
        let contains: Vec<(BlockId, Value)> = match f.inst(phi_id) {
            Inst::Phi { incomings, .. } => incomings.clone(),
            _ => unreachable!(),
        };
        let rewired: Vec<(BlockId, Value)> = contains
            .into_iter()
            .filter_map(|(b, v)| {
                if l.contains(b) {
                    new_value.map(|nv| (replacement, nv))
                } else {
                    Some((b, v))
                }
            })
            .collect();
        if let Inst::Phi { incomings, .. } = f.inst_mut(phi_id) {
            *incomings = rewired;
        }
    }
    Ok(exit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use noelle_ir::builder::FunctionBuilder;
    use noelle_ir::cfg::Cfg;
    use noelle_ir::dom::DomTree;
    use noelle_ir::inst::{BinOp, IcmpPred};
    use noelle_ir::loops::LoopForest;
    use noelle_ir::module::Module;
    use noelle_ir::types::Type;

    fn loop_of(f: &Function) -> LoopInfo {
        let cfg = Cfg::new(f);
        let dt = DomTree::new(f, &cfg);
        LoopForest::new(f, &cfg, &dt).loops()[0].clone()
    }

    /// Loop whose header has TWO outside predecessors (no pre-header).
    fn no_preheader_loop() -> Module {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("f", vec![("c", Type::I1), ("n", Type::I64)], Type::I64);
        let entry = b.entry_block();
        let alt = b.block("alt");
        let header = b.block("header");
        let body = b.block("body");
        let exit = b.block("exit");
        b.switch_to(entry);
        b.cond_br(b.arg(0), alt, header);
        b.switch_to(alt);
        b.br(header);
        b.switch_to(header);
        let i = b.phi(
            Type::I64,
            vec![(entry, Value::const_i64(0)), (alt, Value::const_i64(5))],
        );
        let c = b.icmp(IcmpPred::Slt, Type::I64, i, b.arg(1));
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let i2 = b.binop(BinOp::Add, Type::I64, i, Value::const_i64(1));
        b.br(header);
        b.add_incoming(i, body, i2);
        b.switch_to(exit);
        b.ret(Some(i));
        m.add_function(b.finish());
        m
    }

    #[test]
    fn ensure_preheader_creates_merge_block() {
        let mut m = no_preheader_loop();
        let fid = m.func_ids().next().unwrap();
        let l = loop_of(m.func(fid));
        assert!(l.preheader.is_none());
        let pre = ensure_preheader(m.func_mut(fid), &l).unwrap();
        noelle_ir::verifier::verify_module(&m).expect("verifies after preheader creation");
        // Re-detect: the loop now has a pre-header and it is `pre`.
        let l2 = loop_of(m.func(fid));
        assert_eq!(l2.preheader, Some(pre));
        // The differing incoming constants were merged via a phi in `pre`.
        let f = m.func(fid);
        assert_eq!(f.phis(pre).len(), 1);
        assert_eq!(f.phis(l2.header).len(), 1);
    }

    #[test]
    fn ensure_preheader_is_idempotent_when_present() {
        let mut m = no_preheader_loop();
        let fid = m.func_ids().next().unwrap();
        let l = loop_of(m.func(fid));
        let pre1 = ensure_preheader(m.func_mut(fid), &l).unwrap();
        let l2 = loop_of(m.func(fid));
        let pre2 = ensure_preheader(m.func_mut(fid), &l2).unwrap();
        assert_eq!(pre1, pre2);
    }

    #[test]
    fn hoist_moves_instruction_to_preheader() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("f", vec![("a", Type::I64), ("n", Type::I64)], Type::I64);
        let entry = b.entry_block();
        let header = b.block("header");
        let body = b.block("body");
        let exit = b.block("exit");
        b.switch_to(entry);
        b.br(header);
        b.switch_to(header);
        let i = b.phi(Type::I64, vec![(entry, Value::const_i64(0))]);
        let c = b.icmp(IcmpPred::Slt, Type::I64, i, b.arg(1));
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let x = b.binop(BinOp::Mul, Type::I64, b.arg(0), Value::const_i64(3)); // invariant
        let i2 = b.binop(BinOp::Add, Type::I64, i, x);
        b.br(header);
        b.add_incoming(i, body, i2);
        b.switch_to(exit);
        b.ret(Some(i));
        let fid = m.add_function(b.finish());
        let l = loop_of(m.func(fid));
        hoist_to_preheader(m.func_mut(fid), &l, x.as_inst().unwrap()).unwrap();
        noelle_ir::verifier::verify_module(&m).expect("verifies after hoist");
        let f = m.func(fid);
        assert!(!l.contains(f.parent_block(x.as_inst().unwrap())));
    }

    #[test]
    fn bypass_loop_redirects_and_rewires_phis() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("f", vec![("n", Type::I64)], Type::I64);
        let entry = b.entry_block();
        let header = b.block("header");
        let body = b.block("body");
        let exit = b.block("exit");
        b.switch_to(entry);
        b.br(header);
        b.switch_to(header);
        let i = b.phi(Type::I64, vec![(entry, Value::const_i64(0))]);
        let c = b.icmp(IcmpPred::Slt, Type::I64, i, b.arg(0));
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let i2 = b.binop(BinOp::Add, Type::I64, i, Value::const_i64(1));
        b.br(header);
        b.add_incoming(i, body, i2);
        b.switch_to(exit);
        let out = b.phi(Type::I64, vec![(header, i)]);
        b.ret(Some(out));
        let fid = m.add_function(b.finish());
        let l = loop_of(m.func(fid));

        // Build the replacement block: compute 42 and jump to the exit.
        let f = m.func_mut(fid);
        let dispatch = f.add_block("dispatch");
        let v = f.append_inst(
            dispatch,
            Inst::Bin {
                op: BinOp::Add,
                ty: Type::I64,
                lhs: Value::const_i64(40),
                rhs: Value::const_i64(2),
            },
        );
        f.set_terminator(dispatch, Terminator::Br(l.exit_blocks()[0]));
        bypass_loop(f, &l, dispatch, &[(out.as_inst().unwrap(), Value::Inst(v))]).unwrap();
        noelle_ir::verifier::verify_module(&m).expect("verifies after bypass");
        // The loop is unreachable now.
        let f = m.func(fid);
        let cfg = Cfg::new(f);
        assert!(!cfg.is_reachable(l.header));
        assert!(cfg.is_reachable(dispatch));
    }

    #[test]
    fn bypass_rejects_multi_exit_loops() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("f", vec![("n", Type::I64), ("c", Type::I1)], Type::Void);
        let entry = b.entry_block();
        let header = b.block("header");
        let body = b.block("body");
        let exit1 = b.block("exit1");
        let exit2 = b.block("exit2");
        b.switch_to(entry);
        b.br(header);
        b.switch_to(header);
        let i = b.phi(Type::I64, vec![(entry, Value::const_i64(0))]);
        let c = b.icmp(IcmpPred::Slt, Type::I64, i, b.arg(0));
        b.cond_br(c, body, exit1);
        b.switch_to(body);
        let i2 = b.binop(BinOp::Add, Type::I64, i, Value::const_i64(1));
        b.cond_br(b.arg(1), header, exit2);
        b.add_incoming(i, body, i2);
        b.switch_to(exit1);
        b.ret(None);
        b.switch_to(exit2);
        b.ret(None);
        let fid = m.add_function(b.finish());
        let l = loop_of(m.func(fid));
        let f = m.func_mut(fid);
        let dispatch = f.add_block("dispatch");
        f.set_terminator(dispatch, Terminator::Unreachable);
        assert_eq!(
            bypass_loop(f, &l, dispatch, &[]),
            Err(LoopBuilderError::MultipleExits)
        );
    }
}
