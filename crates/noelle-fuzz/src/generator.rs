//! Deterministic, seed-driven random IR program generator.
//!
//! Every module this emits is verifier-clean and trap-free by construction:
//! array indices are bounded by the loop trip count or masked, divisors are
//! positive constants, and integer arithmetic wraps in the interpreter. The
//! shapes mix the workload corpus's idioms — counted while loops, do-while
//! loops, reductions, loop-carried recurrences, stencils, histograms
//! (GEP/load/store aliasing), scratch buffers, nested loops, and indirect
//! calls — so the differential oracle exercises the same loop structures the
//! transforms were written for, plus the hostile corners between them.

use noelle_ir::builder::FunctionBuilder;
use noelle_ir::inst::{BinOp, CastOp, IcmpPred};
use noelle_ir::module::{FuncId, Global, GlobalInit, Module};
use noelle_ir::types::{FuncType, Type};
use noelle_ir::value::Value;
use noelle_workloads::kernels::{counted_loop, counted_loop_from, kernel_params};
use std::sync::Arc;

/// SplitMix64: tiny, fast, and deterministic across platforms — the whole
/// campaign's reproducibility hangs off this.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeded generator.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)` (n = 0 behaves as n = 1).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }

    /// Uniform value in `[lo, hi]`.
    pub fn range(&mut self, lo: i64, hi: i64) -> i64 {
        lo + self.below((hi - lo + 1).max(1) as u64) as i64
    }

    /// True with probability `pct`/100.
    pub fn chance(&mut self, pct: u64) -> bool {
        self.below(100) < pct
    }

    /// Pick one element.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len() as u64) as usize]
    }
}

/// Generation parameters.
#[derive(Clone, Debug)]
pub struct GenConfig {
    /// Maximum kernels per module (at least one is always emitted).
    pub max_kernels: usize,
    /// Stop adding kernels once the module holds this many instructions.
    pub size_budget: usize,
    /// Smallest array length / trip count (must be ≥ 8 so `& 7` masks are
    /// always in bounds).
    pub min_n: i64,
    /// Largest array length / trip count.
    pub max_n: i64,
}

impl Default for GenConfig {
    fn default() -> GenConfig {
        GenConfig {
            max_kernels: 3,
            size_budget: 160,
            min_n: 8,
            max_n: 40,
        }
    }
}

/// The loop shapes the generator mixes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Shape {
    Map,
    Reduce,
    Recurrence,
    Stencil,
    Hist,
    Scratch,
    Nested,
    Indirect,
    DoWhile,
    FloatMix,
}

const SHAPES: [Shape; 10] = [
    Shape::Map,
    Shape::Reduce,
    Shape::Recurrence,
    Shape::Stencil,
    Shape::Hist,
    Shape::Scratch,
    Shape::Nested,
    Shape::Indirect,
    Shape::DoWhile,
    Shape::FloatMix,
];

/// Safe divisors for Div/Rem (never zero, never -1).
const DIVISORS: [i64; 4] = [3, 5, 7, 11];

/// Generate the module for `seed`. Same seed + config → byte-identical
/// module, always.
pub fn generate(seed: u64, cfg: &GenConfig) -> Module {
    let mut rng = SplitMix64::new(seed);
    let mut m = Module::new(format!("fuzz_{seed}"));
    let print_i64 = m.get_or_declare("print_i64", vec![Type::I64], Type::Void);

    let want = 1 + rng.below(cfg.max_kernels.max(1) as u64) as usize;
    let mut kernels: Vec<FuncId> = Vec::new();
    for k in 0..want {
        if m.total_insts() > cfg.size_budget {
            break;
        }
        let shape = *rng.pick(&SHAPES);
        kernels.push(emit_kernel(&mut m, &mut rng, k, shape, print_i64));
    }
    emit_main(&mut m, &mut rng, &kernels, cfg, print_i64);
    m
}

/// A pre-drawn integer op (kept trap-free: divisions only ever see the safe
/// constant divisors).
#[derive(Clone, Copy, Debug)]
enum OpChoice {
    AddOther,
    SubOther,
    XorOther,
    MulC(i64),
    AndC(i64),
    OrC(i64),
    DivC(i64),
    RemC(i64),
}

fn draw_op(rng: &mut SplitMix64) -> OpChoice {
    match rng.below(8) {
        0 => OpChoice::AddOther,
        1 => OpChoice::SubOther,
        2 => OpChoice::MulC(rng.range(2, 9)),
        3 => OpChoice::XorOther,
        4 => OpChoice::AndC(rng.range(1, 0xFFFF)),
        5 => OpChoice::OrC(rng.range(0, 255)),
        6 => OpChoice::DivC(*rng.pick(&DIVISORS)),
        _ => OpChoice::RemC(*rng.pick(&DIVISORS)),
    }
}

fn apply_op(b: &mut FunctionBuilder, choice: OpChoice, x: Value, other: Value) -> Value {
    match choice {
        OpChoice::AddOther => b.binop(BinOp::Add, Type::I64, x, other),
        OpChoice::SubOther => b.binop(BinOp::Sub, Type::I64, x, other),
        OpChoice::XorOther => b.binop(BinOp::Xor, Type::I64, x, other),
        OpChoice::MulC(c) => b.binop(BinOp::Mul, Type::I64, x, Value::const_i64(c)),
        OpChoice::AndC(c) => b.binop(BinOp::And, Type::I64, x, Value::const_i64(c)),
        OpChoice::OrC(c) => b.binop(BinOp::Or, Type::I64, x, Value::const_i64(c)),
        OpChoice::DivC(c) => b.binop(BinOp::Div, Type::I64, x, Value::const_i64(c)),
        OpChoice::RemC(c) => b.binop(BinOp::Rem, Type::I64, x, Value::const_i64(c)),
    }
}

fn emit_kernel(
    m: &mut Module,
    rng: &mut SplitMix64,
    k: usize,
    shape: Shape,
    print_i64: FuncId,
) -> FuncId {
    match shape {
        Shape::Map => emit_map(m, rng, k, print_i64),
        Shape::Reduce => emit_reduce(m, rng, k),
        Shape::Recurrence => emit_recurrence(m, rng, k),
        Shape::Stencil => emit_stencil(m, rng, k),
        Shape::Hist => emit_hist(m, rng, k),
        Shape::Scratch => emit_scratch(m, rng, k),
        Shape::Nested => emit_nested(m, rng, k),
        Shape::Indirect => emit_indirect(m, rng, k),
        Shape::DoWhile => emit_dowhile(m, rng, k),
        Shape::FloatMix => emit_floatmix(m, rng, k),
    }
}

/// `a[i] = f(a[i])` map with an invariant chain (LICM fodder) and an Add
/// reduction of the written values.
fn emit_map(m: &mut Module, rng: &mut SplitMix64, k: usize, print_i64: FuncId) -> FuncId {
    let mut b = FunctionBuilder::new(&format!("k{k}_map"), kernel_params(), Type::I64);
    let do_print = rng.chance(10);
    let n_ops = 1 + rng.below(3);
    let inv_c = rng.range(2, 13);
    let choices: Vec<OpChoice> = (0..n_ops).map(|_| draw_op(rng)).collect();
    counted_loop(&mut b, |b, i| {
        let inv1 = b.binop(BinOp::Mul, Type::I64, b.arg(2), Value::const_i64(inv_c));
        let inv2 = b.binop(BinOp::Add, Type::I64, inv1, Value::const_i64(3));
        let p = b.index_ptr(Type::I64, b.arg(0), i);
        let v = b.load(Type::I64, p);
        let mut x = v;
        for &choice in &choices {
            x = apply_op(b, choice, x, inv2);
        }
        b.store(Type::I64, x, p);
        if do_print {
            b.call(print_i64, vec![x], Type::Void);
        }
        x
    });
    m.add_function(b.finish())
}

/// Reduction with a randomly chosen operator (Add / Xor / SMin / SMax).
fn emit_reduce(m: &mut Module, rng: &mut SplitMix64, k: usize) -> FuncId {
    let (op, init) = *rng.pick(&[
        (BinOp::Add, 0i64),
        (BinOp::Xor, 0),
        (BinOp::SMin, i64::MAX),
        (BinOp::SMax, i64::MIN),
    ]);
    let mut b = FunctionBuilder::new(&format!("k{k}_reduce"), kernel_params(), Type::I64);
    let entry = b.entry_block();
    let header = b.block("header");
    let body = b.block("body");
    let exit = b.block("exit");
    b.switch_to(entry);
    b.br(header);
    b.switch_to(header);
    let i = b.phi(Type::I64, vec![(entry, Value::const_i64(0))]);
    let acc = b.phi(Type::I64, vec![(entry, Value::const_i64(init))]);
    let c = b.icmp(IcmpPred::Slt, Type::I64, i, b.arg(2));
    b.cond_br(c, body, exit);
    b.switch_to(body);
    let p = b.index_ptr(Type::I64, b.arg(0), i);
    let v = b.load(Type::I64, p);
    let acc2 = b.binop(op, Type::I64, acc, v);
    let i2 = b.binop(BinOp::Add, Type::I64, i, Value::const_i64(1));
    b.br(header);
    b.add_incoming(i, body, i2);
    b.add_incoming(acc, body, acc2);
    b.switch_to(exit);
    b.ret(Some(acc));
    m.add_function(b.finish())
}

/// Register loop-carried recurrence `acc = acc * c1 + a[i]`, optionally
/// written through to `b[i]` (a memory flow the PDG must carry).
fn emit_recurrence(m: &mut Module, rng: &mut SplitMix64, k: usize) -> FuncId {
    let c1 = rng.range(2, 7);
    let store_through = rng.chance(50);
    let mut b = FunctionBuilder::new(&format!("k{k}_rec"), kernel_params(), Type::I64);
    let entry = b.entry_block();
    let header = b.block("header");
    let body = b.block("body");
    let exit = b.block("exit");
    b.switch_to(entry);
    b.br(header);
    b.switch_to(header);
    let i = b.phi(Type::I64, vec![(entry, Value::const_i64(0))]);
    let acc = b.phi(Type::I64, vec![(entry, Value::const_i64(1))]);
    let c = b.icmp(IcmpPred::Slt, Type::I64, i, b.arg(2));
    b.cond_br(c, body, exit);
    b.switch_to(body);
    let p = b.index_ptr(Type::I64, b.arg(0), i);
    let v = b.load(Type::I64, p);
    let scaled = b.binop(BinOp::Mul, Type::I64, acc, Value::const_i64(c1));
    let acc2 = b.binop(BinOp::Add, Type::I64, scaled, v);
    if store_through {
        let q = b.index_ptr(Type::I64, b.arg(1), i);
        b.store(Type::I64, acc2, q);
    }
    let i2 = b.binop(BinOp::Add, Type::I64, i, Value::const_i64(1));
    b.br(header);
    b.add_incoming(i, body, i2);
    b.add_incoming(acc, body, acc2);
    b.switch_to(exit);
    let masked = b.binop(BinOp::And, Type::I64, acc, Value::const_i64(0xFFFF_FFFF));
    b.ret(Some(masked));
    m.add_function(b.finish())
}

/// 3-point stencil `b[i] = a[i-1] + a[i] + a[i+1]` for `i` in `[1, n-1)`,
/// returning the sum (cross-array flow the alias analysis must separate).
fn emit_stencil(m: &mut Module, _rng: &mut SplitMix64, k: usize) -> FuncId {
    let mut b = FunctionBuilder::new(&format!("k{k}_stencil"), kernel_params(), Type::I64);
    let entry = b.entry_block();
    let header = b.block("header");
    let body = b.block("body");
    let exit = b.block("exit");
    b.switch_to(entry);
    let limit = b.binop(BinOp::Sub, Type::I64, b.arg(2), Value::const_i64(1));
    b.br(header);
    b.switch_to(header);
    let i = b.phi(Type::I64, vec![(entry, Value::const_i64(1))]);
    let acc = b.phi(Type::I64, vec![(entry, Value::const_i64(0))]);
    let c = b.icmp(IcmpPred::Slt, Type::I64, i, limit);
    b.cond_br(c, body, exit);
    b.switch_to(body);
    let im1 = b.binop(BinOp::Sub, Type::I64, i, Value::const_i64(1));
    let ip1 = b.binop(BinOp::Add, Type::I64, i, Value::const_i64(1));
    let p0 = b.index_ptr(Type::I64, b.arg(0), im1);
    let p1 = b.index_ptr(Type::I64, b.arg(0), i);
    let p2 = b.index_ptr(Type::I64, b.arg(0), ip1);
    let v0 = b.load(Type::I64, p0);
    let v1 = b.load(Type::I64, p1);
    let v2 = b.load(Type::I64, p2);
    let s01 = b.binop(BinOp::Add, Type::I64, v0, v1);
    let s = b.binop(BinOp::Add, Type::I64, s01, v2);
    let q = b.index_ptr(Type::I64, b.arg(1), i);
    b.store(Type::I64, s, q);
    let acc2 = b.binop(BinOp::Add, Type::I64, acc, s);
    let i2 = b.binop(BinOp::Add, Type::I64, i, Value::const_i64(1));
    b.br(header);
    b.add_incoming(i, body, i2);
    b.add_incoming(acc, body, acc2);
    b.switch_to(exit);
    b.ret(Some(acc));
    m.add_function(b.finish())
}

/// Histogram over 8 bins: `bins[a[i] & 7] += 1`, bins either a local scratch
/// buffer or a zero-initialized global array (GEP aliasing with loop-carried
/// memory dependences — DOALL must refuse, and the PDG must cover the
/// observed store→load chains).
fn emit_hist(m: &mut Module, rng: &mut SplitMix64, k: usize) -> FuncId {
    let use_global = rng.chance(50);
    let gid = use_global.then(|| {
        m.add_global(Global {
            name: format!("bins{k}"),
            ty: Type::I64.array_of(8),
            init: GlobalInit::Zero,
            is_const: false,
        })
    });
    let mut b = FunctionBuilder::new(&format!("k{k}_hist"), kernel_params(), Type::I64);
    let entry = b.entry_block();
    b.switch_to(entry);
    let bins = match gid {
        Some(g) => b.gep(
            Type::I64.array_of(8),
            Value::Global(g),
            vec![Value::const_i64(0), Value::const_i64(0)],
        ),
        None => b.alloca_n(Type::I64, Value::const_i64(8)),
    };
    // Zero the bins so locals and (re-run) globals behave identically.
    let zheader = b.block("zero_header");
    let zbody = b.block("zero_body");
    let count = b.block("count");
    b.br(zheader);
    b.switch_to(zheader);
    let zi = b.phi(Type::I64, vec![(entry, Value::const_i64(0))]);
    let zc = b.icmp(IcmpPred::Slt, Type::I64, zi, Value::const_i64(8));
    b.cond_br(zc, zbody, count);
    b.switch_to(zbody);
    let zp = b.index_ptr(Type::I64, bins, zi);
    b.store(Type::I64, Value::const_i64(0), zp);
    let zi2 = b.binop(BinOp::Add, Type::I64, zi, Value::const_i64(1));
    b.br(zheader);
    b.add_incoming(zi, zbody, zi2);
    // Count loop.
    let cheader = b.block("count_header");
    let cbody = b.block("count_body");
    let sum = b.block("sum");
    b.switch_to(count);
    b.br(cheader);
    b.switch_to(cheader);
    let i = b.phi(Type::I64, vec![(count, Value::const_i64(0))]);
    let c = b.icmp(IcmpPred::Slt, Type::I64, i, b.arg(2));
    b.cond_br(c, cbody, sum);
    b.switch_to(cbody);
    let p = b.index_ptr(Type::I64, b.arg(0), i);
    let v = b.load(Type::I64, p);
    let bin = b.binop(BinOp::And, Type::I64, v, Value::const_i64(7));
    let bp = b.index_ptr(Type::I64, bins, bin);
    let old = b.load(Type::I64, bp);
    let new = b.binop(BinOp::Add, Type::I64, old, Value::const_i64(1));
    b.store(Type::I64, new, bp);
    let i2 = b.binop(BinOp::Add, Type::I64, i, Value::const_i64(1));
    b.br(cheader);
    b.add_incoming(i, cbody, i2);
    // Weighted-sum loop over the bins.
    let sheader = b.block("sum_header");
    let sbody = b.block("sum_body");
    let exit = b.block("exit");
    b.switch_to(sum);
    b.br(sheader);
    b.switch_to(sheader);
    let si = b.phi(Type::I64, vec![(sum, Value::const_i64(0))]);
    let sacc = b.phi(Type::I64, vec![(sum, Value::const_i64(0))]);
    let sc = b.icmp(IcmpPred::Slt, Type::I64, si, Value::const_i64(8));
    b.cond_br(sc, sbody, exit);
    b.switch_to(sbody);
    let sp = b.index_ptr(Type::I64, bins, si);
    let sv = b.load(Type::I64, sp);
    let w = b.binop(BinOp::Add, Type::I64, si, Value::const_i64(1));
    let wv = b.binop(BinOp::Mul, Type::I64, sv, w);
    let sacc2 = b.binop(BinOp::Add, Type::I64, sacc, wv);
    let si2 = b.binop(BinOp::Add, Type::I64, si, Value::const_i64(1));
    b.br(sheader);
    b.add_incoming(si, sbody, si2);
    b.add_incoming(sacc, sbody, sacc2);
    b.switch_to(exit);
    b.ret(Some(sacc));
    m.add_function(b.finish())
}

/// Scratch-buffer round trip: write `f(a[i])` into `tmp[i & 7]`, read it
/// straight back (an intra-iteration RAW through memory).
fn emit_scratch(m: &mut Module, rng: &mut SplitMix64, k: usize) -> FuncId {
    let mul = rng.range(2, 9);
    let mut b = FunctionBuilder::new(&format!("k{k}_scratch"), kernel_params(), Type::I64);
    let entry = b.entry_block();
    b.switch_to(entry);
    let tmp = b.alloca_n(Type::I64, Value::const_i64(8));
    counted_loop_from(&mut b, entry, |b, i| {
        let p = b.index_ptr(Type::I64, b.arg(0), i);
        let v = b.load(Type::I64, p);
        let x = b.binop(BinOp::Mul, Type::I64, v, Value::const_i64(mul));
        let slot = b.binop(BinOp::And, Type::I64, i, Value::const_i64(7));
        let tp = b.index_ptr(Type::I64, tmp, slot);
        b.store(Type::I64, x, tp);
        let back = b.load(Type::I64, tp);
        b.binop(BinOp::Xor, Type::I64, back, i)
    });
    m.add_function(b.finish())
}

/// Nested loops: the outer runs over `n`, the inner a fixed 4-trip register
/// chain seeded by `a[i]`.
fn emit_nested(m: &mut Module, rng: &mut SplitMix64, k: usize) -> FuncId {
    let c1 = rng.range(1, 7);
    let mut b = FunctionBuilder::new(&format!("k{k}_nested"), kernel_params(), Type::I64);
    let entry = b.entry_block();
    let oheader = b.block("outer_header");
    let obody = b.block("outer_body");
    let iheader = b.block("inner_header");
    let ibody = b.block("inner_body");
    let olatch = b.block("outer_latch");
    let exit = b.block("exit");
    b.switch_to(entry);
    b.br(oheader);
    b.switch_to(oheader);
    let i = b.phi(Type::I64, vec![(entry, Value::const_i64(0))]);
    let acc = b.phi(Type::I64, vec![(entry, Value::const_i64(0))]);
    let c = b.icmp(IcmpPred::Slt, Type::I64, i, b.arg(2));
    b.cond_br(c, obody, exit);
    b.switch_to(obody);
    let p = b.index_ptr(Type::I64, b.arg(0), i);
    let v = b.load(Type::I64, p);
    b.br(iheader);
    b.switch_to(iheader);
    let j = b.phi(Type::I64, vec![(obody, Value::const_i64(0))]);
    let x = b.phi(Type::I64, vec![(obody, v)]);
    let jc = b.icmp(IcmpPred::Slt, Type::I64, j, Value::const_i64(4));
    b.cond_br(jc, ibody, olatch);
    b.switch_to(ibody);
    let x1 = b.binop(BinOp::Mul, Type::I64, x, Value::const_i64(3));
    let x2 = b.binop(BinOp::Add, Type::I64, x1, Value::const_i64(c1));
    let j2 = b.binop(BinOp::Add, Type::I64, j, Value::const_i64(1));
    b.br(iheader);
    b.add_incoming(j, ibody, j2);
    b.add_incoming(x, ibody, x2);
    b.switch_to(olatch);
    let xm = b.binop(BinOp::And, Type::I64, x, Value::const_i64(0xFFFF));
    let acc2 = b.binop(BinOp::Add, Type::I64, acc, xm);
    let i2 = b.binop(BinOp::Add, Type::I64, i, Value::const_i64(1));
    b.br(oheader);
    b.add_incoming(i, olatch, i2);
    b.add_incoming(acc, olatch, acc2);
    b.switch_to(exit);
    b.ret(Some(acc));
    m.add_function(b.finish())
}

/// Indirect calls: two leaf functions with different op chains, selected per
/// element by parity through a function-pointer `select`.
fn emit_indirect(m: &mut Module, rng: &mut SplitMix64, k: usize) -> FuncId {
    let leaf_ty = Type::Func(Arc::new(FuncType {
        params: vec![Type::I64],
        ret: Type::I64,
    }))
    .ptr_to();
    let ca = rng.range(2, 9);
    let cb = rng.range(1, 255);
    let mut la = FunctionBuilder::new(&format!("k{k}_leaf_a"), vec![("x", Type::I64)], Type::I64);
    let xa = la.binop(BinOp::Mul, Type::I64, la.arg(0), Value::const_i64(ca));
    let xa2 = la.binop(BinOp::Add, Type::I64, xa, Value::const_i64(1));
    la.ret(Some(xa2));
    let leaf_a = m.add_function(la.finish());
    let mut lb = FunctionBuilder::new(&format!("k{k}_leaf_b"), vec![("x", Type::I64)], Type::I64);
    let xb = lb.binop(BinOp::Xor, Type::I64, lb.arg(0), Value::const_i64(cb));
    lb.ret(Some(xb));
    let leaf_b = m.add_function(lb.finish());

    let mut b = FunctionBuilder::new(&format!("k{k}_indirect"), kernel_params(), Type::I64);
    counted_loop(&mut b, |b, i| {
        let p = b.index_ptr(Type::I64, b.arg(0), i);
        let v = b.load(Type::I64, p);
        let parity = b.binop(BinOp::And, Type::I64, v, Value::const_i64(1));
        let parity = b.icmp(IcmpPred::Ne, Type::I64, parity, Value::const_i64(0));
        let fp = b.select(
            leaf_ty.clone(),
            parity,
            Value::Func(leaf_a),
            Value::Func(leaf_b),
        );
        let r = b.call_indirect(fp, vec![v], Type::I64);
        b.binop(BinOp::And, Type::I64, r, Value::const_i64(0xFFFF))
    });
    m.add_function(b.finish())
}

/// Bottom-tested do-while loop (trip count ≥ 1 is guaranteed by min_n ≥ 8).
fn emit_dowhile(m: &mut Module, rng: &mut SplitMix64, k: usize) -> FuncId {
    let c1 = rng.range(1, 9);
    let mut b = FunctionBuilder::new(&format!("k{k}_dowhile"), kernel_params(), Type::I64);
    let entry = b.entry_block();
    let body = b.block("body");
    let exit = b.block("exit");
    b.switch_to(entry);
    b.br(body);
    b.switch_to(body);
    let i = b.phi(Type::I64, vec![(entry, Value::const_i64(0))]);
    let acc = b.phi(Type::I64, vec![(entry, Value::const_i64(0))]);
    let p = b.index_ptr(Type::I64, b.arg(0), i);
    let v = b.load(Type::I64, p);
    let vc = b.binop(BinOp::Add, Type::I64, v, Value::const_i64(c1));
    let acc2 = b.binop(BinOp::Add, Type::I64, acc, vc);
    let i2 = b.binop(BinOp::Add, Type::I64, i, Value::const_i64(1));
    let c = b.icmp(IcmpPred::Slt, Type::I64, i2, b.arg(2));
    b.cond_br(c, body, exit);
    b.add_incoming(i, body, i2);
    b.add_incoming(acc, body, acc2);
    b.switch_to(exit);
    b.ret(Some(acc2));
    m.add_function(b.finish())
}

/// Float pipeline: int→float, FMul/FAdd chain, division by a constant, and
/// back — bit-for-bit output comparison catches any reassociation.
fn emit_floatmix(m: &mut Module, rng: &mut SplitMix64, k: usize) -> FuncId {
    let use_sqrt = rng.chance(50);
    let scale = rng.range(2, 5) as f64 / 2.0;
    let sqrt = use_sqrt.then(|| m.get_or_declare("sqrt", vec![Type::F64], Type::F64));
    let mut b = FunctionBuilder::new(&format!("k{k}_float"), kernel_params(), Type::I64);
    counted_loop(&mut b, |b, i| {
        let p = b.index_ptr(Type::I64, b.arg(0), i);
        let v = b.load(Type::I64, p);
        let fv = b.cast(CastOp::SiToFp, Type::I64, Type::F64, v);
        let fx = b.binop(BinOp::FMul, Type::F64, fv, Value::const_f64(scale));
        let fy = b.binop(BinOp::FAdd, Type::F64, fx, Value::const_f64(0.25));
        let fz = b.binop(BinOp::FDiv, Type::F64, fy, Value::const_f64(2.0));
        let out = match sqrt {
            Some(s) => {
                let sq = b.binop(BinOp::FMul, Type::F64, fz, fz);
                let sq1 = b.binop(BinOp::FAdd, Type::F64, sq, Value::const_f64(1.0));
                b.call(s, vec![sq1], Type::F64)
            }
            None => fz,
        };
        let r = b.cast(CastOp::FpToSi, Type::F64, Type::I64, out);
        b.binop(BinOp::And, Type::I64, r, Value::const_i64(0xFFFF))
    });
    m.add_function(b.finish())
}

/// `main`: fill the shared arrays with seed-derived constants, run every
/// kernel, print each result, and return a masked checksum.
fn emit_main(
    m: &mut Module,
    rng: &mut SplitMix64,
    kernels: &[FuncId],
    cfg: &GenConfig,
    print_i64: FuncId,
) {
    let n = rng.range(cfg.min_n, cfg.max_n);
    let c1 = rng.range(1, 97);
    let c2 = rng.range(0, 1023);
    let c3 = rng.range(1, 511);
    let mut b = FunctionBuilder::new("main", vec![], Type::I64);
    let entry = b.entry_block();
    let fill = b.block("fill");
    let run = b.block("run");
    b.switch_to(entry);
    let a = b.alloca_n(Type::I64, Value::const_i64(n));
    let arr_b = b.alloca_n(Type::I64, Value::const_i64(n));
    b.br(fill);
    b.switch_to(fill);
    let i = b.phi(Type::I64, vec![(entry, Value::const_i64(0))]);
    let va = b.binop(BinOp::Mul, Type::I64, i, Value::const_i64(c1));
    let va2 = b.binop(BinOp::Add, Type::I64, va, Value::const_i64(c2));
    let va3 = b.binop(BinOp::And, Type::I64, va2, Value::const_i64(0x3FF));
    let pa = b.index_ptr(Type::I64, a, i);
    b.store(Type::I64, va3, pa);
    let vb = b.binop(BinOp::Xor, Type::I64, i, Value::const_i64(c3));
    let vb2 = b.binop(BinOp::And, Type::I64, vb, Value::const_i64(0x3FF));
    let pb = b.index_ptr(Type::I64, arr_b, i);
    b.store(Type::I64, vb2, pb);
    let i2 = b.binop(BinOp::Add, Type::I64, i, Value::const_i64(1));
    let c = b.icmp(IcmpPred::Slt, Type::I64, i2, Value::const_i64(n));
    b.cond_br(c, fill, run);
    b.add_incoming(i, fill, i2);
    b.switch_to(run);
    let mut checksum = Value::const_i64(0);
    for &kf in kernels {
        let r = b.call(kf, vec![a, arr_b, Value::const_i64(n)], Type::I64);
        b.call(print_i64, vec![r], Type::Void);
        let mixed = b.binop(BinOp::Mul, Type::I64, checksum, Value::const_i64(31));
        checksum = b.binop(BinOp::Add, Type::I64, mixed, r);
    }
    let out = b.binop(
        BinOp::And,
        Type::I64,
        checksum,
        Value::const_i64(0x7FFF_FFFF),
    );
    b.ret(Some(out));
    m.add_function(b.finish());
}

#[cfg(test)]
mod tests {
    use super::*;
    use noelle_ir::printer::print_module;
    use noelle_ir::verifier::verify_module;
    use noelle_runtime::machine::{run_module, RunConfig};

    #[test]
    fn prng_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn generated_modules_verify_and_run() {
        let cfg = GenConfig::default();
        for seed in 0..60 {
            let m = generate(seed, &cfg);
            verify_module(&m).unwrap_or_else(|e| panic!("seed {seed} fails verify: {e:?}"));
            let r = run_module(&m, "main", &[], &RunConfig::default())
                .unwrap_or_else(|e| panic!("seed {seed} fails to run: {e}"));
            assert!(r.ret_i64().is_some(), "seed {seed} returned no integer");
        }
    }

    #[test]
    fn generation_is_byte_deterministic() {
        let cfg = GenConfig::default();
        for seed in [0u64, 7, 123, 9999] {
            let a = print_module(&generate(seed, &cfg));
            let b = print_module(&generate(seed, &cfg));
            assert_eq!(a, b, "seed {seed} not deterministic");
        }
    }

    #[test]
    fn seeds_cover_multiple_shapes() {
        let cfg = GenConfig::default();
        let mut names = std::collections::BTreeSet::new();
        for seed in 0..80 {
            let m = generate(seed, &cfg);
            for f in m.functions() {
                if let Some(tag) = f.name.split('_').nth(1) {
                    names.insert(tag.to_string());
                }
            }
        }
        assert!(
            names.len() >= 8,
            "expected shape diversity, got only {names:?}"
        );
    }

    #[test]
    fn size_budget_bounds_module_growth() {
        let cfg = GenConfig {
            max_kernels: 8,
            size_budget: 60,
            ..GenConfig::default()
        };
        for seed in 0..20 {
            let m = generate(seed, &cfg);
            // One kernel may exceed the budget before the check fires; the
            // bound is budget + one kernel + main, comfortably under 4x.
            assert!(
                m.total_insts() < 4 * cfg.size_budget,
                "seed {seed}: {} insts",
                m.total_insts()
            );
        }
    }
}
