//! Campaign driver: corpus replay, fresh-seed fuzzing, failure
//! persistence, and minimization.
//!
//! [`run_campaign`] is the engine behind the `noelle-fuzz` binary in
//! `noelle-tools`:
//!
//! 1. **Replay** every `*.nir` module under the corpus directory (sorted by
//!    file name) through the oracle. A replay that fails is a violation —
//!    either a regression or an unfixed known bug; a replay that skips
//!    (e.g. a baseline runtime error such as the checked-in type-confusion
//!    repro) is fine, since skipping proves the runtime reported the error
//!    instead of aborting.
//! 2. **Fuzz** fresh seeds `seed_start .. seed_start + seeds`, stopping
//!    early if the optional wall-clock budget runs out.
//! 3. **Persist + minimize** each failing seed: the original module is
//!    written to `seed-<n>-<tool>.nir`, then shrunk with
//!    [`crate::reducer::reduce`] under a [`crate::oracle::fails_like`]
//!    predicate and written to `seed-<n>-<tool>.min.nir`.
//!
//! The [`CampaignSummary::render`] output contains no timing data, so two
//! runs with the same flags over the same corpus are byte-for-byte
//! identical — CI asserts on this.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

use noelle_ir::parser::parse_module;
use noelle_ir::printer::print_module;

use crate::generator::{generate, GenConfig};
use crate::oracle::{check_module, fails_like, Failure, FuzzTool, OracleConfig, Outcome};
use crate::reducer::{reduce, DEFAULT_MAX_ROUNDS};

/// Step budget used while *reducing* a failure. Mutated candidates can
/// loop forever (e.g. a zeroed loop increment); a tight budget rejects
/// them quickly without affecting which candidates are accepted.
const REDUCE_MAX_STEPS: u64 = 200_000;

/// Configuration for one fuzzing campaign.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Number of fresh seeds to run.
    pub seeds: u64,
    /// First seed (campaigns are resumable / shardable by seed range).
    pub seed_start: u64,
    /// Optional wall-clock budget; the seed loop stops once exceeded.
    pub time_budget_ms: Option<u64>,
    /// Enable the dynamic PDG-soundness oracle on baseline runs.
    pub trace_deps: bool,
    /// Run the static NL0001 race detector over every tool's output.
    pub lint_races: bool,
    /// Check that each tool's incrementally repaired PDG matches a
    /// from-scratch build of its output module.
    pub check_incremental: bool,
    /// Round-trip analysis artifacts through the `noelle-store` byte
    /// codecs and require byte-identical re-encoding.
    pub check_store: bool,
    /// Validate the parallelism auditor's per-loop verdicts by actually
    /// running the transforms (clean ⇒ applies + differential oracle
    /// passes; blocked ⇒ concrete attribution).
    pub check_audit: bool,
    /// Validate the parallelization planner (byte-identical plans across
    /// fresh managers; applied plans pass the differential oracle).
    pub check_plan: bool,
    /// Directory of persisted repros to replay (and to write new ones).
    pub corpus_dir: Option<PathBuf>,
    /// Write failing seeds + minimized repros into `corpus_dir`.
    pub persist: bool,
    /// Generator shape/size configuration.
    pub gen: GenConfig,
    /// Interpreter step budget per run.
    pub max_steps: u64,
    /// Bound on reducer rounds per failure.
    pub reduce_rounds: usize,
}

impl Default for FuzzConfig {
    fn default() -> FuzzConfig {
        FuzzConfig {
            seeds: 100,
            seed_start: 0,
            time_budget_ms: None,
            trace_deps: false,
            lint_races: false,
            check_incremental: true,
            check_store: true,
            check_audit: false,
            check_plan: false,
            corpus_dir: None,
            persist: false,
            gen: GenConfig::default(),
            max_steps: OracleConfig::default().max_steps,
            reduce_rounds: DEFAULT_MAX_ROUNDS,
        }
    }
}

/// One failing seed, with where its repro files went.
#[derive(Debug, Clone)]
pub struct SeedFailure {
    /// The generator seed that produced the failing module.
    pub seed: u64,
    /// The first oracle failure for that seed.
    pub failure: Failure,
    /// Path of the persisted original module, if persistence was on.
    pub persisted: Option<PathBuf>,
    /// Path of the persisted minimized module, if reduction succeeded.
    pub minimized: Option<PathBuf>,
    /// `(before, after)` instruction counts from the reducer.
    pub reduced_insts: Option<(usize, usize)>,
}

/// Deterministic summary of a campaign.
#[derive(Debug, Clone, Default)]
pub struct CampaignSummary {
    /// Corpus modules replayed.
    pub corpus_replayed: usize,
    /// Corpus replays that failed the oracle (file name + detail).
    pub corpus_violations: Vec<String>,
    /// Fresh seeds executed before any early stop.
    pub seeds_run: u64,
    /// Seeds whose module passed every oracle.
    pub passed: u64,
    /// Seeds skipped (baseline runtime error — not a differential result).
    pub skipped: u64,
    /// Failing seeds, in seed order.
    pub seed_failures: Vec<SeedFailure>,
    /// Observed dynamic dependences checked against the static PDG.
    pub deps_checked: usize,
    /// Whether the wall-clock budget ended the seed loop early.
    pub stopped_early: bool,
}

impl CampaignSummary {
    /// A campaign is OK when nothing failed (skips are fine).
    pub fn ok(&self) -> bool {
        self.corpus_violations.is_empty() && self.seed_failures.is_empty()
    }

    /// Render the summary as stable text: no timing data, so identical
    /// campaigns render identically byte-for-byte.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "corpus: {} replayed, {} violations",
            self.corpus_replayed,
            self.corpus_violations.len()
        );
        for v in &self.corpus_violations {
            let _ = writeln!(s, "  VIOLATION {v}");
        }
        let _ = writeln!(
            s,
            "seeds: {} run, {} passed, {} skipped, {} failed",
            self.seeds_run,
            self.passed,
            self.skipped,
            self.seed_failures.len()
        );
        let _ = writeln!(s, "deps checked against PDG: {}", self.deps_checked);
        if self.stopped_early {
            let _ = writeln!(s, "stopped early: time budget exhausted");
        }
        for f in &self.seed_failures {
            let tool = f.failure.tool.as_deref().unwrap_or("oracle");
            let _ = writeln!(
                s,
                "  FAIL seed {} [{}] {}: {}",
                f.seed, tool, f.failure.kind, f.failure.detail
            );
            if let Some(p) = &f.persisted {
                let _ = writeln!(s, "    repro: {}", p.display());
            }
            if let (Some(p), Some((before, after))) = (&f.minimized, f.reduced_insts) {
                let _ = writeln!(
                    s,
                    "    minimized: {} ({} -> {} insts)",
                    p.display(),
                    before,
                    after
                );
            }
        }
        let _ = writeln!(s, "result: {}", if self.ok() { "OK" } else { "FAILED" });
        s
    }
}

fn oracle_cfg(cfg: &FuzzConfig) -> OracleConfig {
    OracleConfig {
        trace_deps: cfg.trace_deps,
        lint_races: cfg.lint_races,
        check_incremental: cfg.check_incremental,
        check_store: cfg.check_store,
        check_audit: cfg.check_audit,
        check_plan: cfg.check_plan,
        max_steps: cfg.max_steps,
        ..OracleConfig::default()
    }
}

/// Replay every `*.nir` under `dir` (sorted by file name), recording
/// violations into `summary`.
fn replay_corpus(
    dir: &PathBuf,
    tools: &[FuzzTool],
    cfg: &FuzzConfig,
    summary: &mut CampaignSummary,
) {
    let mut entries: Vec<PathBuf> = match std::fs::read_dir(dir) {
        Ok(rd) => rd
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|e| e == "nir"))
            .collect(),
        Err(_) => return, // no corpus yet
    };
    entries.sort();
    let ocfg = oracle_cfg(cfg);
    for path in entries {
        summary.corpus_replayed += 1;
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| path.display().to_string());
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                summary
                    .corpus_violations
                    .push(format!("{name}: unreadable: {e}"));
                continue;
            }
        };
        let m = match parse_module(&text) {
            Ok(m) => m,
            Err(e) => {
                summary
                    .corpus_violations
                    .push(format!("{name}: does not parse: {e}"));
                continue;
            }
        };
        match check_module(&m, tools, &ocfg) {
            Outcome::Fail { failures } => {
                let f = &failures[0];
                let tool = f.tool.as_deref().unwrap_or("oracle");
                summary
                    .corpus_violations
                    .push(format!("{name}: [{tool}] {}: {}", f.kind, f.detail));
            }
            Outcome::Pass { deps_checked, .. } => summary.deps_checked += deps_checked,
            Outcome::Skip { .. } => {} // reported error instead of aborting: fine
        }
    }
}

/// Persist the failing module and a minimized repro for `seed`.
fn persist_failure(
    seed: u64,
    m: &noelle_ir::module::Module,
    failure: &Failure,
    tools: &[FuzzTool],
    cfg: &FuzzConfig,
    dir: &PathBuf,
) -> (Option<PathBuf>, Option<PathBuf>, Option<(usize, usize)>) {
    let tool = failure.tool.as_deref().unwrap_or("oracle");
    let stem = format!("seed-{seed}-{tool}");
    if std::fs::create_dir_all(dir).is_err() {
        return (None, None, None);
    }
    let full = dir.join(format!("{stem}.nir"));
    if std::fs::write(&full, print_module(m)).is_err() {
        return (None, None, None);
    }

    let reduce_cfg = OracleConfig {
        max_steps: cfg.max_steps.min(REDUCE_MAX_STEPS),
        ..oracle_cfg(cfg)
    };
    let pred = |c: &noelle_ir::module::Module| fails_like(c, tools, &reduce_cfg, failure);
    let (min, stats) = reduce(m, &pred, cfg.reduce_rounds);
    let min_path = dir.join(format!("{stem}.min.nir"));
    if std::fs::write(&min_path, print_module(&min)).is_err() {
        return (Some(full), None, None);
    }
    (
        Some(full),
        Some(min_path),
        Some((stats.insts_before, stats.insts_after)),
    )
}

/// Run a campaign: replay the corpus, then fuzz fresh seeds.
pub fn run_campaign(cfg: &FuzzConfig, tools: &[FuzzTool]) -> CampaignSummary {
    let start = Instant::now();
    let mut summary = CampaignSummary::default();

    if let Some(dir) = &cfg.corpus_dir {
        replay_corpus(dir, tools, cfg, &mut summary);
    }

    let ocfg = oracle_cfg(cfg);
    for seed in cfg.seed_start..cfg.seed_start.saturating_add(cfg.seeds) {
        if let Some(budget) = cfg.time_budget_ms {
            if start.elapsed().as_millis() as u64 > budget {
                summary.stopped_early = true;
                break;
            }
        }
        summary.seeds_run += 1;
        let m = generate(seed, &cfg.gen);
        match check_module(&m, tools, &ocfg) {
            Outcome::Pass { deps_checked, .. } => {
                summary.passed += 1;
                summary.deps_checked += deps_checked;
            }
            Outcome::Skip { .. } => summary.skipped += 1,
            Outcome::Fail { failures } => {
                let failure = failures[0].clone();
                let (persisted, minimized, reduced_insts) = match &cfg.corpus_dir {
                    Some(dir) if cfg.persist => {
                        persist_failure(seed, &m, &failure, tools, cfg, dir)
                    }
                    _ => (None, None, None),
                };
                summary.seed_failures.push(SeedFailure {
                    seed,
                    failure,
                    persisted,
                    minimized,
                    reduced_insts,
                });
            }
        }
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;
    use noelle_core::Noelle;
    use noelle_ir::inst::Terminator;
    use noelle_ir::value::Value;
    use noelle_ir::verifier::verify_module;

    fn small_cfg() -> FuzzConfig {
        FuzzConfig {
            seeds: 10,
            trace_deps: true,
            gen: GenConfig {
                max_kernels: 1,
                size_budget: 60,
                min_n: 4,
                max_n: 10,
            },
            ..FuzzConfig::default()
        }
    }

    fn breaker() -> FuzzTool {
        FuzzTool::new("breaker", |n: &mut Noelle| {
            let fid = n.module().func_id_by_name("main").expect("main exists");
            n.edit(|tx| {
                let f = tx.func_mut(fid);
                for b in f.block_order().to_vec() {
                    if let Some(Terminator::Ret(Some(_))) = f.terminator(b) {
                        f.set_terminator(b, Terminator::Ret(Some(Value::const_i64(-12345))));
                    }
                }
            });
            Ok("broke main".into())
        })
    }

    fn scratch_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("noelle-fuzz-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).expect("create scratch dir");
        d
    }

    #[test]
    fn clean_campaign_is_ok_and_renders_deterministically() {
        let cfg = small_cfg();
        let a = run_campaign(&cfg, &[]);
        let b = run_campaign(&cfg, &[]);
        assert!(a.ok(), "clean campaign failed:\n{}", a.render());
        assert_eq!(a.seeds_run, 10);
        assert!(a.deps_checked > 0, "trace_deps should check dependences");
        assert_eq!(a.render(), b.render(), "summary must be deterministic");
    }

    #[test]
    fn failing_seeds_are_persisted_and_minimized() {
        let dir = scratch_dir("persist");
        let cfg = FuzzConfig {
            seeds: 2,
            corpus_dir: Some(dir.clone()),
            persist: true,
            reduce_rounds: 4,
            ..small_cfg()
        };
        let summary = run_campaign(&cfg, &[breaker()]);
        assert!(!summary.ok());
        assert_eq!(summary.seed_failures.len(), 2);
        for f in &summary.seed_failures {
            let full = f.persisted.as_ref().expect("original persisted");
            let min = f.minimized.as_ref().expect("minimized persisted");
            let min_m =
                parse_module(&std::fs::read_to_string(min).expect("read min")).expect("parse min");
            assert!(verify_module(&min_m).is_ok());
            let (before, after) = f.reduced_insts.expect("reducer stats");
            assert!(after <= before);
            assert!(full.exists());
        }

        // Replaying that corpus with the same broken tool reports every
        // repro (original + minimized) as a violation...
        let replay = run_campaign(
            &FuzzConfig {
                seeds: 0,
                persist: false,
                ..cfg.clone()
            },
            &[breaker()],
        );
        assert_eq!(replay.corpus_replayed, 4);
        assert_eq!(replay.corpus_violations.len(), 4);

        // ...and with the bug "fixed" (no tools), the corpus replays clean.
        let fixed = run_campaign(
            &FuzzConfig {
                seeds: 0,
                persist: false,
                ..cfg
            },
            &[],
        );
        assert!(fixed.ok(), "fixed replay not ok:\n{}", fixed.render());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unparseable_corpus_entries_are_violations() {
        let dir = scratch_dir("garbage");
        std::fs::write(dir.join("bad.nir"), "this is not IR").expect("write garbage");
        let cfg = FuzzConfig {
            seeds: 0,
            corpus_dir: Some(dir.clone()),
            ..FuzzConfig::default()
        };
        let summary = run_campaign(&cfg, &[]);
        assert_eq!(summary.corpus_replayed, 1);
        assert_eq!(summary.corpus_violations.len(), 1);
        assert!(summary.corpus_violations[0].contains("does not parse"));
        assert!(!summary.ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn time_budget_stops_the_seed_loop() {
        let cfg = FuzzConfig {
            seeds: 1_000_000,
            time_budget_ms: Some(0),
            ..small_cfg()
        };
        let summary = run_campaign(&cfg, &[]);
        assert!(summary.stopped_early);
        assert!(summary.seeds_run < 1_000_000);
    }
}
