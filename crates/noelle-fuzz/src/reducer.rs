//! Fixpoint test-case reducer.
//!
//! [`reduce`] shrinks a failing module while preserving an arbitrary
//! "still fails" predicate (normally [`crate::oracle::fails_like`] curried
//! over the original failure). The algorithm is a deterministic greedy
//! descent: each round runs a fixed sequence of passes, each pass proposes
//! single mutations in a canonical order, and a candidate is accepted only
//! when it
//!
//! 1. still verifies,
//! 2. strictly decreases the reduction metric, and
//! 3. still satisfies the predicate.
//!
//! The metric is the lexicographic triple `(reachable instructions, total
//! instructions, summed integer-constant magnitude)`, so every accepted
//! step makes provable progress and the loop terminates; a round that
//! accepts nothing is a fixpoint and ends the run early.
//!
//! Passes, in order:
//!
//! - **drop-inst** — delete a non-terminator instruction, replacing its
//!   uses with a typed zero (`0`, `0.0`, or `null`) when it has any.
//! - **flatten-branch** — rewrite a `condbr`/`switch` into an
//!   unconditional `br` (both polarities / the default target are tried).
//! - **prune-unreachable** — gut blocks no longer reachable from the
//!   entry, leaving a bare `unreachable` stub (the verifier rejects empty
//!   blocks, and the IR has no block-removal primitive).
//! - **merge-blocks** — fold a single-successor block into its unique
//!   `br` predecessor, retargeting successor phis.
//! - **shrink-const** — replace an integer constant operand by `0`, `1`,
//!   or half its value.

use std::collections::HashSet;

use noelle_ir::inst::{Inst, InstId, Terminator};
use noelle_ir::module::{BlockId, FuncId, Module};
use noelle_ir::types::Type;
use noelle_ir::value::{Constant, Value};
use noelle_ir::verifier::verify_module;

/// Default bound on reduction rounds; each round is a full pass sequence.
pub const DEFAULT_MAX_ROUNDS: usize = 12;

/// Statistics from one [`reduce`] run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReduceStats {
    /// Rounds executed (including the final no-progress round).
    pub rounds: usize,
    /// Candidate mutations proposed.
    pub attempted: usize,
    /// Candidate mutations accepted.
    pub accepted: usize,
    /// `total_insts` of the input module.
    pub insts_before: usize,
    /// `total_insts` of the reduced module.
    pub insts_after: usize,
}

/// Reduction metric: candidates are accepted only if this strictly
/// decreases lexicographically.
type Metric = (usize, usize, u128);

fn reachable_blocks(m: &Module, fid: FuncId) -> HashSet<BlockId> {
    let f = m.func(fid);
    let mut seen = HashSet::new();
    if f.is_declaration() {
        return seen;
    }
    let mut stack = vec![f.entry()];
    while let Some(b) = stack.pop() {
        if seen.insert(b) {
            stack.extend(f.successors(b));
        }
    }
    seen
}

fn metric(m: &Module) -> Metric {
    let mut reachable = 0usize;
    let mut const_mag = 0u128;
    for fid in m.func_ids() {
        let f = m.func(fid);
        if f.is_declaration() {
            continue;
        }
        for b in reachable_blocks(m, fid) {
            reachable += f.block(b).insts.len();
        }
        for id in f.inst_ids() {
            for op in f.inst(id).operands() {
                if let Value::Const(Constant::Int(v, _)) = op {
                    const_mag += v.unsigned_abs() as u128;
                }
            }
        }
    }
    (reachable, m.total_insts(), const_mag)
}

/// A typed zero suitable for replacing a value of type `ty`, if one exists.
fn zero_of(ty: &Type) -> Option<Value> {
    match ty {
        Type::Int(w) => Some(Value::Const(Constant::Int(0, *w))),
        Type::Float(w) => Some(Value::Const(Constant::Float(0, *w))),
        Type::Ptr(_) => Some(Value::Const(Constant::Null)),
        _ => None,
    }
}

struct Reducer<'a> {
    best: Module,
    best_metric: Metric,
    still_fails: &'a dyn Fn(&Module) -> bool,
    stats: ReduceStats,
}

impl<'a> Reducer<'a> {
    /// Accept `cand` iff it verifies, strictly improves the metric, and
    /// still fails. Returns whether it became the new best.
    fn try_accept(&mut self, cand: Module) -> bool {
        self.stats.attempted += 1;
        if verify_module(&cand).is_err() {
            return false;
        }
        let cm = metric(&cand);
        if cm >= self.best_metric {
            return false;
        }
        if !(self.still_fails)(&cand) {
            return false;
        }
        self.best = cand;
        self.best_metric = cm;
        self.stats.accepted += 1;
        true
    }

    /// Defined-function ids of the current best, in id order.
    fn defined_funcs(&self) -> Vec<FuncId> {
        self.best
            .func_ids()
            .filter(|&fid| !self.best.func(fid).is_declaration())
            .collect()
    }

    /// drop-inst: try deleting each non-terminator instruction, replacing
    /// its uses (if any) with a typed zero.
    fn pass_drop_insts(&mut self) -> usize {
        let mut accepted = 0;
        for fid in self.defined_funcs() {
            for id in self.best.func(fid).inst_ids() {
                let f = self.best.func(fid);
                // Stale id (an earlier acceptance removed it) or terminator.
                if f.position_in_block(id).is_none() || f.inst(id).is_terminator() {
                    continue;
                }
                let has_uses = f.compute_uses().get(&id).is_some_and(|us| !us.is_empty());
                let replacement = if has_uses {
                    match zero_of(&f.inst(id).result_type()) {
                        Some(z) => Some(z),
                        None => continue, // no typed zero for this result
                    }
                } else {
                    None
                };
                let mut cand = self.best.clone();
                let cf = cand.func_mut(fid);
                if let Some(z) = replacement {
                    cf.replace_all_uses(Value::Inst(id), z);
                }
                cf.remove_inst(id);
                if self.try_accept(cand) {
                    accepted += 1;
                }
            }
        }
        accepted
    }

    /// flatten-branch: try rewriting each condbr (both arms) and switch
    /// (default target) into an unconditional br.
    fn pass_flatten_branches(&mut self) -> usize {
        let mut accepted = 0;
        for fid in self.defined_funcs() {
            for b in self.best.func(fid).block_order().to_vec() {
                let targets: Vec<BlockId> = match self.best.func(fid).terminator(b) {
                    Some(Terminator::CondBr {
                        then_bb, else_bb, ..
                    }) => vec![*then_bb, *else_bb],
                    Some(Terminator::Switch { default, .. }) => vec![*default],
                    _ => continue,
                };
                for t in targets {
                    let mut cand = self.best.clone();
                    cand.func_mut(fid).set_terminator(b, Terminator::Br(t));
                    if self.try_accept(cand) {
                        accepted += 1;
                        break; // the other polarity no longer exists
                    }
                }
            }
        }
        accepted
    }

    /// prune-unreachable: gut every block not reachable from the entry in
    /// one candidate, leaving `unreachable` stubs.
    fn pass_prune_unreachable(&mut self) -> usize {
        let mut accepted = 0;
        for fid in self.defined_funcs() {
            let reachable = reachable_blocks(&self.best, fid);
            let f = self.best.func(fid);
            let dead: Vec<BlockId> = f
                .block_order()
                .iter()
                .copied()
                .filter(|b| !reachable.contains(b))
                .filter(|&b| {
                    f.block(b).insts.len() != 1
                        || !matches!(f.terminator(b), Some(Terminator::Unreachable))
                })
                .collect();
            if dead.is_empty() {
                continue;
            }
            let mut cand = self.best.clone();
            let cf = cand.func_mut(fid);
            for b in dead {
                for id in cf.block(b).insts.clone() {
                    cf.remove_inst(id);
                }
                cf.set_terminator(b, Terminator::Unreachable);
            }
            if self.try_accept(cand) {
                accepted += 1;
            }
        }
        accepted
    }

    /// merge-blocks: fold block `b` into its unique predecessor `a` when
    /// `a` ends in `br b` and `b` has no phis.
    fn pass_merge_blocks(&mut self) -> usize {
        let mut accepted = 0;
        for fid in self.defined_funcs() {
            for a in self.best.func(fid).block_order().to_vec() {
                let f = self.best.func(fid);
                let b = match f.terminator(a) {
                    Some(Terminator::Br(b)) => *b,
                    _ => continue,
                };
                if b == a || b == f.entry() || !f.phis(b).is_empty() {
                    continue;
                }
                // `b` must have `a` as its only predecessor.
                let preds = f
                    .block_order()
                    .iter()
                    .filter(|&&p| f.successors(p).contains(&b))
                    .count();
                if preds != 1 {
                    continue;
                }
                let mut cand = self.best.clone();
                let cf = cand.func_mut(fid);
                let a_term = cf.terminator_id(a).expect("a has a terminator");
                cf.remove_inst(a_term);
                let moved: Vec<InstId> = cf.block(b).insts.clone();
                for id in moved {
                    cf.move_inst_to_block_end(id, a); // includes b's terminator
                }
                cf.set_terminator(b, Terminator::Unreachable);
                // Successor phis that named `b` as a predecessor now flow
                // in from `a`.
                for succ in cf.successors(a) {
                    for phi in cf.phis(succ) {
                        if let Inst::Phi { incomings, .. } = cf.inst_mut(phi) {
                            for (pred, _) in incomings.iter_mut() {
                                if *pred == b {
                                    *pred = a;
                                }
                            }
                        }
                    }
                }
                if self.try_accept(cand) {
                    accepted += 1;
                }
            }
        }
        accepted
    }

    /// shrink-const: replace each integer constant operand by 0, 1, or
    /// half its value (first improvement wins per operand).
    fn pass_shrink_consts(&mut self) -> usize {
        let mut accepted = 0;
        for fid in self.defined_funcs() {
            for id in self.best.func(fid).inst_ids() {
                let f = self.best.func(fid);
                if f.position_in_block(id).is_none() {
                    continue;
                }
                let ops = f.inst(id).operands();
                for (k, op) in ops.iter().enumerate() {
                    let (v, w) = match op {
                        Value::Const(Constant::Int(v, w)) if v.unsigned_abs() > 1 => (*v, *w),
                        _ => continue,
                    };
                    for repl in [0, 1, v / 2] {
                        if repl == v {
                            continue;
                        }
                        let mut cand = self.best.clone();
                        let mut seen = 0usize;
                        cand.func_mut(fid).inst_mut(id).map_operands(|o| {
                            let hit = seen == k;
                            seen += 1;
                            if hit {
                                Value::Const(Constant::Int(repl, w))
                            } else {
                                o
                            }
                        });
                        if self.try_accept(cand) {
                            accepted += 1;
                            break;
                        }
                    }
                }
            }
        }
        accepted
    }
}

/// Shrink `m` while `still_fails` holds, bounded by `max_rounds` rounds.
///
/// Deterministic: the same input module and predicate always produce the
/// same reduced module (candidates are proposed in instruction-id order
/// and accepted greedily).
pub fn reduce(
    m: &Module,
    still_fails: &dyn Fn(&Module) -> bool,
    max_rounds: usize,
) -> (Module, ReduceStats) {
    let mut r = Reducer {
        best_metric: metric(m),
        best: m.clone(),
        still_fails,
        stats: ReduceStats {
            insts_before: m.total_insts(),
            ..ReduceStats::default()
        },
    };
    for _ in 0..max_rounds.max(1) {
        r.stats.rounds += 1;
        let mut accepted = 0;
        accepted += r.pass_drop_insts();
        accepted += r.pass_flatten_branches();
        accepted += r.pass_prune_unreachable();
        accepted += r.pass_merge_blocks();
        accepted += r.pass_shrink_consts();
        if accepted == 0 {
            break; // fixpoint
        }
    }
    r.stats.insts_after = r.best.total_insts();
    (r.best, r.stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, GenConfig};
    use crate::oracle::{check_module, fails_like, FuzzTool, OracleConfig};
    use noelle_core::Noelle;
    use noelle_ir::parser::parse_module;
    use noelle_ir::printer::print_module;

    /// Small modules keep the O(candidates × re-checks) loop fast in
    /// debug-mode test runs.
    fn small_cfg() -> GenConfig {
        GenConfig {
            max_kernels: 1,
            size_budget: 60,
            min_n: 4,
            max_n: 10,
        }
    }

    /// A transform that miscompiles every module: main returns -12345.
    fn breaker() -> FuzzTool {
        FuzzTool::new("breaker", |n: &mut Noelle| {
            let fid = n.module().func_id_by_name("main").expect("main exists");
            n.edit(|tx| {
                let f = tx.func_mut(fid);
                for b in f.block_order().to_vec() {
                    if let Some(Terminator::Ret(Some(_))) = f.terminator(b) {
                        f.set_terminator(b, Terminator::Ret(Some(Value::const_i64(-12345))));
                    }
                }
            });
            Ok("broke main".into())
        })
    }

    #[test]
    fn reduction_terminates_and_shrinks_under_trivial_predicate() {
        let m = generate(7, &small_cfg());
        let before = m.total_insts();
        // "Still fails" as long as main exists: the reducer should strip
        // the module down hard and must terminate within the round bound.
        let pred = |c: &Module| c.func_by_name("main").is_some();
        let (red, stats) = reduce(&m, &pred, DEFAULT_MAX_ROUNDS);
        assert!(stats.rounds <= DEFAULT_MAX_ROUNDS);
        assert!(red.total_insts() < before, "reducer made no progress");
        assert_eq!(stats.insts_before, before);
        assert_eq!(stats.insts_after, red.total_insts());
        assert!(verify_module(&red).is_ok());
    }

    #[test]
    fn reduced_module_still_fails_the_original_oracle() {
        let m = generate(11, &small_cfg());
        // Mutated candidates can loop forever (e.g. a zeroed loop
        // increment); a small step budget rejects them quickly instead of
        // burning the full default interpreter budget per candidate.
        let cfg = OracleConfig {
            max_steps: 200_000,
            ..OracleConfig::default()
        };
        let out = check_module(&m, &[breaker()], &cfg);
        let failures = match out {
            crate::oracle::Outcome::Fail { failures } => failures,
            other => panic!("breaker should fail, got {other:?}"),
        };
        let proto = failures[0].clone();
        let pred = |c: &Module| fails_like(c, &[breaker()], &cfg, &proto);
        assert!(pred(&m), "original must fail like itself");
        let (red, stats) = reduce(&m, &pred, DEFAULT_MAX_ROUNDS);
        assert!(pred(&red), "reduced module no longer fails the oracle");
        assert!(
            red.total_insts() <= m.total_insts(),
            "reduction must not grow the module"
        );
        assert!(stats.accepted > 0, "expected at least one accepted shrink");
    }

    #[test]
    fn reduction_is_deterministic() {
        let m = generate(23, &small_cfg());
        let pred = |c: &Module| c.func_by_name("main").is_some();
        let (a, sa) = reduce(&m, &pred, DEFAULT_MAX_ROUNDS);
        let (b, sb) = reduce(&m, &pred, DEFAULT_MAX_ROUNDS);
        assert_eq!(print_module(&a), print_module(&b));
        assert_eq!(sa, sb);
    }

    #[test]
    fn reduction_round_trips_through_the_printer() {
        // Reduced repros are persisted as text; they must re-parse and
        // re-verify so the corpus replays cleanly.
        let m = generate(31, &small_cfg());
        let pred = |c: &Module| c.func_by_name("main").is_some();
        let (red, _) = reduce(&m, &pred, 4);
        let text = print_module(&red);
        let back = parse_module(&text).expect("reduced module re-parses");
        assert!(verify_module(&back).is_ok());
        assert_eq!(print_module(&back), text);
    }
}
