//! The differential oracle: transforms must preserve observable behavior,
//! and the static PDG must cover every runtime-observed memory dependence.

use noelle_core::noelle::{AliasTier, Noelle};
use noelle_ir::module::Module;
use noelle_ir::verifier::verify_module;
use noelle_runtime::machine::{run_module, RtError, RunConfig, RunResult};
use noelle_runtime::memory::RtVal;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A transform under test. Injected (rather than read from the
/// `noelle-tools` registry) to keep the dependency arrow pointing from the
/// tools crate to this one.
/// Boxed tool runner: transforms the managed module, returns a summary.
type ToolRunner = Box<dyn Fn(&mut Noelle) -> Result<String, String> + Sync>;

pub struct FuzzTool {
    /// Registry name, used in reports and repro filenames.
    pub name: String,
    run: ToolRunner,
}

impl FuzzTool {
    /// Wrap a runner under `name`.
    pub fn new(
        name: impl Into<String>,
        run: impl Fn(&mut Noelle) -> Result<String, String> + Sync + 'static,
    ) -> FuzzTool {
        FuzzTool {
            name: name.into(),
            run: Box::new(run),
        }
    }

    /// Apply the tool.
    pub fn run(&self, n: &mut Noelle) -> Result<String, String> {
        (self.run)(n)
    }
}

/// Oracle knobs.
#[derive(Clone, Debug)]
pub struct OracleConfig {
    /// Also run the dynamic PDG-soundness check.
    pub trace_deps: bool,
    /// Also run the static NL0001 race detector over each tool's output
    /// (tool-produced tasks must be race-free).
    pub lint_races: bool,
    /// After each tool edits through `Noelle::edit`, check that the warm
    /// manager's incrementally repaired PDG is wire-identical to a
    /// from-scratch build of the transformed module.
    pub check_incremental: bool,
    /// Round-trip every durable-store artifact codec over the input
    /// module's analyses: encode, decode, re-encode must be byte-identical
    /// (the invariant a warm restart from `noelle-store` rests on).
    pub check_store: bool,
    /// Validate the parallelism auditor's verdicts: every *clean* verdict
    /// must survive actually running that transform on the audited loop
    /// (transform applies + the differential oracle passes), and every
    /// *blocked* verdict must name at least one concrete instruction-level
    /// blocker carrying a resolution hint.
    pub check_audit: bool,
    /// Validate the parallelization planner: planning the module twice from
    /// fresh managers must produce byte-identical JSON (determinism — the
    /// property the golden-report gate rests on), and applying the chosen
    /// plan must preserve observable behavior under the differential oracle.
    pub check_plan: bool,
    /// Interpreter step budget per run.
    pub max_steps: u64,
    /// Entry function name.
    pub entry: String,
}

impl Default for OracleConfig {
    fn default() -> OracleConfig {
        OracleConfig {
            trace_deps: false,
            lint_races: false,
            check_incremental: true,
            check_store: true,
            check_audit: false,
            check_plan: false,
            max_steps: 20_000_000,
            entry: "main".into(),
        }
    }
}

/// What went wrong, in increasing order of "the compiler is broken".
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FailureKind {
    /// The input module did not verify (a generator bug, not a compiler bug).
    GeneratorInvalid,
    /// A tool returned `Err`.
    ToolError,
    /// A tool panicked.
    ToolPanic,
    /// The transformed module no longer verifies.
    VerifierReject,
    /// The transformed module errored at runtime though the original ran.
    RunError,
    /// The transformed module panicked the interpreter.
    RunPanic,
    /// Return values differ.
    ReturnMismatch,
    /// `print_*` output traces differ.
    OutputMismatch,
    /// The globals region of final memory differs.
    MemoryMismatch,
    /// A runtime-observed memory dependence is missing from the static PDG.
    UnsoundPdg,
    /// The static race detector flagged the tool's parallelized output.
    RaceFinding,
    /// The incrementally repaired PDG diverged from a from-scratch build
    /// of the transformed module (an invalidation-engine bug).
    IncrementalMismatch,
    /// A durable-store artifact codec failed the encode/decode/re-encode
    /// byte-identity round trip (a `noelle-store` codec bug).
    StoreRoundTrip,
    /// The parallelism auditor's verdict disagreed with reality: a clean
    /// verdict whose transform refused or miscompiled the loop (a false
    /// "clean" — the unforgivable direction), or a blocked verdict that
    /// names no concrete blocker.
    AuditMismatch,
    /// The parallelization planner misbehaved: two fresh plans of the same
    /// module differed (nondeterminism), or applying the chosen plan
    /// changed observable behavior.
    PlanMismatch,
}

impl std::fmt::Display for FailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FailureKind::GeneratorInvalid => "generator-invalid",
            FailureKind::ToolError => "tool-error",
            FailureKind::ToolPanic => "tool-panic",
            FailureKind::VerifierReject => "verifier-reject",
            FailureKind::RunError => "run-error",
            FailureKind::RunPanic => "run-panic",
            FailureKind::ReturnMismatch => "return-mismatch",
            FailureKind::OutputMismatch => "output-mismatch",
            FailureKind::MemoryMismatch => "memory-mismatch",
            FailureKind::UnsoundPdg => "unsound-pdg",
            FailureKind::RaceFinding => "race-finding",
            FailureKind::IncrementalMismatch => "incremental-mismatch",
            FailureKind::StoreRoundTrip => "store-round-trip",
            FailureKind::AuditMismatch => "audit-mismatch",
            FailureKind::PlanMismatch => "plan-mismatch",
        };
        f.write_str(s)
    }
}

/// One oracle violation.
#[derive(Clone, Debug)]
pub struct Failure {
    /// The tool at fault (`None` for PDG-soundness and generator failures).
    pub tool: Option<String>,
    /// Classification.
    pub kind: FailureKind,
    /// Human-readable specifics.
    pub detail: String,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.tool {
            Some(t) => write!(f, "[{t}] {}: {}", self.kind, self.detail),
            None => write!(f, "{}: {}", self.kind, self.detail),
        }
    }
}

/// Oracle verdict for one module.
#[derive(Debug)]
pub enum Outcome {
    /// Every tool preserved behavior and every observed dep was covered.
    Pass {
        /// Tools exercised.
        tools_applied: usize,
        /// Observed dependences checked against the PDG.
        deps_checked: usize,
    },
    /// The baseline run itself errored (e.g. a checked-in repro whose very
    /// point is a reported runtime error); nothing to differentiate against.
    Skip {
        /// Why the module is not differentiable.
        reason: String,
    },
    /// At least one violation.
    Fail {
        /// All violations found.
        failures: Vec<Failure>,
    },
}

impl Outcome {
    /// True when nothing failed (Skip counts as ok: a reported — not
    /// aborting — baseline error is exactly what repros assert).
    pub fn is_ok(&self) -> bool {
        !matches!(self, Outcome::Fail { .. })
    }
}

/// Return-value fingerprint that compares floats by bit pattern.
fn ret_bits(r: &RunResult) -> Option<(u8, u64)> {
    match r.ret {
        Some(RtVal::I(v)) => Some((0, v as u64)),
        Some(RtVal::F(v)) => Some((1, v.to_bits())),
        None => None,
    }
}

fn run_caught(
    m: &Module,
    cfg: &RunConfig,
    entry: &str,
) -> Result<Result<RunResult, RtError>, String> {
    catch_unwind(AssertUnwindSafe(|| run_module(m, entry, &[], cfg))).map_err(panic_text)
}

fn panic_text(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Round-trip every durable-store artifact codec over `m`'s analyses.
/// For each defined function: PDG partition, Andersen points-to rows, and
/// loop forest must each encode, decode, and re-encode to identical bytes.
/// Byte-identity (not just structural equality) is what content addressing
/// needs: the same analysis state must always persist as the same payload.
fn store_round_trip_failures(m: &Module) -> Vec<Failure> {
    use noelle_store::artifact;
    let fail = |what: String| Failure {
        tool: None,
        kind: FailureKind::StoreRoundTrip,
        detail: what,
    };
    let mut failures = Vec::new();
    let mut check =
        |fname: &str, artifact_name: &str, bytes: &[u8], reencoded: Result<Vec<u8>, String>| {
            match reencoded {
                Err(e) => failures.push(fail(format!(
                    "@{fname} {artifact_name}: decode failed: {e}"
                ))),
                Ok(re) if re != bytes => failures.push(fail(format!(
                    "@{fname} {artifact_name}: re-encode diverges ({} vs {} bytes)",
                    bytes.len(),
                    re.len()
                ))),
                Ok(_) => {}
            }
        };

    let mut n = Noelle::new(m.clone(), AliasTier::Full);
    let pdg = n.pdg();
    let mut fids: Vec<_> = pdg.per_function.keys().copied().collect();
    fids.sort();
    for fid in fids {
        let fname = &m.func(fid).name;
        let g = &pdg.per_function[&fid];
        let bytes = artifact::encode_partition(g);
        let re = artifact::decode_partition(&bytes)
            .map(|d| artifact::encode_partition(&d))
            .map_err(|e| e.to_string());
        check(fname, "pdg partition", &bytes, re);
    }

    let andersen = noelle_analysis::alias::AndersenAlias::new(m);
    let mut by_fn: Vec<_> = andersen.rows_by_function().into_iter().collect();
    by_fn.sort_by_key(|(fid, _)| *fid);
    for (fid, rows) in by_fn {
        let fname = &m.func(fid).name;
        let bytes = artifact::encode_points_to(&rows);
        let re = artifact::decode_points_to(&bytes)
            .map(|d| {
                if d != rows {
                    return Err("decoded rows differ structurally".to_string());
                }
                Ok(artifact::encode_points_to(&d))
            })
            .map_err(|e| e.to_string())
            .and_then(|r| r);
        check(fname, "points-to rows", &bytes, re);
    }

    for fid in m.func_ids().filter(|&f| !m.func(f).is_declaration()) {
        let f = m.func(fid);
        let cfg = noelle_ir::cfg::Cfg::new(f);
        let dom = noelle_ir::dom::DomTree::new(f, &cfg);
        let forest = noelle_ir::loops::LoopForest::new(f, &cfg, &dom);
        let bytes = artifact::encode_forest(&forest);
        let re = artifact::decode_forest(&bytes)
            .map(|d| artifact::encode_forest(&d))
            .map_err(|e| e.to_string());
        check(&f.name, "loop forest", &bytes, re);
    }
    failures
}

/// Validate the parallelism auditor's verdicts against reality. For every
/// loop × technique: a *clean* verdict must survive running that transform
/// restricted to exactly the audited loop — the transform must report the
/// loop parallelized, the result must verify, and the differential oracle
/// (return value, output trace, globals digest) must match the baseline. A
/// *blocked* verdict must name at least one instruction-level blocker, each
/// carrying a resolution hint. Any disagreement is an `AuditMismatch`.
fn audit_failures(m: &Module, base: &RunResult, run_cfg: &RunConfig, entry: &str) -> Vec<Failure> {
    use noelle_core::audit::Technique;
    use noelle_transforms::common::LoopTargetOpts;
    use noelle_transforms::{doall, dswp, helix};
    let fail = |technique: &str, what: String| Failure {
        tool: Some(format!("audit:{technique}")),
        kind: FailureKind::AuditMismatch,
        detail: what,
    };
    let mut failures = Vec::new();
    let mut n = Noelle::new(m.clone(), AliasTier::Full);
    let audit = noelle_lint::run_audit(&mut n);
    for la in &audit.loops {
        let loop_name = format!("@{}:{}", la.function, la.header_name);
        for v in &la.verdicts {
            let tname = v.technique.as_str();
            if !v.clean {
                // Blocked ⇒ concrete attribution. (Hints are statically
                // total on `Blocker`; the check documents the contract.)
                if v.blockers.is_empty() {
                    failures.push(fail(
                        tname,
                        format!("blocked verdict on {loop_name} names no blocker"),
                    ));
                }
                continue;
            }
            // Clean ⇒ the transform must accept exactly this loop...
            let target = LoopTargetOpts::pinned(&la.function, la.header);
            let mut tn = Noelle::new(m.clone(), AliasTier::Full);
            let report = match v.technique {
                Technique::Doall => doall::run(&mut tn, &doall::DoallOptions { target }),
                Technique::Helix => helix::run(
                    &mut tn,
                    &helix::HelixOptions {
                        target,
                        ..helix::HelixOptions::default()
                    },
                ),
                Technique::Dswp => dswp::run(
                    &mut tn,
                    &dswp::DswpOptions {
                        target: target.with_workers(2),
                    },
                ),
            };
            if !report
                .parallelized
                .iter()
                .any(|(f, h)| *f == la.function && *h == la.header)
            {
                let why = report
                    .skipped
                    .iter()
                    .find(|(f, h, _)| *f == la.function && *h == la.header)
                    .map(|(_, _, r)| r.clone())
                    .unwrap_or_else(|| "loop not attempted".to_string());
                failures.push(fail(
                    tname,
                    format!("clean verdict on {loop_name}, but the transform refused: {why}"),
                ));
                continue;
            }
            // ...and the parallelized module must still behave.
            let tm = tn.into_module();
            if let Err(e) = verify_module(&tm) {
                failures.push(fail(
                    tname,
                    format!("clean verdict on {loop_name}, transformed module rejects: {e:?}"),
                ));
                continue;
            }
            match run_caught(&tm, run_cfg, entry) {
                Err(p) => failures.push(fail(
                    tname,
                    format!("clean verdict on {loop_name}, transformed run panicked: {p}"),
                )),
                Ok(Err(e)) => failures.push(fail(
                    tname,
                    format!("clean verdict on {loop_name}, transformed run errored: {e}"),
                )),
                Ok(Ok(after)) => {
                    if ret_bits(base) != ret_bits(&after)
                        || base.output != after.output
                        || base.globals_digest != after.globals_digest
                    {
                        failures.push(fail(
                            tname,
                            format!(
                                "clean verdict on {loop_name}, but behavior diverged \
                                 (ret {:?} vs {:?})",
                                base.ret, after.ret
                            ),
                        ));
                    }
                }
            }
        }
    }
    failures
}

/// Validate the parallelization planner over `m`. Two properties:
///
/// 1. **Determinism.** Planning the module twice from fresh managers must
///    yield byte-identical JSON reports — the invariant the checked-in
///    golden plans (and any cache keyed on plan content) rest on.
/// 2. **Soundness of application.** Executing the chosen plan through
///    `apply_plan` must produce a module that verifies, runs, and matches
///    the baseline on return value, output trace, and globals digest.
fn plan_failures(m: &Module, base: &RunResult, run_cfg: &RunConfig, entry: &str) -> Vec<Failure> {
    use noelle_plan::{apply_plan, plan_module, PlanOptions};
    let fail = |what: String| Failure {
        tool: Some("plan".to_string()),
        kind: FailureKind::PlanMismatch,
        detail: what,
    };
    let mut failures = Vec::new();
    let opts = PlanOptions::default();
    let first = {
        let mut n = Noelle::new(m.clone(), AliasTier::Full);
        plan_module(&mut n, &opts).to_json().to_string_compact()
    };
    let mut n = Noelle::new(m.clone(), AliasTier::Full);
    let plan = plan_module(&mut n, &opts);
    let second = plan.to_json().to_string_compact();
    if first != second {
        failures.push(fail(format!(
            "two fresh plans differ ({} vs {} bytes)",
            first.len(),
            second.len()
        )));
        return failures;
    }
    apply_plan(&mut n, &plan);
    let tm = n.into_module();
    if let Err(e) = verify_module(&tm) {
        failures.push(fail(format!("planned module rejects: {e:?}")));
        return failures;
    }
    match run_caught(&tm, run_cfg, entry) {
        Err(p) => failures.push(fail(format!("planned run panicked: {p}"))),
        Ok(Err(e)) => failures.push(fail(format!("planned run errored: {e}"))),
        Ok(Ok(after)) => {
            if ret_bits(base) != ret_bits(&after)
                || base.output != after.output
                || base.globals_digest != after.globals_digest
            {
                failures.push(fail(format!(
                    "planned module diverged from baseline (ret {:?} vs {:?})",
                    base.ret, after.ret
                )));
            }
        }
    }
    failures
}

/// Run the full oracle over `m`: baseline, optional PDG-soundness pass, then
/// one differential round per tool.
pub fn check_module(m: &Module, tools: &[FuzzTool], cfg: &OracleConfig) -> Outcome {
    if let Err(e) = verify_module(m) {
        return Outcome::Fail {
            failures: vec![Failure {
                tool: None,
                kind: FailureKind::GeneratorInvalid,
                detail: format!("input module does not verify: {e:?}"),
            }],
        };
    }

    let base_cfg = RunConfig {
        trace_deps: cfg.trace_deps,
        max_steps: cfg.max_steps,
        ..RunConfig::default()
    };
    let base = match run_caught(m, &base_cfg, &cfg.entry) {
        Err(p) => {
            return Outcome::Fail {
                failures: vec![Failure {
                    tool: None,
                    kind: FailureKind::RunPanic,
                    detail: format!("baseline run panicked: {p}"),
                }],
            }
        }
        Ok(Err(e)) => {
            return Outcome::Skip {
                reason: format!("baseline run error: {e}"),
            }
        }
        Ok(Ok(r)) => r,
    };

    let mut failures = Vec::new();
    let mut deps_checked = 0usize;
    if cfg.trace_deps {
        let mut n = Noelle::new(m.clone(), AliasTier::Full);
        let pdg = n.pdg();
        for d in &base.observed_deps {
            deps_checked += 1;
            if !pdg.covers_memory_dep(d.func, d.src, d.dst) {
                let fname = &m.func(d.func).name;
                failures.push(Failure {
                    tool: None,
                    kind: FailureKind::UnsoundPdg,
                    detail: format!(
                        "observed dependence {:?} -> {:?} in @{fname} missing from the PDG",
                        d.src, d.dst
                    ),
                });
            }
        }
    }

    if cfg.check_store {
        failures.extend(store_round_trip_failures(m));
    }

    let run_cfg = RunConfig {
        max_steps: cfg.max_steps,
        ..RunConfig::default()
    };
    if cfg.check_audit {
        failures.extend(audit_failures(m, &base, &run_cfg, &cfg.entry));
    }
    if cfg.check_plan {
        failures.extend(plan_failures(m, &base, &run_cfg, &cfg.entry));
    }
    for tool in tools {
        let mut n = Noelle::new(m.clone(), AliasTier::Full);
        match catch_unwind(AssertUnwindSafe(|| tool.run(&mut n))) {
            Err(p) => {
                failures.push(Failure {
                    tool: Some(tool.name.clone()),
                    kind: FailureKind::ToolPanic,
                    detail: panic_text(p),
                });
                continue;
            }
            Ok(Err(e)) => {
                failures.push(Failure {
                    tool: Some(tool.name.clone()),
                    kind: FailureKind::ToolError,
                    detail: e,
                });
                continue;
            }
            Ok(Ok(_report)) => {}
        }
        // Incremental-vs-fresh equivalence: the transform edited through
        // `Noelle::edit`, so the warm manager repairs its PDG from the
        // touched set only. The repaired graph must be wire-identical to
        // a from-scratch build of the transformed module.
        if cfg.check_incremental {
            let inc_pdg = n.pdg();
            let inc = noelle_core::wire::pdg_to_json(n.module(), &inc_pdg).to_string_compact();
            let mut fresh = Noelle::new(n.module().clone(), AliasTier::Full);
            let fresh_pdg = fresh.pdg();
            let scratch =
                noelle_core::wire::pdg_to_json(fresh.module(), &fresh_pdg).to_string_compact();
            if inc != scratch {
                failures.push(Failure {
                    tool: Some(tool.name.clone()),
                    kind: FailureKind::IncrementalMismatch,
                    detail: format!(
                        "incrementally repaired PDG differs from a from-scratch build \
                         ({} vs {} bytes of wire encoding)",
                        inc.len(),
                        scratch.len()
                    ),
                });
                continue;
            }
        }
        let tm = n.into_module();
        if let Err(e) = verify_module(&tm) {
            failures.push(Failure {
                tool: Some(tool.name.clone()),
                kind: FailureKind::VerifierReject,
                detail: format!("{e:?}"),
            });
            continue;
        }
        if cfg.lint_races {
            let mut ln = Noelle::new(tm.clone(), AliasTier::Full);
            let races = noelle_lint::detect_races(&mut ln);
            if !races.is_empty() {
                failures.push(Failure {
                    tool: Some(tool.name.clone()),
                    kind: FailureKind::RaceFinding,
                    detail: noelle_lint::render_text(&races),
                });
                continue;
            }
        }
        let after = match run_caught(&tm, &run_cfg, &cfg.entry) {
            Err(p) => {
                failures.push(Failure {
                    tool: Some(tool.name.clone()),
                    kind: FailureKind::RunPanic,
                    detail: p,
                });
                continue;
            }
            Ok(Err(e)) => {
                failures.push(Failure {
                    tool: Some(tool.name.clone()),
                    kind: FailureKind::RunError,
                    detail: e.to_string(),
                });
                continue;
            }
            Ok(Ok(r)) => r,
        };
        if ret_bits(&base) != ret_bits(&after) {
            failures.push(Failure {
                tool: Some(tool.name.clone()),
                kind: FailureKind::ReturnMismatch,
                detail: format!("{:?} vs {:?}", base.ret, after.ret),
            });
        }
        if base.output != after.output {
            failures.push(Failure {
                tool: Some(tool.name.clone()),
                kind: FailureKind::OutputMismatch,
                detail: format!(
                    "{} vs {} lines; first divergence: {:?}",
                    base.output.len(),
                    after.output.len(),
                    base.output
                        .iter()
                        .zip(after.output.iter())
                        .position(|(a, b)| a != b)
                ),
            });
        }
        if base.globals_digest != after.globals_digest {
            failures.push(Failure {
                tool: Some(tool.name.clone()),
                kind: FailureKind::MemoryMismatch,
                detail: format!(
                    "globals digest {:#x} vs {:#x}",
                    base.globals_digest, after.globals_digest
                ),
            });
        }
    }

    if failures.is_empty() {
        Outcome::Pass {
            tools_applied: tools.len(),
            deps_checked,
        }
    } else {
        Outcome::Fail { failures }
    }
}

/// Reducer predicate: does `m` still exhibit a failure matching `proto`
/// (same tool, same kind)? Used so shrinking cannot drift onto a different
/// bug.
pub fn fails_like(m: &Module, tools: &[FuzzTool], cfg: &OracleConfig, proto: &Failure) -> bool {
    match check_module(m, tools, cfg) {
        Outcome::Fail { failures } => failures
            .iter()
            .any(|f| f.tool == proto.tool && f.kind == proto.kind),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, GenConfig};
    use noelle_ir::parser::parse_module;

    fn identity_tool() -> FuzzTool {
        FuzzTool::new("identity", |_n| Ok("did nothing".into()))
    }

    fn breaking_tool() -> FuzzTool {
        // Miscompiler: rewrite main's ret to a constant.
        FuzzTool::new("breaker", |n| {
            let fid = n.module().func_id_by_name("main").expect("main");
            n.edit(|tx| {
                let f = tx.func_mut(fid);
                for b in f.block_order().to_vec() {
                    if let Some(noelle_ir::inst::Terminator::Ret(Some(_))) = f.terminator(b) {
                        f.set_terminator(
                            b,
                            noelle_ir::inst::Terminator::Ret(Some(
                                noelle_ir::value::Value::const_i64(-12345),
                            )),
                        );
                    }
                }
            });
            Ok("broke it".into())
        })
    }

    fn panicking_tool() -> FuzzTool {
        FuzzTool::new("panicker", |_n| panic!("tool exploded"))
    }

    #[test]
    fn identity_passes_generated_modules() {
        let cfg = OracleConfig {
            trace_deps: true,
            ..OracleConfig::default()
        };
        for seed in 0..10 {
            let m = generate(seed, &GenConfig::default());
            let out = check_module(&m, &[identity_tool()], &cfg);
            match out {
                Outcome::Pass { tools_applied, .. } => assert_eq!(tools_applied, 1),
                other => panic!("seed {seed}: expected Pass, got {other:?}"),
            }
        }
    }

    #[test]
    fn miscompile_is_reported_as_return_mismatch() {
        let m = generate(3, &GenConfig::default());
        let out = check_module(&m, &[breaking_tool()], &OracleConfig::default());
        let Outcome::Fail { failures } = out else {
            panic!("expected Fail, got {out:?}");
        };
        assert!(
            failures
                .iter()
                .any(|f| f.kind == FailureKind::ReturnMismatch
                    && f.tool.as_deref() == Some("breaker"))
        );
    }

    #[test]
    fn tool_panic_is_caught_and_reported() {
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // keep the test log clean
        let m = generate(1, &GenConfig::default());
        let out = check_module(
            &m,
            &[panicking_tool(), identity_tool()],
            &OracleConfig::default(),
        );
        std::panic::set_hook(hook);
        let Outcome::Fail { failures } = out else {
            panic!("expected Fail, got {out:?}");
        };
        // The panicker is reported; the identity tool still ran clean.
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].kind, FailureKind::ToolPanic);
        assert!(failures[0].detail.contains("tool exploded"));
    }

    #[test]
    fn baseline_runtime_error_skips() {
        // Stores a float-returning function pointer, calls it as i64: the
        // historical type-confusion panic path, now a reported Skip.
        let m = parse_module(
            r#"
module "t" {
define f64 @f() {
entry:
  ret f64 1.5
}
define i64 @main() {
entry:
  %slot = alloca i64, i64 1
  %fi = ptrtoint fn f64()* @f to i64
  store i64 %fi, %slot
  %raw = load i64, %slot
  %fp = inttoptr i64 %raw to fn i64()*
  %v = call i64 %fp()
  %r = add i64 %v, i64 1
  ret %r
}
}
"#,
        )
        .unwrap();
        let out = check_module(&m, &[identity_tool()], &OracleConfig::default());
        let Outcome::Skip { reason } = out else {
            panic!("expected Skip, got {out:?}");
        };
        assert!(reason.contains("type confusion"), "{reason}");
    }

    #[test]
    fn store_codecs_round_trip_generated_modules() {
        // The store oracle runs directly: every artifact the daemon would
        // persist (PDG partitions, points-to rows, loop forests) must
        // re-encode byte-identically after a decode.
        for seed in 0..10 {
            let m = generate(seed, &GenConfig::default());
            let failures = store_round_trip_failures(&m);
            assert!(failures.is_empty(), "seed {seed}: {failures:?}");
        }
    }

    #[test]
    fn store_check_can_be_disabled() {
        let cfg = OracleConfig {
            check_store: false,
            ..OracleConfig::default()
        };
        let m = generate(2, &GenConfig::default());
        let out = check_module(&m, &[identity_tool()], &cfg);
        assert!(
            !matches!(
                &out,
                Outcome::Fail { failures } if failures
                    .iter()
                    .any(|f| f.kind == FailureKind::StoreRoundTrip)
            ),
            "store check ran while disabled: {out:?}"
        );
    }

    #[test]
    fn incremental_repair_matches_fresh_build_after_edits() {
        // A behavior-preserving editing tool: warm the PDG, then touch
        // `main` through `edit`, so the oracle's incremental check
        // exercises real damage propagation and partition reuse.
        let cfg = OracleConfig {
            check_incremental: true,
            ..OracleConfig::default()
        };
        for seed in 0..5 {
            let warm_then_touch = FuzzTool::new("nop-edit", |n| {
                let _ = n.pdg(); // build, so the edit repairs instead of rebuilding
                let fid = n.module().func_id_by_name("main").expect("main");
                n.edit(|tx| {
                    tx.touch(fid);
                });
                Ok("touched main".into())
            });
            let m = generate(seed, &GenConfig::default());
            let out = check_module(&m, &[warm_then_touch], &cfg);
            assert!(
                !matches!(
                    &out,
                    Outcome::Fail { failures } if failures
                        .iter()
                        .any(|f| f.kind == FailureKind::IncrementalMismatch)
                ),
                "seed {seed}: incremental mismatch: {out:?}"
            );
        }
    }

    #[test]
    fn audit_verdicts_survive_generated_modules() {
        // No false "clean" verdicts: on generated modules, every clean
        // verdict must hold up when the transform actually runs, and every
        // blocked verdict must carry instruction-level attribution.
        let cfg = OracleConfig {
            check_audit: true,
            check_store: false,
            check_incremental: false,
            ..OracleConfig::default()
        };
        for seed in 0..10 {
            let m = generate(seed, &GenConfig::default());
            let out = check_module(&m, &[], &cfg);
            assert!(
                !matches!(
                    &out,
                    Outcome::Fail { failures } if failures
                        .iter()
                        .any(|f| f.kind == FailureKind::AuditMismatch)
                ),
                "seed {seed}: audit mismatch: {out:?}"
            );
        }
    }

    #[test]
    fn plans_are_deterministic_and_sound_on_generated_modules() {
        // The plan oracle: byte-identical plans across two fresh managers,
        // and the applied plan preserves observable behavior.
        let cfg = OracleConfig {
            check_plan: true,
            check_store: false,
            check_incremental: false,
            ..OracleConfig::default()
        };
        for seed in 0..10 {
            let m = generate(seed, &GenConfig::default());
            let out = check_module(&m, &[], &cfg);
            assert!(
                !matches!(
                    &out,
                    Outcome::Fail { failures } if failures
                        .iter()
                        .any(|f| f.kind == FailureKind::PlanMismatch)
                ),
                "seed {seed}: plan mismatch: {out:?}"
            );
        }
    }

    #[test]
    fn fails_like_matches_tool_and_kind() {
        let m = generate(3, &GenConfig::default());
        let proto = Failure {
            tool: Some("breaker".into()),
            kind: FailureKind::ReturnMismatch,
            detail: String::new(),
        };
        assert!(fails_like(
            &m,
            &[breaking_tool()],
            &OracleConfig::default(),
            &proto
        ));
        assert!(!fails_like(
            &m,
            &[identity_tool()],
            &OracleConfig::default(),
            &proto
        ));
    }
}
