//! Differential testing subsystem for the NOELLE reproduction.
//!
//! Four pieces, composed by the `noelle-fuzz` binary in `noelle-tools`:
//!
//! - [`generator`] — a deterministic, seed-driven random IR program
//!   generator emitting verifier-clean, trap-free modules that mix the
//!   corpus's loop shapes.
//! - [`oracle`] — the differential harness: interpret the original module,
//!   apply each transform, re-interpret, and compare return values, output
//!   traces, and the globals region of memory bit-for-bit. With dependence
//!   tracing on, it additionally asserts every runtime-observed memory
//!   dependence is covered by the static PDG — a dynamic soundness check of
//!   the alias analysis.
//! - [`reducer`] — a fixpoint shrinker preserving "still fails the oracle",
//!   used to turn failing seeds into minimized checked-in repros.
//! - [`driver`] — the campaign loop: replay the persisted corpus, run fresh
//!   seeds, persist + minimize new failures, and render a deterministic
//!   summary.
//!
//! The crate deliberately does **not** depend on `noelle-tools` (the tools
//! crate's binary depends on this one); the oracle instead takes an injected
//! list of [`oracle::FuzzTool`]s, which the binary builds from the shared
//! registry.

pub mod driver;
pub mod generator;
pub mod oracle;
pub mod reducer;
