//! # noelle
//!
//! Umbrella crate of **NOELLE-rs**, a from-scratch Rust reproduction of
//! *"NOELLE Offers Empowering LLVM Extensions"* (CGO 2022). It re-exports
//! the workspace crates under one roof so examples and downstream users can
//! depend on a single crate:
//!
//! - [`ir`] — the SSA IR substrate (the LLVM-IR stand-in);
//! - [`analysis`] — the data-flow engine, alias analyses, scalar evolution;
//! - [`pdg`] — dependence graphs, aSCCDAG, complete call graph, islands;
//! - [`core`] — the NOELLE layer: demand-driven manager and the Table 1
//!   abstractions (ENV, Task, INV, IV, IVS, RD, L, FR, LB, SCD, AR, PRO);
//! - [`runtime`] — the IR interpreter + simulated multi-core machine;
//! - [`transforms`] — the ten custom tools (DOALL, HELIX, DSWP, LICM, DEAD,
//!   CARAT, COOS, PRVJ, TIME, Perspective-lite) and the evaluation baselines;
//! - [`workloads`] — the 41-benchmark synthetic corpus.
//!
//! ## Quickstart
//!
//! ```
//! use noelle::core::noelle::{AliasTier, Noelle};
//! use noelle::runtime::{run_module, RunConfig};
//!
//! // Build a workload, parallelize its hot loops with DOALL, and run both
//! // versions on the simulated machine.
//! let w = noelle::workloads::by_name("blackscholes").expect("known workload");
//! let module = w.build();
//! let seq = run_module(&module, "main", &[], &RunConfig::default()).expect("runs");
//!
//! let mut noelle = Noelle::new(module, AliasTier::Full);
//! noelle::transforms::doall::run(
//!     &mut noelle,
//!     &noelle::transforms::doall::DoallOptions {
//!         target: noelle::transforms::LoopTargetOpts { min_hotness: 0.0, only: None, workers: 4 },
//!     },
//! );
//! let par = run_module(&noelle.into_module(), "main", &[], &RunConfig::default())
//!     .expect("parallel version runs");
//! assert_eq!(seq.ret_i64(), par.ret_i64());
//! assert!(par.cycles < seq.cycles);
//! ```

pub use noelle_analysis as analysis;
pub use noelle_core as core;
pub use noelle_ir as ir;
pub use noelle_pdg as pdg;
pub use noelle_runtime as runtime;
pub use noelle_transforms as transforms;
pub use noelle_workloads as workloads;
